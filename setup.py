"""Setuptools shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs fail; this classic ``setup.py`` lets ``pip install -e .`` fall
back to the legacy ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
