"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``decompose``
    Decompose a named workload (or reproduce it at reduced width) and
    write the resulting design to JSON.
``evaluate``
    Re-evaluate a saved design against its workload: MED, error rate,
    storage.
``export-verilog``
    Emit a saved design as a synthesizable Verilog module.
``list-workloads``
    Show the available benchmark workloads.
``list-solvers``
    Show the registered Ising solvers and their capabilities.
``list-kernels``
    Show the SB kernel backends: availability (with the reason a
    backend cannot be used), dtype, device, and batch support.
``submit``
    Enqueue a decomposition job into a service directory, or — with
    ``--remote URL`` — into a running gateway over HTTP.
``serve``
    Run the service worker pool over a service directory (drains the
    queue by default; ``--forever`` keeps serving; ``--http PORT``
    additionally exposes the HTTP gateway and serves until
    interrupted).  ``--min-workers/--max-workers`` replace the fixed
    pool with queue-depth-driven autoscaling; ``--dispatch-only``
    (with ``--http``) runs the gateway with *no* local workers — the
    queue is drained entirely by remote ``repro work`` agents;
    ``--shards N`` hashes jobs across N independent job-store shards
    (per-shard circuit breakers keep the service answering on the
    survivors when one store fails).
``work``
    Run a remote worker against a gateway: claim jobs over
    ``--remote URL``, execute them locally, ship checkpoints and
    results back.  ``--drain`` exits once the queue is empty;
    ``--isolated`` runs each attempt in a child process.
``loadtest``
    Drive a gateway with open-loop load (fixed-rate arrivals, never
    gated on responses): sweep ``--rps`` stages per ``--mix``, record
    latency percentiles / shed rates / the knee, evaluate ``--slo``
    objectives with burn rates, and optionally run a chaos soak
    (``--soak-seconds``) asserting artifacts stay byte-identical to
    an unloaded solve.  ``--out`` writes the ``BENCH_load.json``
    payload.
``status``
    Show the service job table and telemetry summary (local directory
    or ``--remote`` gateway); ``--workers`` shows the fleet registry
    instead (worker liveness, leases, per-worker job counts);
    ``--shards`` shows per-shard job-store health (exit 3 while any
    shard is degraded); ``--limit N`` pages the job table server-side.
``admin scrub`` / ``admin rebuild``
    Job-store maintenance for sharded layouts: ``scrub`` integrity-
    checks every shard (SQLite ``quick_check`` plus journal and
    artifact cross-checks; exit 3 on findings) and ``rebuild --shard K``
    reconstructs a lost or corrupt shard from its append-only intent
    journal and the content-addressed artifact store.
``fetch``
    Write a finished job's design JSON (same format ``decompose``
    emits, so ``evaluate``/``export-verilog`` consume it directly);
    works against a local directory or a ``--remote`` gateway.
``trace report``
    Summarize a trace recorded with ``--trace-out``: per-stage time
    breakdown, stop-iteration histogram, intervention counts.

Global flags: ``--version`` prints the package version; ``-v``/``-q``
raise/lower logging verbosity (default WARNING on stderr); ``decompose``
and ``serve`` accept ``--trace-out PATH`` to record an execution trace
(Chrome ``trace_event`` JSON, or JSONL when the path ends ``.jsonl``).
Tracing never changes results — the recorded search is bit-identical.

Error handling: every subcommand catches the library's
:class:`~repro.errors.ReproError` hierarchy (including
:class:`~repro.serialization.SerializationError`) and missing input
files, printing a one-line ``error: ...`` to stderr and exiting with
code 1 — a traceback from the CLI is a bug, not an error message.

Examples
--------
.. code-block:: bash

    python -m repro decompose --workload cos --n-inputs 9 \\
        --mode joint --partitions 8 --rounds 2 --out cos.json
    python -m repro evaluate --design cos.json --workload cos --n-inputs 9
    python -m repro export-verilog --design cos.json --module cos_lut \\
        --out cos_lut.v

    # service layer: durable queue + artifact cache in ./svc
    python -m repro submit --service-dir svc --workload cos --n-inputs 9
    python -m repro serve --service-dir svc --workers 4
    python -m repro status --service-dir svc
    python -m repro fetch --service-dir svc --job job-ab12cd34ef56 \\
        --out cos.json

    # same service over HTTP: workers + gateway in one process,
    # clients anywhere
    python -m repro serve --service-dir svc --workers 4 --http 8080
    python -m repro submit --remote http://127.0.0.1:8080 \\
        --workload cos --n-inputs 9
    python -m repro status --remote http://127.0.0.1:8080
    python -m repro fetch --remote http://127.0.0.1:8080 \\
        --job job-ab12cd34ef56 --out cos.json

    # fleet mode: a dispatch-only gateway plus remote workers pulling
    # jobs over HTTP from any machine
    python -m repro serve --service-dir svc --dispatch-only --http 8080
    python -m repro work --remote http://127.0.0.1:8080
    python -m repro status --remote http://127.0.0.1:8080 --workers
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro._version import package_version
from repro.boolean.metrics import error_rate, mean_error_distance
from repro.core import CoreSolverConfig, FrameworkConfig, IsingDecomposer
from repro.errors import ConfigurationError, GatewayError, ReproError
from repro.fleet import FleetClient, PoolAutoscaler, RemoteWorkerAgent
from repro.gateway import DecompositionGateway, GatewayConfig
from repro.ising.kernels import backend_infos
from repro.ising.solvers.registry import solver_info, solver_names
from repro.loadgen.mixes import mix_names
from repro.lut import cascade_cost_report
from repro.lut.verilog import cascade_to_verilog
from repro.obs import (
    configure_logging,
    load_trace,
    observe,
    render_report,
    summarize_trace,
    write_trace,
)
from repro.serialization import load_design, save_design
from repro.service import (
    DEFAULT_CHECKPOINT_EVERY,
    DecompositionService,
    JobSpec,
    SchedulerPolicy,
    WorkerSupervisor,
    format_job_table,
    format_worker_table,
    rebuild_shard,
    scrub_store,
)
from repro.service.telemetry import prometheus_exposition
from repro.workloads import build_workload, workload_names

__all__ = ["main", "build_parser"]


def _add_config_arguments(
    parser: argparse.ArgumentParser, workload_required: bool = True
) -> None:
    """Framework/solver flags shared by ``decompose`` and ``submit``."""
    parser.add_argument("--workload", required=workload_required,
                        default=None,
                        help=f"one of {', '.join(workload_names())}")
    parser.add_argument("--n-inputs", type=int, default=9)
    parser.add_argument("--mode", choices=("separate", "joint"),
                        default="joint")
    parser.add_argument("--partitions", type=int, default=8,
                        help="candidate partitions per component "
                             "(paper: 1000)")
    parser.add_argument("--rounds", type=int, default=2,
                        help="framework rounds (paper: 5)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-iterations", type=int, default=2000)
    parser.add_argument("--replicas", type=int, default=4)
    parser.add_argument("--solve-workers", type=int, default=1,
                        help="process-parallel sweep workers per job "
                             "(FrameworkConfig.n_workers)")


def _config_from_args(args: argparse.Namespace) -> FrameworkConfig:
    if args.workload is None:
        # ising submissions have no workload; free_size is irrelevant
        free_size = FrameworkConfig().free_size
    else:
        free_size = build_workload(
            args.workload, n_inputs=args.n_inputs
        ).free_size
    return FrameworkConfig(
        mode=args.mode,
        free_size=free_size,
        n_partitions=args.partitions,
        n_rounds=args.rounds,
        seed=args.seed,
        n_workers=args.solve_workers,
        solver=CoreSolverConfig(
            max_iterations=args.max_iterations, n_replicas=args.replicas
        ),
    )


def _add_service_dir(parser: argparse.ArgumentParser,
                     required: bool = True) -> None:
    parser.add_argument("--service-dir", type=Path, required=required,
                        default=None,
                        help="service state directory (job store + "
                             "artifact cache)")


def _add_service_target(parser: argparse.ArgumentParser) -> None:
    """``--service-dir`` / ``--remote`` — local or gateway-backed."""
    _add_service_dir(parser, required=False)
    parser.add_argument("--remote", default=None, metavar="URL",
                        help="gateway base URL (e.g. "
                             "http://127.0.0.1:8080); exclusive with "
                             "--service-dir")
    parser.add_argument("--token", default=None,
                        help="bearer token for --remote")


def _remote_client(args: argparse.Namespace) -> FleetClient:
    # FleetClient extends GatewayClient with the worker-plane verbs
    # and the fleet registry; harmless for plain submitter use
    return FleetClient(args.remote, token=args.token)


def _check_target(args: argparse.Namespace) -> None:
    """Exactly one of ``--service-dir`` / ``--remote`` must be given."""
    if (args.service_dir is None) == (args.remote is None):
        raise ConfigurationError(
            "pass exactly one of --service-dir (local) or --remote "
            "(gateway URL)"
        )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Ising-model approximate disjoint decomposition (DAC 2024 "
            "reproduction)"
        ),
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {package_version()}",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="raise logging verbosity (-v INFO, -vv DEBUG)",
    )
    parser.add_argument(
        "-q", "--quiet", action="count", default=0,
        help="lower logging verbosity (errors only)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    dec = sub.add_parser(
        "decompose", help="decompose a workload and save the design"
    )
    _add_config_arguments(dec)
    dec.add_argument("--out", type=Path, required=True,
                     help="output JSON path")
    dec.add_argument("--trace-out", type=Path, default=None,
                     help="record an execution trace to this path "
                          "(Chrome trace_event JSON; .jsonl for an "
                          "event log)")

    ev = sub.add_parser(
        "evaluate", help="evaluate a saved design against its workload"
    )
    ev.add_argument("--design", type=Path, required=True)
    ev.add_argument("--workload", required=True)
    ev.add_argument("--n-inputs", type=int, default=9)

    vlog = sub.add_parser(
        "export-verilog", help="emit a saved design as Verilog"
    )
    vlog.add_argument("--design", type=Path, required=True)
    vlog.add_argument("--module", default="approx_lut")
    vlog.add_argument("--out", type=Path, default=None,
                      help="output .v path (default: stdout)")

    sub.add_parser("list-workloads", help="list benchmark workloads")
    sub.add_parser("list-solvers",
                   help="list registered Ising solvers and capabilities")
    sub.add_parser("list-kernels",
                   help="list SB kernel backends (availability, dtype, "
                        "device, batch support)")

    subm = sub.add_parser(
        "submit",
        help="enqueue a decomposition job (service dir or gateway), "
             "or run a partitioned Ising solve",
    )
    _add_service_target(subm)
    _add_config_arguments(subm, workload_required=False)
    subm.add_argument("--timeout", type=float, default=None,
                      help="per-attempt wall-clock budget in seconds")
    subm.add_argument("--max-attempts", type=int, default=3,
                      help="total attempts before the job fails")
    subm.add_argument("--ising-model", type=Path, default=None,
                      metavar="PATH",
                      help="submit this repro-ising-problem JSON "
                           "document instead of a workload (see "
                           "python -m repro.partition.instances)")
    subm.add_argument("--solver", default=None,
                      help="override the problem document's solver "
                           "name (requires --ising-model)")
    subm.add_argument("--partition", type=int, default=None, metavar="K",
                      help="split the Ising model into K blocks and "
                           "run the partition-and-stitch coordinator "
                           "synchronously (K=1 degenerates to one "
                           "monolithic job); requires --ising-model")
    subm.add_argument("--partition-rounds", type=int, default=8,
                      metavar="N",
                      help="boundary-coordination round budget "
                           "(default: 8)")
    subm.add_argument("--partition-tolerance", type=float, default=0.0,
                      help="stop when the boundary energy changes by "
                           "at most this much between rounds "
                           "(default: 0.0, exact)")
    subm.add_argument("--partition-seed", type=int, default=0,
                      help="planner seed (partition shape + initial "
                           "state)")
    subm.add_argument("--out", type=Path, default=None,
                      help="with --partition: write the stitched "
                           "result document (result + verification "
                           "verdict) to this path")

    serve = sub.add_parser(
        "serve", help="run the service worker pool over a service dir"
    )
    _add_service_dir(serve)
    serve.add_argument("--workers", type=int, default=1,
                       help="concurrent service workers")
    serve.add_argument("--shards", type=int, default=None, metavar="N",
                       help="hash jobs across N independent job-store "
                            "shards (fault domains with per-shard "
                            "circuit breakers; default: the directory's "
                            "existing layout, or a single store)")
    serve.add_argument("--batch-jobs", type=int, default=1, metavar="B",
                       help="jobs each worker claims and advances "
                            "together per loop, fusing compatible "
                            "batched sweeps into shared kernel passes "
                            "(default: 1, no fusion)")
    serve.add_argument("--forever", action="store_true",
                       help="keep serving after the queue drains "
                            "(default: drain and exit)")
    serve.add_argument("--lease-seconds", type=float, default=60.0,
                       help="heartbeat lease before a worker counts as "
                            "crashed")
    serve.add_argument("--retry-backoff", type=float, default=0.25,
                       help="base retry backoff in seconds")
    serve.add_argument("--quarantine-after", type=int, default=3,
                       metavar="N",
                       help="park a job after it fails on N distinct "
                            "workers (0 disables quarantine)")
    serve.add_argument("--checkpoint-every", type=int,
                       default=DEFAULT_CHECKPOINT_EVERY, metavar="K",
                       help="write a crash-recovery checkpoint every K "
                            "components (0 disables checkpointing)")
    serve.add_argument("--isolated-workers", action="store_true",
                       help="run each worker as a supervised child "
                            "process (restart on crash, kill on hang) "
                            "instead of an in-process thread")
    serve.add_argument("--min-workers", type=int, default=0, metavar="N",
                       help="with --max-workers: lower bound of the "
                            "autoscaled pool (default: 0, fully "
                            "elastic)")
    serve.add_argument("--max-workers", type=int, default=None,
                       metavar="N",
                       help="enable queue-depth-driven autoscaling of "
                            "the worker pool between --min-workers and "
                            "N units (replaces the fixed --workers "
                            "count)")
    serve.add_argument("--dispatch-only", action="store_true",
                       help="run no local workers at all — the gateway "
                            "owns the store and remote 'repro work' "
                            "agents drain the queue (requires --http)")
    serve.add_argument("--max-restarts", type=int, default=5,
                       help="supervised-mode worker restart budget")
    serve.add_argument("--trace-out", type=Path, default=None,
                       help="record a service execution trace to this "
                            "path (drain mode; Chrome trace_event JSON, "
                            ".jsonl for an event log)")
    serve.add_argument("--http", type=int, default=None, metavar="PORT",
                       help="also expose the HTTP gateway on this port "
                            "and serve until interrupted")
    serve.add_argument("--http-host", default="127.0.0.1",
                       help="gateway bind address (default: loopback)")
    serve.add_argument("--http-token", default=None,
                       help="require this bearer token on gateway "
                            "requests (healthz stays open)")
    serve.add_argument("--http-max-queue", type=int, default=64,
                       help="queue depth beyond which submissions get "
                            "503 + Retry-After")
    serve.add_argument("--http-rate-limit", type=float, default=None,
                       metavar="PER_SECOND",
                       help="per-client token-bucket rate limit "
                            "(default: off)")
    serve.add_argument("--http-access-log", type=Path, default=None,
                       metavar="PATH",
                       help="append one JSON line per request here")

    work = sub.add_parser(
        "work",
        help="run a remote worker claiming jobs from a gateway",
    )
    work.add_argument("--remote", required=True, metavar="URL",
                      help="gateway base URL to claim jobs from")
    work.add_argument("--token", default=None,
                      help="bearer token for the gateway")
    work.add_argument("--worker-id", default=None,
                      help="stable worker identity (default: "
                           "remote-<host>-<pid>)")
    work.add_argument("--drain", action="store_true",
                      help="exit once the queue is empty (default: "
                           "keep claiming forever)")
    work.add_argument("--isolated", action="store_true",
                      help="run each attempt in a child process so a "
                           "hard crash never takes the agent down")
    work.add_argument("--max-jobs", type=int, default=None, metavar="N",
                      help="exit after claiming N jobs")
    work.add_argument("--claim-wait", type=float, default=None,
                      metavar="SECONDS",
                      help="cap the server-side claim long-poll "
                           "(default: the gateway's configured wait)")
    work.add_argument("--heartbeat-seconds", type=float, default=5.0,
                      help="minimum interval between lease heartbeats")
    work.add_argument("--checkpoint-every", type=int,
                      default=DEFAULT_CHECKPOINT_EVERY, metavar="K",
                      help="ship a crash-recovery checkpoint every K "
                           "components (0 disables checkpointing)")

    load = sub.add_parser(
        "loadtest",
        help="drive a gateway with open-loop load and record the "
             "latency-vs-RPS curve, SLO verdicts, and (optionally) a "
             "chaos soak",
    )
    load.add_argument("--remote", required=True, metavar="URL",
                      help="gateway base URL to load")
    load.add_argument("--token", default=None,
                      help="bearer token for the gateway")
    load.add_argument("--rps", default="2,4,8", metavar="R1,R2,...",
                      help="comma-separated offered-RPS stages, "
                           "ascending (the sweep)")
    load.add_argument("--mix", action="append", default=None,
                      metavar="NAME", dest="mixes",
                      help=f"job mix to drive (repeatable; one of "
                           f"{', '.join(mix_names())}; default: "
                           f"dedup-heavy + cache-cold)")
    load.add_argument("--duration", type=float, default=10.0,
                      metavar="SECONDS",
                      help="seconds per (mix, rps) stage")
    load.add_argument("--concurrency", type=int, default=8,
                      help="sender threads per stage (bounds "
                           "in-flight requests; lateness is recorded, "
                           "never omitted)")
    load.add_argument("--seed", type=int, default=3,
                      help="base seed for the job-mix specs")
    load.add_argument("--slo", default=None, metavar="SPEC",
                      help="SLO clauses, e.g. "
                           "'availability=0.99,p95_ms=500,"
                           "window_s=5,max_burn=2'")
    load.add_argument("--strict-slo", action="store_true",
                      help="exit 3 when the SLO verdict fails "
                           "(default: verdicts are recorded, not "
                           "enforced)")
    load.add_argument("--complete-timeout", type=float, default=60.0,
                      metavar="SECONDS",
                      help="how long to wait for submitted jobs to "
                           "finish when collecting completion "
                           "latencies")
    load.add_argument("--soak-seconds", type=float, default=0.0,
                      metavar="SECONDS",
                      help="after the sweep, run a fixed-RPS soak "
                           "this long with the chaos seams armed and "
                           "byte-compare artifacts against an "
                           "unloaded local solve (0 disables)")
    load.add_argument("--soak-rps", type=float, default=None,
                      help="soak plateau rate (default: the lowest "
                           "sweep rate)")
    load.add_argument("--soak-mix", default="cache-cold",
                      help="mix to soak (must be completable work)")
    load.add_argument("--baseline-dir", type=Path, default=None,
                      help="directory for the soak's unloaded "
                           "comparison service (default: a temp dir)")
    load.add_argument("--out", type=Path, default=None, metavar="PATH",
                      help="write the full JSON report here "
                           "(BENCH_load.json shape)")

    stat = sub.add_parser(
        "status", help="show service jobs and telemetry"
    )
    _add_service_target(stat)
    stat.add_argument("--job", default=None, help="show one job only")
    stat.add_argument("--limit", type=int, default=None, metavar="N",
                      help="show only the first N jobs (server-side "
                           "pagination; avoids O(queue) responses)")
    stat.add_argument("--json", action="store_true", dest="as_json",
                      help="emit the raw telemetry summary as JSON")
    stat.add_argument("--prometheus", action="store_true",
                      help="emit the Prometheus text exposition instead")
    stat.add_argument("--workers", action="store_true",
                      dest="show_workers",
                      help="show the fleet registry (worker liveness, "
                           "leases, per-worker job counts) instead")
    stat.add_argument("--shards", action="store_true",
                      dest="show_shards",
                      help="show per-shard job-store health (circuit "
                           "breaker state, failure counts) instead")

    admin = sub.add_parser(
        "admin",
        help="job-store maintenance: integrity scrub and shard rebuild",
    )
    admin_sub = admin.add_subparsers(dest="admin_command", required=True)
    scrub = admin_sub.add_parser(
        "scrub",
        help="integrity-check every shard: SQLite quick_check plus "
             "journal and artifact cross-checks (exit 3 on findings)",
    )
    _add_service_dir(scrub)
    scrub.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the full scrub report as JSON")
    rebuild = admin_sub.add_parser(
        "rebuild",
        help="reconstruct a lost/corrupt shard from its intent journal "
             "and the content-addressed artifact store",
    )
    _add_service_dir(rebuild)
    rebuild.add_argument("--shard", type=int, required=True, metavar="K",
                         help="shard index to rebuild")
    rebuild.add_argument("--json", action="store_true", dest="as_json",
                         help="emit the rebuild report as JSON")

    fetch = sub.add_parser(
        "fetch", help="write a finished job's design JSON"
    )
    _add_service_target(fetch)
    fetch.add_argument("--job", required=True, help="job id to fetch")
    fetch.add_argument("--out", type=Path, default=None,
                       help="output JSON path (default: stdout)")

    trace = sub.add_parser(
        "trace", help="inspect traces recorded with --trace-out"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    report = trace_sub.add_parser(
        "report", help="summarize a recorded trace"
    )
    report.add_argument("trace_file", type=Path,
                        help="trace written by --trace-out (Chrome "
                             "JSON or JSONL)")
    report.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the structured summary as JSON")
    return parser


def _cmd_decompose(args: argparse.Namespace) -> int:
    workload = build_workload(args.workload, n_inputs=args.n_inputs)
    config = _config_from_args(args)
    if args.trace_out is not None:
        with observe(
            metadata={"command": "decompose", "workload": args.workload}
        ) as tracer:
            result = IsingDecomposer(config).decompose(workload.table)
        write_trace(tracer, args.trace_out)
    else:
        result = IsingDecomposer(config).decompose(workload.table)
    save_design(result, args.out)
    print(
        f"decomposed {args.workload} (n={args.n_inputs}, mode={args.mode}): "
        f"MED {result.med:.4f}, {result.total_lut_bits} cascade bits "
        f"(flat {result.flat_lut_bits}), "
        f"{result.runtime_seconds:.2f}s -> {args.out}"
    )
    if args.trace_out is not None:
        print(f"trace -> {args.trace_out} "
              f"(summarize with: repro trace report {args.trace_out})")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    design = load_design(args.design)
    workload = build_workload(args.workload, n_inputs=args.n_inputs)
    if design.n_inputs != workload.table.n_inputs or (
        design.n_outputs != workload.table.n_outputs
    ):
        print(
            f"error: design is {design.n_inputs}->{design.n_outputs} bits "
            f"but workload is {workload.table.n_inputs}->"
            f"{workload.table.n_outputs}",
            file=sys.stderr,
        )
        return 2
    approx = design.to_truth_table(workload.table.probabilities)
    report = cascade_cost_report(design)
    print(f"design:      {args.design}")
    print(f"MED:         {mean_error_distance(workload.table, approx):.4f}")
    print(f"error rate:  {error_rate(workload.table, approx):.4f}")
    print(f"storage:     {report}")
    return 0


def _cmd_export_verilog(args: argparse.Namespace) -> int:
    design = load_design(args.design)
    verilog = cascade_to_verilog(design, module_name=args.module)
    if args.out is None:
        print(verilog, end="")
    else:
        args.out.write_text(verilog)
        print(f"wrote {args.out} ({design.total_bits} ROM bits)")
    return 0


def _cmd_list_workloads() -> int:
    for name in workload_names():
        print(name)
    return 0


def _cmd_list_solvers() -> int:
    cap_flags = (
        ("supports_replicas", "replicas"),
        ("supports_probes", "probes"),
        ("supports_stop_criteria", "stop-criteria"),
        ("exact", "exact"),
    )
    for name in solver_names():
        info = solver_info(name)
        caps = ", ".join(
            label for attr, label in cap_flags
            if getattr(info.capabilities, attr)
        ) or "-"
        aliases = (
            f" (aliases: {', '.join(info.aliases)})" if info.aliases else ""
        )
        print(f"{name:<20} [{caps}]  {info.summary}{aliases}")
    return 0


def _cmd_list_kernels() -> int:
    for info in backend_infos():
        if info.available:
            status = "available"
        else:
            status = f"unavailable: {info.unavailable_reason}"
        batch = "batch" if info.supports_batch else "no-batch"
        print(f"{info.name:<10} [{info.dtype:<7} {info.device:<4} "
              f"{batch:<8}] {status:<12} {info.summary}")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    _check_target(args)
    if args.ising_model is not None:
        return _submit_ising(args)
    if args.workload is None:
        raise ConfigurationError(
            "pass --workload NAME (decomposition job) or "
            "--ising-model PATH (raw Ising solve)"
        )
    for flag, name in (
        (args.partition, "--partition"),
        (args.solver, "--solver"),
    ):
        if flag is not None:
            raise ConfigurationError(
                f"{name} requires --ising-model (decomposition jobs "
                "are not partitioned)"
            )
    spec = JobSpec(
        workload=args.workload,
        n_inputs=args.n_inputs,
        config=_config_from_args(args),
        timeout_seconds=args.timeout,
        max_attempts=args.max_attempts,
    )
    if args.remote is not None:
        job, deduplicated = _remote_client(args).submit(spec)
        note = (
            " (deduplicated — matched a live or finished twin)"
            if deduplicated else ""
        )
    else:
        service = DecompositionService(args.service_dir)
        job = service.submit(spec)
        note = " (artifact cached — serve resolves it instantly)" if (
            job.artifact_key in service.artifacts
        ) else ""
    print(f"submitted {job.id}: {spec.describe()} "
          f"key={job.artifact_key[:12]}...{note}")
    return 0


def _submit_ising(args: argparse.Namespace) -> int:
    """``submit --ising-model``: enqueue or coordinate an Ising solve.

    Without ``--partition`` this enqueues one raw-solve job exactly
    like a decomposition submission (fire and forget).  With
    ``--partition K`` it runs the partition-and-stitch coordinator
    *synchronously* — subproblems flow through the chosen target as
    ordinary jobs — then verifies the stitched result and exits 3 if
    verification fails.
    """
    from repro.ising.wire import solve_result_to_dict, validate_problem
    from repro.partition import (
        LocalDispatcher,
        RemoteDispatcher,
        run_partitioned_spec,
        verify_result,
    )
    from repro.service.spec import partition_block

    if args.workload is not None:
        raise ConfigurationError(
            "--workload and --ising-model are exclusive"
        )
    try:
        problem = json.loads(args.ising_model.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"--ising-model {args.ising_model} is not valid JSON: {exc}"
        ) from exc
    if args.solver is not None:
        problem = dict(problem)
        problem["solver"] = args.solver
    validate_problem(problem)
    partition = None
    if args.partition is not None:
        partition = partition_block(
            args.partition,
            max_rounds=args.partition_rounds,
            tolerance=args.partition_tolerance,
            seed=args.partition_seed,
        )
    spec = JobSpec(
        config=_config_from_args(args),
        ising=problem,
        partition=partition,
        timeout_seconds=args.timeout,
        max_attempts=args.max_attempts,
    )
    if args.partition is None:
        if args.remote is not None:
            job, deduplicated = _remote_client(args).submit(spec)
            note = (
                " (deduplicated — matched a live or finished twin)"
                if deduplicated else ""
            )
        else:
            service = DecompositionService(args.service_dir)
            job = service.submit(spec)
            note = " (artifact cached)" if (
                job.artifact_key in service.artifacts
            ) else ""
        print(f"submitted {job.id}: {spec.describe()} "
              f"key={job.artifact_key[:12]}...{note}")
        return 0
    if args.remote is not None:
        dispatcher = RemoteDispatcher(_remote_client(args))
    else:
        dispatcher = LocalDispatcher(
            DecompositionService(args.service_dir)
        )
    stitched = run_partitioned_spec(dispatcher, spec)
    result_doc = solve_result_to_dict(stitched.result)
    verdict = verify_result(problem, result_doc)
    document = {
        "format": "repro-stitched-result",
        "schema_version": 1,
        "partition": stitched.summary(),
        "result": result_doc,
        "verdict": verdict,
        "artifact_key": stitched.artifact_key,
    }
    print(f"partitioned solve: k={args.partition}, "
          f"rounds={stitched.rounds}, "
          f"stop={stitched.result.stop_reason}, "
          f"objective={stitched.result.objective:.6f}, "
          f"reused {stitched.reused_solves} subproblem solve(s)")
    if stitched.artifact_key is not None:
        print(f"artifact key: {stitched.artifact_key} "
              "(identical to a monolithic submission)")
    print(f"verified: {verdict['verified']}")
    if args.out is not None:
        args.out.write_text(
            json.dumps(document, indent=2, sort_keys=True)
        )
        print(f"stitched result -> {args.out}")
    return 0 if verdict["verified"] else 3


def _graceful_sigterm(on_term=None) -> None:
    """Make ``kill`` drain like ctrl-C instead of dropping requests.

    Long-running commands (``serve``, ``work``) are stopped by
    operators and CI with SIGTERM; routing it through
    :class:`KeyboardInterrupt` reuses the graceful-shutdown path
    (gateway drains in-flight handlers, workers finish the current
    attempt).  SIGINT itself may arrive as SIG_IGN when the process
    was backgrounded from a non-interactive shell, so TERM is the
    only reliable stop signal there.

    ``on_term`` runs *inside* the signal handler, before the
    KeyboardInterrupt is raised — it must be async-signal-safe (no
    locks, no joins).  The gateway passes ``request_drain`` here so a
    SIGTERM wakes parked ``/v1/workers/claim`` long-polls immediately
    (they answer 204 + Retry-After) instead of only once the main
    thread unwinds to ``gateway.stop()``.
    """

    def _raise(signum, frame):
        if on_term is not None:
            on_term()
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _raise)
    except ValueError:
        pass  # not the main thread (embedded use) — leave untouched


def _cmd_serve(args: argparse.Namespace) -> int:
    _graceful_sigterm()
    autoscale = args.max_workers is not None
    if args.dispatch_only:
        if args.http is None:
            raise ConfigurationError(
                "--dispatch-only requires --http PORT (a gateway with "
                "no workers serves nobody otherwise)"
            )
        if args.isolated_workers or autoscale:
            raise ConfigurationError(
                "--dispatch-only runs no local workers; drop "
                "--isolated-workers/--min-workers/--max-workers"
            )
    if autoscale and args.isolated_workers:
        raise ConfigurationError(
            "--max-workers autoscaling and --isolated-workers are "
            "exclusive (the supervisor owns its own worker count)"
        )
    policy = SchedulerPolicy(
        lease_seconds=args.lease_seconds,
        retry_backoff_seconds=args.retry_backoff,
        quarantine_after=(
            None if args.quarantine_after == 0 else args.quarantine_after
        ),
    )
    checkpoint_every = (
        None if args.checkpoint_every == 0 else args.checkpoint_every
    )
    service = DecompositionService(
        args.service_dir, n_workers=args.workers, policy=policy,
        checkpoint_every=checkpoint_every, batch_jobs=args.batch_jobs,
        shards=args.shards,
    )
    supervisor = None
    if args.isolated_workers:
        supervisor = WorkerSupervisor(
            args.service_dir,
            n_workers=args.workers,
            policy=policy,
            checkpoint_every=checkpoint_every,
            max_restarts=args.max_restarts,
        )
    autoscaler = None
    if autoscale:
        autoscaler = PoolAutoscaler(
            service.scheduler,
            service.executor,
            min_workers=args.min_workers,
            max_workers=args.max_workers,
        )
    depth = service.store.pending()
    shard_states = service.shard_states()
    if shard_states is not None:
        print(f"job store sharded over {len(shard_states)} fault "
              f"domain(s)")
    if args.dispatch_only:
        print(f"serving {args.service_dir} dispatch-only (no local "
              f"workers), {depth} job(s) pending")
    elif autoscaler is not None:
        print(f"serving {args.service_dir} with "
              f"{args.min_workers}..{args.max_workers} autoscaled "
              f"worker(s), {depth} job(s) pending")
    else:
        mode = (
            "supervised process" if supervisor is not None else "thread"
        )
        print(f"serving {args.service_dir} with {args.workers} "
              f"{mode} worker(s), {depth} job(s) pending")

    def start_pool():
        """Start the chosen worker backend; None in dispatch-only."""
        if args.dispatch_only:
            service._recover_orphans_best_effort()
            return None
        if supervisor is not None:
            supervisor.start()
            return supervisor
        if autoscaler is not None:
            service._recover_orphans_best_effort()
            return autoscaler.start()
        return service.serve_forever()

    if args.http is not None:
        gateway = DecompositionGateway(
            service,
            GatewayConfig(
                host=args.http_host,
                port=args.http,
                auth_token=args.http_token,
                max_queue_depth=args.http_max_queue,
                rate_limit_per_second=args.http_rate_limit,
                access_log_path=args.http_access_log,
            ),
        )
        # re-register TERM so the handler wakes parked claim
        # long-polls synchronously, before the interrupt unwinds to
        # gateway.stop() below
        _graceful_sigterm(gateway.request_drain)
        pool = start_pool()
        print(f"gateway listening on {gateway.url}")
        try:
            gateway.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            # drain order: stop accepting requests (joining in-flight
            # handlers), then stop the workers
            gateway.stop()
            if pool is not None:
                pool.stop()
        return 0
    if args.forever:
        pool = start_pool()
        try:
            while not pool.wait(3600):
                pass
        except KeyboardInterrupt:
            pool.stop()
        return 0

    def drain() -> None:
        if supervisor is not None:
            supervisor.run_until_drained()
        elif autoscaler is not None:
            service._recover_orphans_best_effort()
            autoscaler.start()
            try:
                while service.store.pending() > 0:
                    time.sleep(0.05)
            finally:
                autoscaler.stop()
        else:
            service.run_until_drained()

    if args.trace_out is not None:
        with observe(
            metadata={
                "command": "serve",
                "service_dir": str(args.service_dir),
            }
        ) as tracer:
            drain()
        write_trace(tracer, args.trace_out)
        print(f"trace -> {args.trace_out}")
    else:
        drain()
    summary = service.status()
    jobs = summary["jobs"]
    cache = summary["cache"]
    print(
        f"drained: {jobs['done']} done, {jobs['failed']} failed, "
        f"{jobs['quarantined']} quarantined; cache hit rate "
        f"{cache['hit_rate'] if cache['hit_rate'] is not None else 'n/a'}"
    )
    return 0 if jobs["failed"] == 0 and jobs["quarantined"] == 0 else 3


def _status_backend(args: argparse.Namespace):
    """A uniform (jobs, job, status, prometheus, design, workers,
    jobs_page) view over either a local service directory or a remote
    gateway — what keeps the ``status``/``fetch`` rendering a single
    code path.
    """
    if args.remote is not None:
        client = _remote_client(args)
        return (client.jobs, client.job, client.status,
                client.metrics_text, client.fetch_design_dict,
                client.workers, client.jobs_page)
    service = DecompositionService(args.service_dir)
    return (
        service.jobs,
        service.job,
        service.status,
        lambda: prometheus_exposition(service.store, service.artifacts),
        service.fetch_design_dict,
        service.store.list_workers,
        service.jobs_page,
    )


def _cmd_loadtest(args: argparse.Namespace) -> int:
    import contextlib
    import tempfile

    from repro.gateway import GatewayClient
    from repro.gateway.transport import RetryPolicy
    from repro.loadgen.generator import (
        MixSubmitter,
        OpenLoopGenerator,
        collect_completion_latencies,
    )
    from repro.loadgen.mixes import default_load_config, get_mix
    from repro.loadgen.recorder import (
        build_report,
        find_knee,
        summarize_stage,
    )
    from repro.loadgen.report import render_load_report
    from repro.loadgen.slo import SLOSpec, evaluate_slo, parse_slo
    from repro.loadgen.soak import run_soak

    try:
        rates = sorted(
            float(r) for r in args.rps.split(",") if r.strip()
        )
    except ValueError:
        raise ConfigurationError(
            f"--rps must be comma-separated numbers, got {args.rps!r}"
        ) from None
    if not rates:
        raise ConfigurationError("--rps needs at least one rate")
    profiles = [
        get_mix(name)
        for name in (args.mixes or ["dedup-heavy", "cache-cold"])
    ]
    slo = parse_slo(args.slo) if args.slo else SLOSpec()
    config = default_load_config(seed=args.seed)
    # one attempt per scheduled arrival: a retry would be a second
    # arrival the rate clock never scheduled (see repro.loadgen docs)
    no_retry = RetryPolicy(max_retries=0)

    mixes_block = {}
    stages_by_mix = {}
    for profile in profiles:
        client = GatewayClient(
            args.remote, token=args.token, retry=no_retry
        )
        generator = OpenLoopGenerator(
            MixSubmitter(client, profile, config),
            mix_name=profile.name,
            expect_rejections=profile.expect_rejections,
            concurrency=args.concurrency,
        )
        summaries, stages = [], []
        for rps in rates:
            print(
                f"[load] {profile.name} @ {rps:g} rps "
                f"for {args.duration:g}s ..."
            )
            stage = generator.run(
                rps=rps, duration_seconds=args.duration
            )
            completions = None
            if args.complete_timeout > 0 and stage.job_ids():
                completions = collect_completion_latencies(
                    client,
                    stage.job_ids(),
                    timeout_seconds=args.complete_timeout,
                )
            summary = summarize_stage(stage, completions)
            summaries.append(summary)
            stages.append(stage)
            print(
                f"[load]   achieved {summary['achieved_rps']:g} rps, "
                f"ok {summary['ok']}/{summary['requests']}, "
                f"shed {summary['shed']}, errors {summary['errors']}"
            )
        mixes_block[profile.name] = {
            "summary": profile.summary,
            "stages": summaries,
            "knee": find_knee(summaries),
        }
        stages_by_mix[profile.name] = stages

    slo_block = {"objective": slo.to_dict(), "mixes": {}, "ok": True}
    for name, stages in stages_by_mix.items():
        verdict = evaluate_slo(slo, stages)
        slo_block["mixes"][name] = verdict
        slo_block["ok"] = slo_block["ok"] and verdict["ok"]

    soak_block = None
    if args.soak_seconds > 0:
        soak_rps = (
            args.soak_rps if args.soak_rps is not None else rates[0]
        )
        print(
            f"[load] soak: {args.soak_mix} @ {soak_rps:g} rps for "
            f"{args.soak_seconds:g}s with chaos seams armed ..."
        )
        with contextlib.ExitStack() as stack:
            baseline_dir = args.baseline_dir
            if baseline_dir is None:
                baseline_dir = Path(
                    stack.enter_context(
                        tempfile.TemporaryDirectory(
                            prefix="repro-load-baseline-"
                        )
                    )
                )
            soak_block, soak_stage = run_soak(
                GatewayClient(args.remote, token=args.token),
                get_mix(args.soak_mix),
                config,
                rps=soak_rps,
                duration_seconds=args.soak_seconds,
                baseline_dir=baseline_dir,
                concurrency=args.concurrency,
            )
            soak_block["slo"] = evaluate_slo(slo, [soak_stage])

    report = build_report(
        mixes_block,
        slo_block,
        soak_block,
        context={
            "gateway": args.remote,
            "stage_duration_seconds": args.duration,
            "rates": rates,
        },
    )
    print(render_load_report(report))
    if args.out is not None:
        args.out.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.out}")
    if args.strict_slo and not slo_block["ok"]:
        return 3
    return 0


def _shard_block(args: argparse.Namespace):
    """The ``{"total", "degraded", "states"}`` shard-health block for
    ``status --shards`` (``None`` on an unsharded store)."""
    if args.remote is not None:
        return _remote_client(args).healthz().get("shards")
    states = DecompositionService(args.service_dir).shard_states()
    if states is None:
        return None
    return {
        "total": len(states),
        "degraded": [
            s["index"] for s in states if s["state"] != "healthy"
        ],
        "states": states,
    }


def _cmd_status(args: argparse.Namespace) -> int:
    _check_target(args)
    if args.show_shards:
        shards = _shard_block(args)
        if shards is None:
            print("single job store (unsharded)")
            return 0
        if args.as_json:
            print(json.dumps(shards, indent=2, sort_keys=True))
            return 0 if not shards["degraded"] else 3
        header = (
            f"{'shard':>5} {'state':<9} {'fails':>5}  last error"
        )
        print(header)
        print("-" * len(header))
        for state in shards["states"]:
            error = state.get("last_error") or "-"
            print(f"{state['index']:>5} {state['state']:<9} "
                  f"{state['consecutive_failures']:>5}  {error}")
        print()
        print(f"shards: {shards['total']} total, "
              f"{len(shards['degraded'])} degraded"
              + (f" ({', '.join(map(str, shards['degraded']))})"
                 if shards["degraded"] else ""))
        return 0 if not shards["degraded"] else 3
    (jobs_fn, job_fn, status_fn, prometheus_fn, _,
     workers_fn, jobs_page_fn) = _status_backend(args)
    if args.prometheus:
        print(prometheus_fn(), end="")
        return 0
    if args.show_workers:
        print(format_worker_table(workers_fn()))
        fleet = status_fn()["fleet"]
        print()
        print(f"workers: {fleet['workers']} seen, {fleet['live']} live, "
              f"{fleet['busy']} busy, {fleet['remote']} remote; "
              f"{fleet['jobs_completed']} completed / "
              f"{fleet['jobs_failed']} failed attempts")
        return 0
    if args.job is not None:
        print(format_job_table([job_fn(args.job)]))
        return 0
    if args.as_json:
        print(json.dumps(status_fn(), indent=2, sort_keys=True))
        return 0
    if args.limit is not None:
        # one server-side page — a deep queue never forces an
        # O(queue) response just to peek at it
        jobs, next_cursor = jobs_page_fn(limit=args.limit)
        print(format_job_table(jobs))
        if next_cursor is not None:
            print(f"... more jobs after cursor {next_cursor}")
    else:
        print(format_job_table(jobs_fn()))
    summary = status_fn()
    print()
    print(f"queue depth:    {summary['queue']['depth']}")
    print(f"cache hit rate: {summary['cache']['hit_rate']}")
    print(f"retries:        {summary['retries']['total']}")
    print(f"throughput:     {summary['timing']['jobs_per_second']} jobs/s")
    return 0


def _cmd_work(args: argparse.Namespace) -> int:
    _graceful_sigterm()
    agent = RemoteWorkerAgent(
        args.remote,
        token=args.token,
        worker_id=args.worker_id,
        checkpoint_every=(
            None if args.checkpoint_every == 0 else args.checkpoint_every
        ),
        heartbeat_seconds=args.heartbeat_seconds,
        claim_wait=args.claim_wait,
        drain=args.drain,
        isolated=args.isolated,
    )
    print(f"worker {agent.worker_id} claiming from {args.remote}"
          f"{' (isolated)' if args.isolated else ''}"
          f"{' until drained' if args.drain else ''}")
    try:
        stats = agent.run(max_jobs=args.max_jobs)
    except KeyboardInterrupt:
        agent.stop()
        stats = agent.stats
    print(f"worker {agent.worker_id} done: {stats.completed} completed "
          f"({stats.cache_hits} cached, {stats.resumed} resumed), "
          f"{stats.failed} failed, {stats.abandoned} abandoned, "
          f"{stats.superseded} superseded")
    return 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    _check_target(args)
    _, job_fn, _, _, design_fn, _, _ = _status_backend(args)
    design = design_fn(args.job)
    text = json.dumps(design, indent=2, sort_keys=True)
    if args.out is None:
        print(text)
        return 0
    args.out.write_text(text)
    job = job_fn(args.job)
    print(f"wrote {args.out} (job {job.id}, MED "
          f"{job.med if job.med is not None else 'n/a'})")
    return 0


def _cmd_admin(args: argparse.Namespace) -> int:
    if args.admin_command == "scrub":
        report = scrub_store(args.service_dir)
        if args.as_json:
            print(json.dumps(report, indent=2, sort_keys=True))
            return 0 if report["ok"] else 3
        for shard in report["shards"]:
            verdict = "ok" if shard["ok"] else "FINDINGS"
            jobs = "?" if shard["jobs"] is None else shard["jobs"]
            print(f"shard {shard['index']:>2} {verdict:<8} "
                  f"{jobs} job(s)  {shard['path']}")
            for finding in shard["findings"]:
                print(f"  - {finding}")
        print(f"scrub: {report['n_shards']} shard(s), "
              f"{'clean' if report['ok'] else 'findings above'}")
        return 0 if report["ok"] else 3
    if args.admin_command == "rebuild":
        report = rebuild_shard(args.service_dir, args.shard)
        if args.as_json:
            print(json.dumps(report, indent=2, sort_keys=True))
            return 0
        backed_up = report["backed_up"] or "nothing (shard file absent)"
        print(f"rebuilt shard {report['shard']} -> {report['path']}")
        print(f"  backed up:            {backed_up}")
        print(f"  jobs restored:        {report['restored']}")
        print(f"  terminal via journal: {report['terminal_from_journal']}")
        print(f"  done via artifact:    {report['done_from_artifact']}")
        print(f"  requeued to re-solve: {report['requeued']}")
        return 0
    raise AssertionError(
        f"unhandled admin command {args.admin_command!r}"
    )


def _cmd_trace_report(args: argparse.Namespace) -> int:
    events, metadata = load_trace(args.trace_file)
    summary = summarize_trace(events, metadata)
    if args.as_json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_report(summary))
    return 0


_DISPATCH = {
    "decompose": _cmd_decompose,
    "evaluate": _cmd_evaluate,
    "export-verilog": _cmd_export_verilog,
    "submit": _cmd_submit,
    "serve": _cmd_serve,
    "work": _cmd_work,
    "loadtest": _cmd_loadtest,
    "status": _cmd_status,
    "fetch": _cmd_fetch,
    "admin": _cmd_admin,
    "trace": _cmd_trace_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(args.verbose - args.quiet)
    if args.command == "list-workloads":
        return _cmd_list_workloads()
    if args.command == "list-solvers":
        return _cmd_list_solvers()
    if args.command == "list-kernels":
        return _cmd_list_kernels()
    handler = _DISPATCH.get(args.command)
    if handler is None:
        raise AssertionError(f"unhandled command {args.command!r}")
    try:
        return handler(args)
    except GatewayError as exc:
        # backpressure deserves an actionable message, not a bare error:
        # surface the server's Retry-After so the operator (or script)
        # knows when trying again will actually work
        message = f"error: {exc}"
        if exc.status in (429, 503) and exc.retry_after is not None:
            message += (
                f" — gateway is shedding load (HTTP {exc.status}); "
                f"retry after {exc.retry_after:g}s (Retry-After)"
            )
        print(message, file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: no such file: {exc.filename or exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
