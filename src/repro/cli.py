"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``decompose``
    Decompose a named workload (or reproduce it at reduced width) and
    write the resulting design to JSON.
``evaluate``
    Re-evaluate a saved design against its workload: MED, error rate,
    storage.
``export-verilog``
    Emit a saved design as a synthesizable Verilog module.
``list-workloads``
    Show the available benchmark workloads.

Examples
--------
.. code-block:: bash

    python -m repro decompose --workload cos --n-inputs 9 \\
        --mode joint --partitions 8 --rounds 2 --out cos.json
    python -m repro evaluate --design cos.json --workload cos --n-inputs 9
    python -m repro export-verilog --design cos.json --module cos_lut \\
        --out cos_lut.v
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.boolean.metrics import error_rate, mean_error_distance
from repro.core import CoreSolverConfig, FrameworkConfig, IsingDecomposer
from repro.lut import cascade_cost_report
from repro.lut.verilog import cascade_to_verilog
from repro.serialization import load_design, save_design
from repro.workloads import build_workload, workload_names

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Ising-model approximate disjoint decomposition (DAC 2024 "
            "reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    dec = sub.add_parser(
        "decompose", help="decompose a workload and save the design"
    )
    dec.add_argument("--workload", required=True,
                     help=f"one of {', '.join(workload_names())}")
    dec.add_argument("--n-inputs", type=int, default=9)
    dec.add_argument("--mode", choices=("separate", "joint"),
                     default="joint")
    dec.add_argument("--partitions", type=int, default=8,
                     help="candidate partitions per component (paper: 1000)")
    dec.add_argument("--rounds", type=int, default=2,
                     help="framework rounds (paper: 5)")
    dec.add_argument("--seed", type=int, default=0)
    dec.add_argument("--max-iterations", type=int, default=2000)
    dec.add_argument("--replicas", type=int, default=4)
    dec.add_argument("--out", type=Path, required=True,
                     help="output JSON path")

    ev = sub.add_parser(
        "evaluate", help="evaluate a saved design against its workload"
    )
    ev.add_argument("--design", type=Path, required=True)
    ev.add_argument("--workload", required=True)
    ev.add_argument("--n-inputs", type=int, default=9)

    vlog = sub.add_parser(
        "export-verilog", help="emit a saved design as Verilog"
    )
    vlog.add_argument("--design", type=Path, required=True)
    vlog.add_argument("--module", default="approx_lut")
    vlog.add_argument("--out", type=Path, default=None,
                      help="output .v path (default: stdout)")

    sub.add_parser("list-workloads", help="list benchmark workloads")
    return parser


def _cmd_decompose(args: argparse.Namespace) -> int:
    workload = build_workload(args.workload, n_inputs=args.n_inputs)
    config = FrameworkConfig(
        mode=args.mode,
        free_size=workload.free_size,
        n_partitions=args.partitions,
        n_rounds=args.rounds,
        seed=args.seed,
        solver=CoreSolverConfig(
            max_iterations=args.max_iterations, n_replicas=args.replicas
        ),
    )
    result = IsingDecomposer(config).decompose(workload.table)
    save_design(result, args.out)
    print(
        f"decomposed {args.workload} (n={args.n_inputs}, mode={args.mode}): "
        f"MED {result.med:.4f}, {result.total_lut_bits} cascade bits "
        f"(flat {result.flat_lut_bits}), "
        f"{result.runtime_seconds:.2f}s -> {args.out}"
    )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    design = load_design(args.design)
    workload = build_workload(args.workload, n_inputs=args.n_inputs)
    if design.n_inputs != workload.table.n_inputs or (
        design.n_outputs != workload.table.n_outputs
    ):
        print(
            f"error: design is {design.n_inputs}->{design.n_outputs} bits "
            f"but workload is {workload.table.n_inputs}->"
            f"{workload.table.n_outputs}",
            file=sys.stderr,
        )
        return 2
    approx = design.to_truth_table(workload.table.probabilities)
    report = cascade_cost_report(design)
    print(f"design:      {args.design}")
    print(f"MED:         {mean_error_distance(workload.table, approx):.4f}")
    print(f"error rate:  {error_rate(workload.table, approx):.4f}")
    print(f"storage:     {report}")
    return 0


def _cmd_export_verilog(args: argparse.Namespace) -> int:
    design = load_design(args.design)
    verilog = cascade_to_verilog(design, module_name=args.module)
    if args.out is None:
        print(verilog, end="")
    else:
        args.out.write_text(verilog)
        print(f"wrote {args.out} ({design.total_bits} ROM bits)")
    return 0


def _cmd_list_workloads() -> int:
    for name in workload_names():
        print(name)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "decompose":
        return _cmd_decompose(args)
    if args.command == "evaluate":
        return _cmd_evaluate(args)
    if args.command == "export-verilog":
        return _cmd_export_verilog(args)
    if args.command == "list-workloads":
        return _cmd_list_workloads()
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
