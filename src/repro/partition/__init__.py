"""Partition-and-stitch: solve Ising models wider than one worker.

The subsystem has three client-side pieces riding entirely on the
existing service plane:

* a **planner** (:mod:`repro.partition.planner`) — a deterministic
  seeded balanced min-cut split of the coupling graph into ``k``
  blocks;
* a **dispatcher** (:mod:`repro.partition.dispatch`) — fans clamped
  subproblems out as ordinary :class:`~repro.service.spec.JobSpec`
  jobs, in-process or across a gateway fleet, inheriting
  content-address caching, checkpointed durability, and retry
  semantics for free;
* a **stitcher** (:mod:`repro.partition.stitcher`) — runs
  boundary-spin coordination rounds (clamp, solve, Jacobi-update,
  re-measure the cut) until the boundary energy converges or the
  round budget runs out, and emits one stitched
  :class:`~repro.ising.solvers.base.SolveResult`.

:mod:`repro.partition.verify` re-derives byte-comparable verification
verdicts and :mod:`repro.partition.instances` builds the canonical
wide test instances.  See ``docs/architecture.md`` for the wire-level
walk-through.
"""

from repro.partition.dispatch import LocalDispatcher, RemoteDispatcher
from repro.partition.planner import (
    PartitionPlan,
    boundary_energy,
    plan_partition,
)
from repro.partition.stitcher import (
    PartitionCoordinator,
    StitchedSolve,
    run_partitioned_spec,
)
from repro.partition.verify import canonical_verdict, verify_result

__all__ = [
    "LocalDispatcher",
    "PartitionCoordinator",
    "PartitionPlan",
    "RemoteDispatcher",
    "StitchedSolve",
    "boundary_energy",
    "canonical_verdict",
    "plan_partition",
    "run_partitioned_spec",
    "verify_result",
]
