"""Boundary-spin coordination: solve the blocks, stitch the model.

One round of the coordinator:

1. for every block, clamp all *other* spins at the current global
   state and fold them into the block's biases/offset
   (:func:`~repro.ising.subproblem.extract_subproblem`);
2. ship the clamped blocks through the dispatcher as ordinary Ising
   :class:`~repro.service.spec.JobSpec` jobs — in parallel across the
   fleet, content-address cached, checkpoint-journal durable, exactly
   like any other job;
3. apply every block's best spins *simultaneously* (Jacobi update —
   each subproblem saw the same pre-round state, so the update order
   cannot matter), then measure the boundary energy
   ``-Σ_cut J_ij σ_i σ_j`` the blocks could not see.

Rounds repeat until the global state reaches a fixed point or the
boundary energy changes by at most ``tolerance``
(``stop_reason="boundary_converged"``), or the round budget runs out
(``"round_budget_exhausted"``).  The best full-model state over *all*
rounds is returned — a coordination round is a proposal, never a
commitment.

Delta reuse: a block whose clamp context did not change between rounds
produces a child spec with the *same artifact key*, so its previous
result is reused without touching the queue at all (and even a
re-submitted twin would resolve from the artifact cache — the reuse
here just skips the round trip).

Resilience: the ``partition.round_fail`` fault site fires at round
start under an installed :class:`~repro.resilience.FaultPlan`; a
failed round (injected or real — a dispatcher error, a failed
subproblem) is retried up to ``round_retries`` times, which is cheap
because every already-solved subproblem of the round replays from the
artifact cache.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import FrameworkConfig
from repro.errors import GatewayError, ReproError, ServiceError
from repro.ising.solvers.base import SolveResult
from repro.ising.subproblem import assemble_state, extract_subproblem
from repro.ising.wire import (
    make_problem,
    problem_model,
    solve_result_from_dict,
)
from repro.obs.logconfig import get_logger
from repro.obs.metrics import get_metrics
from repro.obs.tracing import get_tracer
from repro.partition.planner import (
    PartitionPlan,
    boundary_energy,
    plan_partition,
)
from repro.resilience import InjectedFault, active_fault_plan
from repro.service.spec import JobSpec, spec_artifact_key

logger = get_logger("repro.partition.stitcher")

__all__ = ["StitchedSolve", "PartitionCoordinator", "run_partitioned_spec"]


@dataclass
class StitchedSolve:
    """What a partitioned solve produced, plus its coordination story.

    Attributes
    ----------
    result:
        The stitched :class:`~repro.ising.solvers.base.SolveResult` —
        best full-model state across all rounds, exactly re-evaluated.
    plan:
        The deterministic partition used.
    rounds:
        Coordination rounds executed (0 for the ``k == 1`` degenerate
        case, which is a single monolithic job with no stitching).
    boundary_energies:
        Per-round boundary energy after the Jacobi update — the
        convergence trace the issue asks the metadata to carry.
    reused_solves:
        Subproblem solves skipped because their artifact key was
        unchanged from the previous round.
    child_artifact_keys:
        Every distinct child artifact key, in first-use order.
    artifact_key:
        The *monolithic* artifact key when ``k == 1`` (identical to a
        plain submission by construction), else ``None`` — a stitched
        result is a client-side composition, not a queue artifact.
    """

    result: SolveResult
    plan: PartitionPlan
    rounds: int
    boundary_energies: List[float] = field(default_factory=list)
    reused_solves: int = 0
    child_artifact_keys: List[str] = field(default_factory=list)
    artifact_key: Optional[str] = None

    def summary(self) -> Dict:
        """JSON-safe digest for CLI output and benchmark payloads."""
        return {
            "partition": self.plan.summary(),
            "rounds": self.rounds,
            "stop_reason": self.result.stop_reason,
            "energy": float(self.result.energy),
            "objective": float(self.result.objective),
            "boundary_energies": [
                float(e) for e in self.boundary_energies
            ],
            "reused_solves": int(self.reused_solves),
            "n_child_solves": len(self.child_artifact_keys),
            "artifact_key": self.artifact_key,
        }


class PartitionCoordinator:
    """Client-side owner of one partitioned solve (module docstring).

    Parameters
    ----------
    dispatcher:
        A :class:`~repro.partition.dispatch.LocalDispatcher` or
        :class:`~repro.partition.dispatch.RemoteDispatcher`.
    config:
        The framework config every child job runs under (seed
        included — subproblem solves are as deterministic as any job).
    k / max_rounds / tolerance / seed:
        The partition block's semantics: block count, round budget,
        boundary-energy convergence tolerance, and the planner seed.
    round_retries:
        Extra attempts per failed round (injected or real) before the
        failure propagates.
    timeout_seconds / max_attempts:
        Per-child-job execution policy, forwarded to each
        :class:`~repro.service.spec.JobSpec`.
    """

    def __init__(
        self,
        dispatcher,
        config: FrameworkConfig,
        k: int,
        max_rounds: int = 8,
        tolerance: float = 0.0,
        seed: int = 0,
        round_retries: int = 2,
        timeout_seconds: Optional[float] = None,
        max_attempts: int = 3,
    ) -> None:
        if k < 1:
            raise ServiceError(f"partition k must be >= 1, got {k}")
        if max_rounds < 1:
            raise ServiceError(
                f"partition max_rounds must be >= 1, got {max_rounds}"
            )
        self.dispatcher = dispatcher
        self.config = config
        self.k = int(k)
        self.max_rounds = int(max_rounds)
        self.tolerance = float(tolerance)
        self.seed = int(seed)
        self.round_retries = int(round_retries)
        self.timeout_seconds = timeout_seconds
        self.max_attempts = int(max_attempts)

    # ------------------------------------------------------------------

    def _child_spec(self, problem: Dict) -> JobSpec:
        return JobSpec(
            config=self.config,
            ising=problem,
            timeout_seconds=self.timeout_seconds,
            max_attempts=self.max_attempts,
        )

    def solve(self, problem: Dict) -> StitchedSolve:
        """Run the partitioned solve of one validated problem doc."""
        if self.k == 1:
            return self._solve_monolithic(problem)
        return self._solve_partitioned(problem)

    def _solve_monolithic(self, problem: Dict) -> StitchedSolve:
        """``k == 1``: one ordinary job, byte-identical to no-partition.

        The spec carries no partition block (``k == 1`` normalizes out
        of the artifact key anyway), so the artifact written — and the
        key it lives under — is exactly what a plain submission
        produces; the acceptance criterion of the degenerate case.
        """
        spec = self._child_spec(problem)
        [(key, doc)] = self.dispatcher.solve_all([spec])
        result = solve_result_from_dict(doc)
        return StitchedSolve(
            result=result,
            plan=plan_partition(problem_model(problem), 1, self.seed),
            rounds=0,
            child_artifact_keys=[key],
            artifact_key=key,
        )

    def _solve_partitioned(self, problem: Dict) -> StitchedSolve:
        start = time.monotonic()
        model = problem_model(problem)
        solver_name = problem["solver"]
        plan = plan_partition(model, self.k, self.seed)
        tracer = get_tracer()
        metrics = get_metrics()
        rng = np.random.default_rng(self.seed)
        state = rng.choice(np.array([-1.0, 1.0]), size=model.n_spins)

        best_state = state.copy()
        best_objective = float(model.objective(state))
        # the round map is deterministic, so revisiting any state means
        # the iteration is on a cycle and can never improve again
        seen_states = {state.tobytes()}
        boundary_energies: List[float] = []
        energy_trace: List[float] = []
        child_keys: List[str] = []
        seen_keys: set = set()
        last_key: List[Optional[str]] = [None] * self.k
        last_spins: List[Optional[np.ndarray]] = [None] * self.k
        reused_total = 0
        retries_total = 0
        child_iterations = 0
        stop_reason = "round_budget_exhausted"
        rounds_run = 0

        for round_index in range(self.max_rounds):
            with tracer.span(
                "partition_round",
                category="partition",
                round=round_index + 1,
                k=self.k,
            ) as span:
                new_state, reused, iters, retries = self._run_round(
                    model, problem, plan, state, round_index,
                    solver_name, last_key, last_spins,
                    child_keys, seen_keys,
                )
                reused_total += reused
                retries_total += retries
                child_iterations += iters
                rounds_run += 1
                metrics.counter(
                    "partition_rounds_total",
                    help="boundary-coordination rounds executed",
                ).inc()
                b_energy = boundary_energy(
                    model, new_state, plan.boundary
                )
                objective = float(model.objective(new_state))
                energy_trace.append(float(model.energy(new_state)))
                if objective < best_objective:
                    best_objective = objective
                    best_state = new_state.copy()
                converged = bool(
                    new_state.tobytes() in seen_states
                    or (
                        len(boundary_energies) > 0
                        and abs(b_energy - boundary_energies[-1])
                        <= self.tolerance
                    )
                )
                seen_states.add(new_state.tobytes())
                boundary_energies.append(float(b_energy))
                span.set_args(
                    boundary_energy=float(b_energy),
                    objective=objective,
                    reused=reused,
                    converged=converged,
                )
                state = new_state
                if converged:
                    stop_reason = "boundary_converged"
                    break

        if reused_total:
            metrics.counter(
                "partition_reused_solves_total",
                help="subproblem solves reused across rounds (delta "
                "dispatch)",
            ).inc(reused_total)
        result = SolveResult(
            spins=best_state,
            energy=float(model.energy(best_state)),
            objective=float(model.objective(best_state)),
            n_iterations=max(1, child_iterations),
            stop_reason=stop_reason,
            energy_trace=energy_trace,
            runtime_seconds=time.monotonic() - start,
            metadata={
                "solver": f"partition(k={self.k})+{solver_name}",
                "backend": "partition",
                "dtype": "float64",
                "n_replicas": 1,
                "partition": {
                    **plan.summary(),
                    "max_rounds": self.max_rounds,
                    "tolerance": self.tolerance,
                    "rounds": rounds_run,
                    "boundary_energies": [
                        float(e) for e in boundary_energies
                    ],
                    "reused_solves": reused_total,
                    "round_retries": retries_total,
                },
            },
        )
        return StitchedSolve(
            result=result,
            plan=plan,
            rounds=rounds_run,
            boundary_energies=boundary_energies,
            reused_solves=reused_total,
            child_artifact_keys=child_keys,
            artifact_key=None,
        )

    # ------------------------------------------------------------------

    def _run_round(
        self,
        model,
        problem: Dict,
        plan: PartitionPlan,
        state: np.ndarray,
        round_index: int,
        solver_name: str,
        last_key: List[Optional[str]],
        last_spins: List[Optional[np.ndarray]],
        child_keys: List[str],
        seen_keys: set,
    ) -> Tuple[np.ndarray, int, int, int]:
        """One round with bounded retries.

        Returns ``(new_state, n_reused, child_iterations, n_retries)``.
        Retried work is cheap: completed subproblems of the failed
        attempt replay from the artifact cache.
        """
        retries = 0
        while True:
            try:
                plan_faults = active_fault_plan()
                if plan_faults is not None and plan_faults.should_fire(
                    "partition.round_fail",
                    f"round:{round_index}:attempt:{retries}",
                ):
                    raise InjectedFault(
                        f"injected partition round failure "
                        f"(round {round_index + 1})"
                    )
                new_state, reused, iters = self._execute_round(
                    model, problem, plan, state, solver_name,
                    last_key, last_spins, child_keys, seen_keys,
                )
                return new_state, reused, iters, retries
            except (InjectedFault, ServiceError, GatewayError) as exc:
                retries += 1
                get_metrics().counter(
                    "partition_round_retries_total",
                    help="failed coordination rounds retried",
                ).inc()
                logger.warning(
                    "partition round %d attempt %d failed (%s: %s)%s",
                    round_index + 1, retries, type(exc).__name__, exc,
                    "; retrying" if retries <= self.round_retries
                    else "; giving up",
                )
                if retries > self.round_retries:
                    raise ReproError(
                        f"partition round {round_index + 1} failed "
                        f"after {retries} attempts: {exc}"
                    ) from exc

    def _execute_round(
        self,
        model,
        problem: Dict,
        plan: PartitionPlan,
        state: np.ndarray,
        solver_name: str,
        last_key: List[Optional[str]],
        last_spins: List[Optional[np.ndarray]],
        child_keys: List[str],
        seen_keys: set,
    ) -> Tuple[np.ndarray, int, int]:
        pending: List[Tuple[int, str, JobSpec]] = []
        reused = 0
        for b in range(self.k):
            sub = extract_subproblem(model, plan.blocks[b], state)
            child = make_problem(sub.model, solver=solver_name)
            spec = self._child_spec(child)
            key = spec_artifact_key(spec)
            if key == last_key[b] and last_spins[b] is not None:
                reused += 1
                continue
            pending.append((b, key, spec))
        iterations = 0
        if pending:
            solved = self.dispatcher.solve_all(
                [spec for _, _, spec in pending]
            )
            for (b, key, _), (artifact_key, doc) in zip(
                pending, solved
            ):
                result = solve_result_from_dict(doc)
                last_key[b] = artifact_key or key
                last_spins[b] = np.asarray(result.spins, dtype=float)
                iterations += int(result.n_iterations)
                if last_key[b] not in seen_keys:
                    seen_keys.add(last_key[b])
                    child_keys.append(last_key[b])
        new_state = state.copy()
        for b in range(self.k):
            new_state = assemble_state(
                new_state,
                np.asarray(plan.blocks[b], dtype=np.intp),
                last_spins[b],
            )
        return new_state, reused, iterations


def run_partitioned_spec(dispatcher, spec: JobSpec) -> StitchedSolve:
    """Coordinate the solve a spec's ``partition`` block describes.

    The spec must carry an Ising problem; a missing partition block
    degenerates to ``k == 1`` (one monolithic job).  This is the CLI's
    entry point for ``repro submit --ising-model ... --partition K``.
    """
    if spec.ising is None:
        raise ServiceError(
            "run_partitioned_spec needs an Ising-problem spec"
        )
    block = spec.partition or {}
    coordinator = PartitionCoordinator(
        dispatcher,
        spec.config,
        k=int(block.get("k", 1)),
        max_rounds=int(block.get("max_rounds", 8)),
        tolerance=float(block.get("tolerance", 0.0)),
        seed=int(block.get("seed", 0)),
        timeout_seconds=spec.timeout_seconds,
        max_attempts=spec.max_attempts,
    )
    return coordinator.solve(spec.ising)
