"""Where a round's subproblem jobs actually run.

The stitcher never talks to a queue directly — it hands each round's
:class:`~repro.service.spec.JobSpec` batch to a *dispatcher* and gets
back ``(artifact_key, result document)`` pairs in submission order.
Two implementations cover the two deployment shapes:

:class:`LocalDispatcher`
    In-process, over one :class:`~repro.service.DecompositionService`.
    Submissions are idempotent and the service is drained per round, so
    the subproblems still flow through the job store, the artifact
    cache, checkpoint-free Ising execution, and the retry machinery —
    everything a remote worker would give, minus HTTP.

:class:`RemoteDispatcher`
    Over a gateway via :class:`~repro.fleet.client.FleetClient`: submit
    the round, fan in with
    :meth:`~repro.fleet.client.FleetClient.wait_many`, fetch result
    envelopes.  The gateway's artifact-key dedup makes re-dispatching
    an unchanged subproblem (a stitcher retry, a crashed coordinator
    rerun) resolve from the cache instead of re-solving.

Both raise :class:`~repro.errors.ServiceError` naming the job when a
subproblem finishes in a non-``done`` state — a failed subproblem fails
the round, and the stitcher's bounded round-retry owns what happens
next.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ServiceError
from repro.service.spec import JobSpec

__all__ = ["LocalDispatcher", "RemoteDispatcher"]


class LocalDispatcher:
    """Run each round inside one in-process service (module docs)."""

    def __init__(self, service) -> None:
        self.service = service

    def solve_all(
        self, specs: Sequence[JobSpec]
    ) -> List[Tuple[str, Dict]]:
        """Solve ``specs``; ``(artifact_key, result doc)`` per spec."""
        records = [
            self.service.submit_idempotent(spec)[0] for spec in specs
        ]
        self.service.run_until_drained()
        out: List[Tuple[str, Dict]] = []
        for record in records:
            job = self.service.job(record.id)
            if job.state != "done":
                raise ServiceError(
                    f"subproblem job {job.id} ended {job.state!r}"
                    + (f": {job.error}" if job.error else "")
                )
            envelope = self.service.fetch_envelope(job.id)
            out.append((job.artifact_key, envelope["design"]))
        return out


class RemoteDispatcher:
    """Fan each round out across a gateway's fleet (module docs).

    Parameters
    ----------
    client:
        A connected :class:`~repro.fleet.client.FleetClient`.
    poll_seconds / timeout_seconds:
        Fan-in polling cadence and the shared per-round deadline
        (``None`` — wait indefinitely); timeouts surface as
        :class:`~repro.errors.GatewayError` from ``wait_many``.
    """

    def __init__(
        self,
        client,
        poll_seconds: float = 0.25,
        timeout_seconds=None,
    ) -> None:
        self.client = client
        self.poll_seconds = poll_seconds
        self.timeout_seconds = timeout_seconds

    def solve_all(
        self, specs: Sequence[JobSpec]
    ) -> List[Tuple[str, Dict]]:
        """Solve ``specs``; ``(artifact_key, result doc)`` per spec."""
        records = [self.client.submit(spec)[0] for spec in specs]
        finished = self.client.wait_many(
            [record.id for record in records],
            poll_seconds=self.poll_seconds,
            timeout_seconds=self.timeout_seconds,
        )
        out: List[Tuple[str, Dict]] = []
        for job in finished:
            if job.state != "done":
                raise ServiceError(
                    f"subproblem job {job.id} ended {job.state!r}"
                    + (f": {job.error}" if job.error else "")
                )
            envelope = self.client.result(job.id)
            out.append((job.artifact_key, envelope["design"]))
        return out
