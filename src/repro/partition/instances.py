"""Canonical large Ising instances for the partition subsystem.

The partition benchmarks, the CI smoke job, and the docs quickstart
all need the same thing: a *real* core-COP Ising model — not a random
graph — that is wide enough to exercise partitioning and still decodes
back to an application object.  :func:`separate_mode_instance` builds
one from a registered workload: one output component laid out as a
Boolean matrix under a fixed free/bound input split, weighted by the
separate mode (Eq. 9), densified, and wrapped as a submittable
``repro-ising-problem`` with a ``column_setting`` decode hint.

Spin count is ``2 * 2**free_size + 2**(n_inputs - free_size)``, so the
width is tunable without changing problem character::

    n_inputs=6,  free_size=2  ->  24 spins   (CI smoke)
    n_inputs=8,  free_size=3  ->  48 spins   (benchmark quality sweep)
    n_inputs=10, free_size=3  ->  144 spins  (beyond a 96-spin worker)

Run as a module to write the problem JSON for shell pipelines::

    python -m repro.partition.instances --n-inputs 6 --free-size 2 \\
        --out problem.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional

from repro.boolean.boolean_matrix import BooleanMatrix
from repro.boolean.partition import InputPartition
from repro.core.ising_formulation import separate_mode_weights
from repro.errors import ConfigurationError
from repro.ising.structured import BipartiteDecompositionModel
from repro.ising.wire import make_problem
from repro.workloads.registry import build_workload

__all__ = ["separate_mode_instance", "main"]


def separate_mode_instance(
    workload: str = "cos",
    n_inputs: int = 8,
    free_size: int = 3,
    component: int = 0,
    solver: str = "bsb",
) -> Dict:
    """One component's separate-mode COP as a submittable problem doc.

    The lowest ``free_size`` input variables form the free set (rows),
    the rest the bound set (columns) — a fixed convention, so the same
    arguments always produce the byte-identical document (and hence
    the same artifact keys downstream).
    """
    if not 0 < free_size < n_inputs:
        raise ConfigurationError(
            f"free_size must lie strictly between 0 and n_inputs="
            f"{n_inputs}, got {free_size}"
        )
    table = build_workload(workload, n_inputs=n_inputs).table
    partition = InputPartition(
        free=range(free_size),
        bound=range(free_size, n_inputs),
        n_inputs=n_inputs,
    )
    matrix = BooleanMatrix.from_function(table, component, partition)
    weights, offset = separate_mode_weights(matrix)
    model = BipartiteDecompositionModel(weights, offset).to_dense()
    decode = {
        "kind": "column_setting",
        "n_rows": partition.n_rows,
        "n_cols": partition.n_cols,
    }
    return make_problem(model, solver=solver, decode=decode)


def main(argv: Optional[list] = None) -> int:
    """Write a problem document to ``--out`` (or stdout)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.partition.instances",
        description=(
            "Emit a canonical separate-mode Ising problem document"
        ),
    )
    parser.add_argument("--workload", default="cos")
    parser.add_argument("--n-inputs", type=int, default=8)
    parser.add_argument("--free-size", type=int, default=3)
    parser.add_argument("--component", type=int, default=0)
    parser.add_argument("--solver", default="bsb")
    parser.add_argument(
        "--out", default=None, help="output path (default: stdout)"
    )
    args = parser.parse_args(argv)
    problem = separate_mode_instance(
        workload=args.workload,
        n_inputs=args.n_inputs,
        free_size=args.free_size,
        component=args.component,
        solver=args.solver,
    )
    text = json.dumps(problem, sort_keys=True) + "\n"
    if args.out is None:
        sys.stdout.write(text)
    else:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
