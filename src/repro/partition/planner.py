"""Balanced min-cut planning over an Ising coupling graph.

The planner splits the ``n_spins`` of a model into ``k`` blocks of
near-equal size while keeping as much coupling *weight* as possible
inside blocks.  It is deliberately a cheap classical heuristic — a
seeded random balanced assignment refined by bounded
Kernighan–Lin-style single-spin moves — because the plan only shapes
*where* the solver effort goes; solution quality is recovered by the
stitcher's boundary-coordination rounds, not by an optimal cut.

Determinism contract: the only randomness is the initial permutation,
drawn from ``np.random.default_rng(seed)``; refinement visits spins in
a fixed order and breaks ties toward the lowest block index.  The same
``(model, k, seed)`` therefore always yields the identical
:class:`PartitionPlan` — which the partition artifact key relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import DimensionError
from repro.ising.model import DenseIsingModel, IsingModel

__all__ = ["PartitionPlan", "plan_partition", "boundary_energy"]

#: refinement stops after this many full passes even if still improving
_MAX_REFINE_PASSES = 8


@dataclass(frozen=True)
class PartitionPlan:
    """One deterministic split of a model's spins into ``k`` blocks.

    Attributes
    ----------
    n_spins / k / seed:
        The planning inputs (the plan is a pure function of these plus
        the coupling structure).
    blocks:
        ``k`` sorted, disjoint index tuples covering ``range(n_spins)``
        exactly; block sizes differ by at most one.
    block_of:
        Inverse map, shape ``(n_spins,)``: ``block_of[i]`` is the block
        owning spin ``i``.
    boundary:
        Every nonzero coupling ``(i, j)`` with ``i < j`` whose
        endpoints live in different blocks — the couplings the
        subproblems can only see through clamped neighbor spins.
    cut_weight:
        ``sum(|J_ij|)`` over :attr:`boundary` (the quantity refinement
        minimizes).
    """

    n_spins: int
    k: int
    seed: int
    blocks: Tuple[Tuple[int, ...], ...]
    block_of: np.ndarray
    boundary: Tuple[Tuple[int, int], ...]
    cut_weight: float

    def summary(self) -> Dict:
        """JSON-safe shape record for result metadata and logs."""
        return {
            "k": int(self.k),
            "seed": int(self.seed),
            "n_spins": int(self.n_spins),
            "block_sizes": [len(block) for block in self.blocks],
            "n_boundary_couplings": len(self.boundary),
            "cut_weight": float(self.cut_weight),
        }


def plan_partition(
    model: IsingModel, k: int, seed: int = 0
) -> PartitionPlan:
    """Split ``model`` into ``k`` balanced blocks (module docstring).

    ``k`` must satisfy ``1 <= k <= n_spins``.  ``k == 1`` returns the
    trivial single-block plan with an empty boundary — the degenerate
    case the coordinator maps back onto a monolithic solve.
    """
    dense = (
        model if isinstance(model, DenseIsingModel) else model.to_dense()
    )
    n = dense.n_spins
    k = int(k)
    if not 1 <= k <= n:
        raise DimensionError(
            f"partition k must lie in [1, {n}] for a {n}-spin model, "
            f"got {k}"
        )
    weights = np.abs(dense.couplings)
    rng = np.random.default_rng(seed)
    block_of = np.empty(n, dtype=np.intp)
    # balanced by construction: round-robin over a seeded permutation
    block_of[rng.permutation(n)] = np.arange(n) % k
    if k > 1:
        _refine(weights, block_of, k)
        _refine_swaps(weights, block_of, k)
    blocks = tuple(
        tuple(int(i) for i in np.flatnonzero(block_of == b))
        for b in range(k)
    )
    rows, cols = np.nonzero(np.triu(dense.couplings, k=1))
    crossing = block_of[rows] != block_of[cols]
    boundary = tuple(
        (int(i), int(j))
        for i, j in zip(rows[crossing], cols[crossing])
    )
    cut_weight = float(weights[rows[crossing], cols[crossing]].sum())
    return PartitionPlan(
        n_spins=n,
        k=k,
        seed=int(seed),
        blocks=blocks,
        block_of=block_of,
        boundary=boundary,
        cut_weight=cut_weight,
    )


def _refine(weights: np.ndarray, block_of: np.ndarray, k: int) -> None:
    """Greedy KL-style single-spin moves, in place, deterministic.

    A spin may move to the block holding the most of its coupling
    weight, provided sizes stay within the balanced band
    ``[n // k, ceil(n / k)]``.  Spins are visited in index order and
    ties break toward the lowest block index (``argmax``), so the
    refinement adds no randomness beyond the seeded start.
    """
    n = block_of.shape[0]
    lo, hi = n // k, -(-n // k)
    sizes = np.bincount(block_of, minlength=k)
    for _ in range(_MAX_REFINE_PASSES):
        moved = 0
        for i in range(n):
            current = block_of[i]
            if sizes[current] <= lo:
                continue
            attraction = np.bincount(
                block_of, weights=weights[i], minlength=k
            )
            attraction[sizes >= hi] = -np.inf
            attraction[current] = weights[i][block_of == current].sum()
            target = int(np.argmax(attraction))
            if target == current:
                continue
            if attraction[target] <= attraction[current] + 1e-12:
                continue
            block_of[i] = target
            sizes[current] -= 1
            sizes[target] += 1
            moved += 1
        if moved == 0:
            break


def _refine_swaps(
    weights: np.ndarray, block_of: np.ndarray, k: int
) -> None:
    """Greedy KL-style pair swaps, in place, deterministic.

    Single-spin moves cannot change anything once every block sits at
    its exact size band (always the case when ``k`` divides ``n``), so
    a second phase exchanges *pairs* of spins across blocks — the
    classic Kernighan–Lin move, which preserves sizes by construction.
    Swapping ``i`` (block ``a``) with ``j`` (block ``b``) changes the
    cut by ``-(gain)`` where::

        gain = (A[i, b] - A[i, a]) + (A[j, a] - A[j, b]) - 2 w_ij

    with ``A[i, c]`` the coupling weight between spin ``i`` and block
    ``c``; the ``2 w_ij`` term corrects for the (i, j) edge staying in
    the cut after both endpoints cross.  Spins are visited in index
    order and partners break ties toward the lowest index, so no
    randomness is added beyond the seeded start.
    """
    n = block_of.shape[0]
    for _ in range(_MAX_REFINE_PASSES):
        # attraction matrix A[i, c]: weight from spin i into block c
        attraction = np.zeros((n, k))
        for c in range(k):
            attraction[:, c] = weights[:, block_of == c].sum(axis=1)
        swapped = 0
        for i in range(n):
            a = block_of[i]
            others = block_of != a
            gains = np.full(n, -np.inf)
            b_of = block_of[others]
            gains[others] = (
                attraction[i, b_of]
                - attraction[i, a]
                + attraction[others, a]
                - attraction[others, b_of]
                - 2.0 * weights[i, others]
            )
            j = int(np.argmax(gains))
            if gains[j] <= 1e-12:
                continue
            b = block_of[j]
            block_of[i], block_of[j] = b, a
            # incremental A update: i left a for b, j left b for a
            attraction[:, a] += weights[:, j] - weights[:, i]
            attraction[:, b] += weights[:, i] - weights[:, j]
            swapped += 1
        if swapped == 0:
            break


def boundary_energy(
    model: IsingModel,
    state: np.ndarray,
    boundary: Sequence[Tuple[int, int]],
) -> float:
    """The cut couplings' contribution ``-Σ J_ij σ_i σ_j`` at ``state``.

    This is exactly the part of the full-model energy no subproblem
    optimizes on its own — the stitcher's convergence signal.
    """
    if not len(boundary):
        return 0.0
    dense = (
        model if isinstance(model, DenseIsingModel) else model.to_dense()
    )
    idx = np.asarray(boundary, dtype=np.intp)
    s = np.asarray(state, dtype=float).ravel()
    terms = dense.couplings[idx[:, 0], idx[:, 1]]
    return float(-(terms * s[idx[:, 0]] * s[idx[:, 1]]).sum())
