"""Independent verification verdicts for Ising solve results.

A *verdict* is a small canonical JSON document re-deriving everything
checkable about a result against its problem — valid spin values,
exact energy/objective re-evaluation, and (when the problem carries a
``column_setting`` decode hint) an exact decode round trip.

Verdicts deliberately exclude energies and spins: two independently
produced results for the same problem — say a ``k = 2`` stitched solve
on a remote fleet and a monolithic solve in-process — yield
*byte-identical* verdict documents whenever both verify, even when
their states differ.  That is what lets the CI smoke job compare the
two paths with ``cmp`` instead of a tolerance dance.
"""

from __future__ import annotations

import json
from typing import Dict

import numpy as np

from repro.core.ising_formulation import (
    setting_from_spins,
    spins_from_setting,
)
from repro.ising.wire import (
    model_sha256,
    problem_model,
    solve_result_from_dict,
)

__all__ = ["VERDICT_FORMAT", "verify_result", "canonical_verdict"]

VERDICT_FORMAT = "repro-partition-verdict"
VERDICT_SCHEMA_VERSION = 1


def verify_result(problem: Dict, result_doc: Dict) -> Dict:
    """Re-derive a verdict document for ``result_doc`` (module docs).

    ``problem`` is a validated ``repro-ising-problem`` document and
    ``result_doc`` a ``repro-ising-result`` document (a monolithic
    artifact or a stitched result — both share the wire shape).
    """
    model = problem_model(problem)
    result = solve_result_from_dict(result_doc)
    spins = np.asarray(result.spins, dtype=float).ravel()
    checks: Dict[str, bool] = {}
    checks["shape"] = spins.shape == (model.n_spins,)
    checks["spins_valid"] = bool(
        checks["shape"] and np.isin(spins, (-1.0, 1.0)).all()
    )
    if checks["spins_valid"]:
        energy = float(model.energy(spins))
        checks["energy_exact"] = bool(
            np.isclose(energy, result.energy, rtol=1e-9, atol=1e-9)
        )
        checks["objective_consistent"] = bool(
            np.isclose(
                result.objective,
                result.energy + model.offset,
                rtol=1e-9,
                atol=1e-9,
            )
        )
    else:
        checks["energy_exact"] = False
        checks["objective_consistent"] = False
    decode = problem.get("decode")
    decode_kind = None
    if decode is not None and checks["spins_valid"]:
        decode_kind = decode.get("kind")
        if decode_kind == "column_setting":
            setting = setting_from_spins(
                spins, int(decode["n_rows"]), int(decode["n_cols"])
            )
            checks["decode_roundtrip"] = bool(
                np.array_equal(spins_from_setting(setting), spins)
            )
    elif decode is not None:
        decode_kind = decode.get("kind")
        checks["decode_roundtrip"] = False
    return {
        "format": VERDICT_FORMAT,
        "schema_version": VERDICT_SCHEMA_VERSION,
        "model_sha256": model_sha256(problem["model"]),
        "n_spins": int(model.n_spins),
        "decode": decode_kind,
        "checks": checks,
        "verified": all(checks.values()),
    }


def canonical_verdict(verdict: Dict) -> str:
    """The byte-comparable serialization (sorted keys, one newline)."""
    return (
        json.dumps(verdict, sort_keys=True, separators=(",", ":")) + "\n"
    )
