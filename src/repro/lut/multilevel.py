"""Multi-level LUT cascades: lossless recursive decomposition.

The paper decomposes each output once, into ``F(phi(B), A)``.  Nothing
stops the two sub-functions from being decomposable *again* — ``phi``
is just a ``|B|``-input single-output function.  This module implements
the natural extension the paper leaves as future work, restricted to
the **lossless** case: a sub-LUT is split only when an *exact* disjoint
decomposition exists (Theorem 2 over some sub-partition), so the
refined design computes bit-for-bit the same function while storing
fewer bits.

The result is a tree of ROM nodes (:class:`LutNode`): a leaf holds a
truth vector; an inner node holds the partition of its own inputs, a
``phi`` child over the bound subset, and an ``F`` leaf over
``(phi, free subset)``.  :func:`refine_design` walks an existing
single-level :class:`~repro.lut.cascade.LutCascadeDesign` and greedily
refines every sub-LUT above a size threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.boolean.decomposition import column_setting_from_matrix
from repro.errors import DecompositionError
from repro.lut.cascade import LutCascadeDesign

__all__ = ["LutNode", "MultiLevelComponent", "MultiLevelDesign",
           "decompose_vector_exactly", "refine_design"]


@dataclass(frozen=True)
class LutNode:
    """One node of a multi-level LUT tree over ``n_inputs`` local inputs.

    Exactly one of the two shapes:

    * **leaf** — ``table`` holds the ``2**n_inputs`` truth bits;
    * **inner** — ``free``/``bound`` split the local inputs,
      ``phi`` is the child node over the bound inputs, and ``f_table``
      (shape ``(2, 2**|free|)``) is the output stage indexed by
      ``(phi value, free pattern)``.
    """

    n_inputs: int
    table: Optional[np.ndarray] = None
    free: Optional[Tuple[int, ...]] = None
    bound: Optional[Tuple[int, ...]] = None
    phi: Optional["LutNode"] = None
    f_table: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.is_leaf:
            table = np.ascontiguousarray(
                np.asarray(self.table), dtype=np.uint8
            )
            if table.shape != (1 << self.n_inputs,):
                raise DecompositionError(
                    f"leaf table must have shape ({1 << self.n_inputs},), "
                    f"got {table.shape}"
                )
            table.setflags(write=False)
            object.__setattr__(self, "table", table)
        else:
            if (
                self.free is None
                or self.bound is None
                or self.phi is None
                or self.f_table is None
            ):
                raise DecompositionError(
                    "inner node needs free, bound, phi, and f_table"
                )
            if sorted(self.free + self.bound) != list(range(self.n_inputs)):
                raise DecompositionError(
                    f"free {self.free} + bound {self.bound} must partition "
                    f"range({self.n_inputs})"
                )
            f_table = np.ascontiguousarray(
                np.asarray(self.f_table), dtype=np.uint8
            )
            if f_table.shape != (2, 1 << len(self.free)):
                raise DecompositionError(
                    f"f_table must have shape (2, {1 << len(self.free)}), "
                    f"got {f_table.shape}"
                )
            f_table.setflags(write=False)
            object.__setattr__(self, "f_table", f_table)
            object.__setattr__(self, "free", tuple(self.free))
            object.__setattr__(self, "bound", tuple(self.bound))

    @property
    def is_leaf(self) -> bool:
        """Whether this node is a plain ROM."""
        return self.table is not None

    @property
    def storage_bits(self) -> int:
        """Total ROM bits in this subtree."""
        if self.is_leaf:
            return 1 << self.n_inputs
        return self.phi.storage_bits + 2 * (1 << len(self.free))

    @property
    def depth(self) -> int:
        """LUT levels on the longest path (a leaf is depth 1)."""
        if self.is_leaf:
            return 1
        return 1 + self.phi.depth

    def evaluate(self, patterns: np.ndarray) -> np.ndarray:
        """Evaluate on local input patterns, shape ``(..., n_inputs)``.

        Bit order: ``patterns[..., 0]`` is the local MSB, matching the
        truth-vector index convention.
        """
        pats = np.asarray(patterns, dtype=np.int64)
        if pats.shape[-1] != self.n_inputs:
            raise DecompositionError(
                f"patterns last axis must be {self.n_inputs}, "
                f"got {pats.shape}"
            )
        if self.is_leaf:
            weights = 1 << np.arange(
                self.n_inputs - 1, -1, -1, dtype=np.int64
            )
            return self.table[pats @ weights]
        phi_values = self.phi.evaluate(pats[..., list(self.bound)])
        free_weights = 1 << np.arange(
            len(self.free) - 1, -1, -1, dtype=np.int64
        )
        rows = pats[..., list(self.free)] @ free_weights
        return self.f_table[phi_values.astype(np.intp), rows]

    def to_truth_vector(self) -> np.ndarray:
        """Materialize the subtree back into a flat truth vector."""
        size = 1 << self.n_inputs
        shifts = np.arange(self.n_inputs - 1, -1, -1, dtype=np.int64)
        patterns = (np.arange(size)[:, np.newaxis] >> shifts) & 1
        return self.evaluate(patterns)


def decompose_vector_exactly(
    vector: np.ndarray,
    min_inputs: int = 4,
) -> LutNode:
    """Recursively split a truth vector wherever Theorem 2 holds exactly.

    Tries every balanced-or-better sub-partition (bound set at least as
    large as the free set, which is where the storage win lives) and
    recurses into the ``phi`` child.  Functions below ``min_inputs``
    inputs stay leaves — at that size the cascade overhead exceeds the
    saving.
    """
    from itertools import combinations

    vec = np.ascontiguousarray(np.asarray(vector), dtype=np.uint8)
    n = int(vec.shape[0]).bit_length() - 1
    if (1 << n) != vec.shape[0]:
        raise DecompositionError(
            f"truth vector length must be a power of two, got {vec.shape[0]}"
        )
    if n < min_inputs:
        return LutNode(n_inputs=n, table=vec)

    shifts = np.arange(n - 1, -1, -1, dtype=np.int64)
    bits = (np.arange(1 << n)[:, np.newaxis] >> shifts) & 1

    best: Optional[LutNode] = None
    for free_size in range(1, n // 2 + 1):
        for free in combinations(range(n), free_size):
            bound = tuple(v for v in range(n) if v not in free)
            free_w = 1 << np.arange(free_size - 1, -1, -1, dtype=np.int64)
            bound_w = 1 << np.arange(
                len(bound) - 1, -1, -1, dtype=np.int64
            )
            rows = bits[:, list(free)] @ free_w
            cols = bits[:, list(bound)] @ bound_w
            matrix = np.empty((1 << free_size, 1 << len(bound)),
                              dtype=np.uint8)
            matrix[rows, cols] = vec
            setting = column_setting_from_matrix(matrix)
            if setting is None:
                continue
            phi_child = decompose_vector_exactly(
                setting.column_types, min_inputs
            )
            f_table = np.stack([setting.pattern1, setting.pattern2])
            candidate = LutNode(
                n_inputs=n, free=free, bound=bound,
                phi=phi_child, f_table=f_table,
            )
            if best is None or candidate.storage_bits < best.storage_bits:
                best = candidate
    if best is not None and best.storage_bits < (1 << n):
        return best
    return LutNode(n_inputs=n, table=vec)


@dataclass(frozen=True)
class MultiLevelComponent:
    """One output realized as an (optionally multi-level) LUT tree.

    The tree's local inputs are the *global* variables in ``variables``
    order (first entry = local MSB).
    """

    variables: Tuple[int, ...]
    root: LutNode
    n_global_inputs: int

    def evaluate(self, index) -> np.ndarray:
        """Evaluate on global input index/indices."""
        idx = np.asarray(index, dtype=np.int64)
        shifts = np.array(
            [self.n_global_inputs - 1 - v for v in self.variables],
            dtype=np.int64,
        )
        patterns = (idx[..., np.newaxis] >> shifts) & 1
        return self.root.evaluate(patterns)

    @property
    def storage_bits(self) -> int:
        """ROM bits in the whole tree."""
        return self.root.storage_bits


@dataclass(frozen=True)
class MultiLevelDesign:
    """A multi-output design with per-output LUT trees."""

    components: Dict[int, MultiLevelComponent]
    n_inputs: int
    n_outputs: int

    @property
    def total_bits(self) -> int:
        """Total ROM bits across outputs."""
        return sum(c.storage_bits for c in self.components.values())

    @property
    def flat_bits(self) -> int:
        """Undecomposed storage, ``m * 2^n``."""
        return self.n_outputs * (1 << self.n_inputs)

    def evaluate(self, index) -> np.ndarray:
        """Output bits for global input index/indices, shape ``(..., m)``."""
        columns = [
            self.components[k].evaluate(index)
            for k in range(self.n_outputs)
        ]
        return np.stack(columns, axis=-1)


def refine_design(
    design: LutCascadeDesign, min_inputs: int = 4
) -> MultiLevelDesign:
    """Losslessly refine a single-level cascade into multi-level trees.

    For every output, the first level keeps the design's accepted
    partition; the ``phi`` ROM is then recursively split wherever an
    exact Theorem-2 decomposition exists.  The refined design computes
    *exactly* the same function (integration-tested) with
    ``total_bits <= design.total_bits``.
    """
    components: Dict[int, MultiLevelComponent] = {}
    for k in range(design.n_outputs):
        flat = design.components[k]
        partition = flat.partition
        variables = tuple(partition.free) + tuple(partition.bound)
        local_free = tuple(range(len(partition.free)))
        local_bound = tuple(
            range(len(partition.free), partition.n_inputs)
        )
        phi_node = decompose_vector_exactly(flat.phi, min_inputs)
        root = LutNode(
            n_inputs=partition.n_inputs,
            free=local_free,
            bound=local_bound,
            phi=phi_node,
            f_table=flat.f_table,
        )
        components[k] = MultiLevelComponent(
            variables=variables,
            root=root,
            n_global_inputs=design.n_inputs,
        )
    return MultiLevelDesign(
        components=components,
        n_inputs=design.n_inputs,
        n_outputs=design.n_outputs,
    )
