"""LUT-cascade construction and cost modelling (the Fig. 1 economics).

Computing with memory stores a function's truth table in a lookup table;
a disjoint decomposition ``g = F(phi(B), A)`` replaces one ``2^n``-bit
LUT with a cascade of a ``2^|B|``-bit LUT (for ``phi``) feeding a
``2^(|A|+1)``-bit LUT (for ``F``).  This package turns accepted
decomposition settings — column-based or row-based — into evaluable
cascades and reports the storage economics.
"""

from repro.lut.cascade import (
    LutCascadeDesign,
    row_component,
    build_cascade_design,
)
from repro.lut.cost import CostReport, cascade_cost_report, flat_lut_bits

__all__ = [
    "CostReport",
    "LutCascadeDesign",
    "build_cascade_design",
    "cascade_cost_report",
    "flat_lut_bits",
    "row_component",
]
