"""Storage cost model for flat LUTs versus decomposed cascades.

The reproduction's cost unit is the *bit of LUT storage* — the quantity
Fig. 1 of the paper reasons about (a 5-input function needs 32 bits
flat, or 16 bits as a cascade).  The report also estimates relative
read-energy using the common square-root-of-capacity heuristic for SRAM
array access cost, which is enough to rank designs (absolute energy
numbers would need a technology model the paper does not use either).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import DimensionError
from repro.lut.cascade import LutCascadeDesign

__all__ = ["CostReport", "flat_lut_bits", "cascade_cost_report"]


def flat_lut_bits(n_inputs: int, n_outputs: int) -> int:
    """Bits to store an ``n``-input, ``m``-output function flat."""
    if n_inputs < 0 or n_outputs <= 0:
        raise DimensionError(
            f"invalid signature ({n_inputs} inputs, {n_outputs} outputs)"
        )
    return n_outputs * (1 << n_inputs)


@dataclass(frozen=True)
class CostReport:
    """Storage/access economics of a cascade design vs. the flat LUT.

    Attributes
    ----------
    flat_bits / cascade_bits:
        Storage of the two implementations.
    compression_ratio:
        ``flat_bits / cascade_bits``.
    relative_access_cost:
        Estimated cascade read cost relative to the flat LUT, using the
        ``sqrt(capacity)`` array-access heuristic summed over the two
        serial LUT reads of each cascade.
    per_output_bits:
        Cascade bits per output component.
    """

    flat_bits: int
    cascade_bits: int
    compression_ratio: float
    relative_access_cost: float
    per_output_bits: tuple

    def __str__(self) -> str:
        return (
            f"flat {self.flat_bits} bits -> cascade {self.cascade_bits} "
            f"bits ({self.compression_ratio:.2f}x smaller, "
            f"~{self.relative_access_cost:.2f}x relative access cost)"
        )


def cascade_cost_report(design: LutCascadeDesign) -> CostReport:
    """Compute the :class:`CostReport` of a cascade design."""
    per_output = tuple(
        design.components[k].lut_bits for k in range(design.n_outputs)
    )
    flat_per_output = 1 << design.n_inputs
    flat_access = design.n_outputs * np.sqrt(flat_per_output)
    cascade_access = 0.0
    for k in range(design.n_outputs):
        component = design.components[k]
        phi_bits = component.partition.n_cols
        f_bits = 2 * component.partition.n_rows
        cascade_access += np.sqrt(phi_bits) + np.sqrt(f_bits)
    relative = float(cascade_access / flat_access) if flat_access else 1.0
    return CostReport(
        flat_bits=design.flat_bits,
        cascade_bits=design.total_bits,
        compression_ratio=design.compression_ratio,
        relative_access_cost=relative,
        per_output_bits=per_output,
    )
