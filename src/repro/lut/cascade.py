"""Build evaluable LUT cascades from decomposition results.

A :class:`LutCascadeDesign` is the hardware-facing artifact: one
two-level LUT cascade per output component, evaluable bit-exactly.  It
is constructed from either the Ising framework's column-based result or
a baseline's row-based result; construction *proves* realizability
(every accepted setting must reconstruct into a Theorem-1/2-satisfying
matrix), and an integration test checks the cascade reproduces the
approximate truth table exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

import numpy as np

from repro.boolean.decomposition import ColumnSetting, RowSetting, RowType
from repro.boolean.partition import InputPartition
from repro.boolean.synthesis import (
    DecomposedComponent,
    component_from_column_setting,
)
from repro.boolean.truth_table import TruthTable
from repro.errors import DecompositionError

__all__ = ["LutCascadeDesign", "row_component", "build_cascade_design"]


def row_component(
    partition: InputPartition, setting: RowSetting
) -> DecomposedComponent:
    """Realize a row-based setting ``(V, S)`` as a ``(phi, F)`` cascade.

    ``phi``'s truth vector is the pattern ``V`` itself; ``F(phi, i)``
    depends only on the row type: 0, 1, ``phi``, or ``1 - phi``.
    """
    if setting.n_rows != partition.n_rows or setting.n_cols != partition.n_cols:
        raise DecompositionError(
            f"setting shape ({setting.n_rows}, {setting.n_cols}) does not "
            f"match partition shape ({partition.n_rows}, {partition.n_cols})"
        )
    f_table = np.zeros((2, partition.n_rows), dtype=np.uint8)
    types = setting.row_types
    for phi_value in (0, 1):
        row_values = f_table[phi_value]
        row_values[types == RowType.ONES] = 1
        row_values[types == RowType.PATTERN] = phi_value
        row_values[types == RowType.COMPLEMENT] = 1 - phi_value
    return DecomposedComponent(partition, setting.pattern, f_table)


@dataclass(frozen=True)
class LutCascadeDesign:
    """A complete multi-output LUT-cascade implementation.

    Attributes
    ----------
    components:
        Per-output :class:`DecomposedComponent`, keyed by output index;
        every output of the function must be present.
    n_inputs / n_outputs:
        Function signature.
    """

    components: Dict[int, DecomposedComponent]
    n_inputs: int
    n_outputs: int

    def __post_init__(self) -> None:
        missing = set(range(self.n_outputs)) - set(self.components)
        if missing:
            raise DecompositionError(
                f"cascade design is missing outputs {sorted(missing)}"
            )
        for index, component in self.components.items():
            if component.partition.n_inputs != self.n_inputs:
                raise DecompositionError(
                    f"output {index}: partition covers "
                    f"{component.partition.n_inputs} inputs, design has "
                    f"{self.n_inputs}"
                )

    @property
    def total_bits(self) -> int:
        """Total cascade storage in bits."""
        return sum(c.lut_bits for c in self.components.values())

    @property
    def flat_bits(self) -> int:
        """Storage of the undecomposed design, ``m * 2^n`` bits."""
        return self.n_outputs * (1 << self.n_inputs)

    @property
    def compression_ratio(self) -> float:
        """``flat_bits / total_bits``."""
        if self.total_bits == 0:
            return float("inf")
        return self.flat_bits / self.total_bits

    def evaluate(self, index: Union[int, np.ndarray]) -> np.ndarray:
        """Output bits for input index/indices, shape ``(..., m)``."""
        columns = [
            self.components[k].evaluate(index) for k in range(self.n_outputs)
        ]
        return np.stack(columns, axis=-1)

    def evaluate_word(self, index: Union[int, np.ndarray]) -> np.ndarray:
        """Output words ``Bin(G_hat(X))`` for input index/indices."""
        bits = self.evaluate(index)
        weights = 1 << np.arange(self.n_outputs, dtype=np.int64)
        return bits.astype(np.int64) @ weights

    def to_truth_table(self, probabilities=None) -> TruthTable:
        """Materialize the cascade back into a truth table."""
        indices = np.arange(1 << self.n_inputs)
        return TruthTable(self.evaluate(indices), probabilities)


def build_cascade_design(result) -> LutCascadeDesign:
    """Build a design from a decomposition result (core or baseline).

    Accepts any object with ``exact`` (a :class:`TruthTable`) and
    ``components`` (a mapping from output index to an object with
    ``partition`` and ``setting`` attributes); both
    :class:`repro.core.framework.DecompositionResult` and
    :class:`repro.baselines.framework.BaselineDecompositionResult`
    qualify.
    """
    components: Dict[int, DecomposedComponent] = {}
    for index, accepted in result.components.items():
        setting = accepted.setting
        if isinstance(setting, ColumnSetting):
            components[index] = component_from_column_setting(
                accepted.partition, setting
            )
        elif isinstance(setting, RowSetting):
            components[index] = row_component(accepted.partition, setting)
        else:
            raise DecompositionError(
                f"output {index}: unsupported setting type "
                f"{type(setting).__name__}"
            )
    return LutCascadeDesign(
        components=components,
        n_inputs=result.exact.n_inputs,
        n_outputs=result.exact.n_outputs,
    )
