"""Deterministic fault injection: seeded schedules fired through seams.

A :class:`FaultPlan` owns a set of :class:`FaultRule`\\ s, each bound to
one named *site* — a place in the production code where a failure can
physically happen.  The instrumented code asks the process-global plan
``should_fire(site, detail)`` at that point and, when the answer is
yes, raises/injects the corresponding failure.  Three properties make
this a test harness rather than a chaos monkey:

**Deterministic.**  A rule fires either at explicit call ordinals
(``at_calls=(1, 3)`` — the 1st and 3rd time the site is reached) or
with a probability drawn from a ``numpy`` generator seeded from
``(plan seed, site)``.  Two runs of the same plan over the same code
path inject identical faults.

**Zero overhead when disabled.**  No plan installed means every seam is
a single module-global ``is None`` check (hot loops hoist even that —
the bSB solver looks the plan up once per solve).  The <2 % kernel
bench budget is enforced by ``benchmarks/test_bench_resilience_overhead``.

**Observable.**  Every fired fault is appended to the plan's event log
(and mirrored to a process-wide sink so a test session can persist one
combined JSONL recovery log, which CI uploads as an artifact).

Sites
-----
``kernel.nan`` / ``kernel.overflow``
    Corrupt the live bSB state at a sampling point (NaN position /
    huge momentum) — exercises the numerical guards.
``worker.crash``
    Raise :class:`InjectedFault` inside the job executor (checked at
    attempt start and after every checkpoint write).
``worker.hang``
    Sleep ``param`` seconds inside the executor — exercises lease
    expiry / hang detection.  Match on the worker name to confine the
    hang to one worker generation.
``worker.die``
    ``os._exit`` the worker *process*.  Only meaningful under the
    process-isolated supervisor; in thread mode it would kill the
    host process.
``jobstore.operational_error`` / ``jobstore.disk_full``
    Raise ``sqlite3.OperationalError`` from the store's connection /
    commit path.
``shard.unavailable`` / ``shard.corrupt``
    Raise ``sqlite3.OperationalError`` / ``JobStoreCorruptError`` from
    one shard of a :class:`repro.service.shards.ShardedJobStore`
    before the call reaches SQLite — exercises the per-shard circuit
    breaker and degraded-mode serving.  The seam's ``detail`` is
    ``"<index>:<shard path>"``, so ``match="2:"`` confines the fault
    to shard 2.
``client.connection_drop``
    Raise ``http.client.IncompleteRead`` in the gateway client after
    the response headers — a connection reset mid-body.
``partition.round_fail``
    Raise :class:`InjectedFault` at the start of one boundary
    coordination round of the partition-and-stitch coordinator
    (:mod:`repro.partition.stitcher`) — exercises the coordinator's
    bounded round retries (cached subproblem artifacts make a replayed
    round cheap).

Plans are picklable via :meth:`FaultPlan.to_spec` /
:meth:`FaultPlan.from_spec` so the supervisor can re-install a parent's
plan inside freshly spawned worker processes.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.logconfig import get_logger
from repro.obs.metrics import get_metrics

logger = get_logger("repro.resilience.faults")

__all__ = [
    "DEFAULT_EVENT_LOG_MAX_BYTES",
    "FAULT_SITES",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "active_fault_plan",
    "clear_fault_plan",
    "drain_event_sink",
    "fault_injection",
    "install_fault_plan",
    "write_event_log",
]

#: every seam the production code exposes (see module docs)
FAULT_SITES = (
    "kernel.nan",
    "kernel.overflow",
    "worker.crash",
    "worker.hang",
    "worker.die",
    "jobstore.operational_error",
    "jobstore.disk_full",
    "shard.unavailable",
    "shard.corrupt",
    "client.connection_drop",
    "partition.round_fail",
)


class InjectedFault(RuntimeError):
    """An artificial failure raised by the fault-injection harness.

    Deliberately *not* a :class:`~repro.errors.ReproError`: injected
    crashes must travel the same generic-exception paths a real bug
    would.
    """


@dataclass(frozen=True)
class FaultRule:
    """When one site fires.

    Attributes
    ----------
    site:
        One of :data:`FAULT_SITES`.
    at_calls:
        1-based call ordinals at which the site fires deterministically
        (the counter is per ``(plan, site)``, monotone over the plan's
        lifetime).
    probability:
        Independent per-call firing probability, drawn from a generator
        seeded from ``(plan seed, site)`` — deterministic for a fixed
        call sequence.  Combined with ``at_calls`` the rule fires when
        either trigger does.
    max_fires:
        Stop firing after this many injections (``None`` — unlimited).
    match:
        Substring filter on the seam's ``detail`` string (worker name,
        job id, ...); non-matching calls neither fire nor consume
        probability draws, but do advance the call counter.
    param:
        Free numeric payload — the hang duration for ``worker.hang``,
        the exit code for ``worker.die``.
    """

    site: str
    at_calls: Tuple[int, ...] = ()
    probability: float = 0.0
    max_fires: Optional[int] = None
    match: Optional[str] = None
    param: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; sites: {FAULT_SITES}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if any(ordinal < 1 for ordinal in self.at_calls):
            raise ConfigurationError(
                f"at_calls ordinals are 1-based, got {self.at_calls}"
            )
        if self.max_fires is not None and self.max_fires < 1:
            raise ConfigurationError(
                f"max_fires must be >= 1, got {self.max_fires}"
            )

    def to_dict(self) -> Dict:
        return {
            "site": self.site,
            "at_calls": list(self.at_calls),
            "probability": self.probability,
            "max_fires": self.max_fires,
            "match": self.match,
            "param": self.param,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultRule":
        return cls(
            site=data["site"],
            at_calls=tuple(data.get("at_calls", ())),
            probability=float(data.get("probability", 0.0)),
            max_fires=data.get("max_fires"),
            match=data.get("match"),
            param=float(data.get("param", 0.0)),
        )


def _site_seed(seed: int, site: str) -> np.random.Generator:
    # derive a per-site stream so adding a rule for one site never
    # shifts another site's draw sequence
    return np.random.default_rng([seed, *site.encode("utf-8")])


# Events fired by *any* plan in this process, oldest first.  A chaos
# test session drains this once at teardown into the recovery log CI
# uploads; the indirection keeps per-test plans independent while still
# producing one combined artifact.
_EVENT_SINK: List[Dict] = []
_SINK_LOCK = threading.Lock()


class FaultPlan:
    """A seeded, deterministic schedule of failures (see module docs)."""

    def __init__(
        self, rules: Sequence[FaultRule], seed: int = 0
    ) -> None:
        self.seed = int(seed)
        self.rules: Dict[str, List[FaultRule]] = {}
        for rule in rules:
            self.rules.setdefault(rule.site, []).append(rule)
        self._rngs = {
            site: _site_seed(self.seed, site) for site in self.rules
        }
        self._calls: Dict[str, int] = {site: 0 for site in self.rules}
        self._fires: Dict[int, int] = {}
        self._events: List[Dict] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def should_fire(self, site: str, detail: str = "") -> bool:
        """Advance ``site``'s schedule by one call; fire or not.

        Thread-safe; the per-site call counter is shared across threads
        so concurrent workers still see one global deterministic
        ordinal sequence (which thread observes which ordinal is
        scheduling-dependent — pin rules with ``match`` when that
        matters).
        """
        rules = self.rules.get(site)
        if not rules:
            return False
        with self._lock:
            self._calls[site] = call = self._calls[site] + 1
            fired = False
            for rule in rules:
                if rule.match is not None and rule.match not in detail:
                    continue
                key = id(rule)
                if (
                    rule.max_fires is not None
                    and self._fires.get(key, 0) >= rule.max_fires
                ):
                    continue
                hit = call in rule.at_calls
                if rule.probability > 0.0:
                    hit = (
                        self._rngs[site].random() < rule.probability
                    ) or hit
                if hit:
                    self._fires[key] = self._fires.get(key, 0) + 1
                    fired = True
            if not fired:
                return False
            event = {
                "ts": time.time(),
                "pid": os.getpid(),
                "site": site,
                "call": call,
                "detail": detail,
            }
            self._events.append(event)
        with _SINK_LOCK:
            _EVENT_SINK.append(event)
        logger.warning(
            "injected fault at %s (call %d%s)",
            site, call, f", {detail}" if detail else "",
        )
        get_metrics().counter(
            "resilience_faults_injected_total",
            help="faults fired by the injection harness",
        ).inc()
        return True

    def site_param(self, site: str, default: float = 0.0) -> float:
        """The ``param`` payload of ``site``'s first rule (or default).

        Seams that need a magnitude — the hang duration, the exit code —
        read it here after :meth:`should_fire` says yes.
        """
        rules = self.rules.get(site)
        return rules[0].param if rules else default

    def events(self) -> List[Dict]:
        """Faults this plan fired, oldest first (copies)."""
        with self._lock:
            return [dict(event) for event in self._events]

    # -- process transfer ----------------------------------------------

    def to_spec(self) -> Dict:
        """JSON/pickle-safe description; counters are *not* carried —
        a re-installed plan starts its schedule from call 1.
        """
        return {
            "seed": self.seed,
            "rules": [
                rule.to_dict()
                for rules in self.rules.values()
                for rule in rules
            ],
        }

    @classmethod
    def from_spec(cls, spec: Dict) -> "FaultPlan":
        return cls(
            [FaultRule.from_dict(entry) for entry in spec["rules"]],
            seed=int(spec.get("seed", 0)),
        )

    def __repr__(self) -> str:
        n = sum(len(rules) for rules in self.rules.values())
        return f"FaultPlan(seed={self.seed}, n_rules={n})"


# -- process-global installation ---------------------------------------

_ACTIVE: Optional[FaultPlan] = None


def install_fault_plan(plan: FaultPlan) -> FaultPlan:
    """Make ``plan`` the process-global plan every seam consults."""
    global _ACTIVE
    _ACTIVE = plan
    return plan


def clear_fault_plan() -> None:
    """Remove the global plan; all seams return to zero-cost no-ops."""
    global _ACTIVE
    _ACTIVE = None


def active_fault_plan() -> Optional[FaultPlan]:
    """The installed plan, or ``None`` (the production default)."""
    return _ACTIVE


@contextmanager
def fault_injection(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scope a plan's installation to a ``with`` block (test helper)."""
    previous = _ACTIVE
    install_fault_plan(plan)
    try:
        yield plan
    finally:
        if previous is None:
            clear_fault_plan()
        else:
            install_fault_plan(previous)


# -- recovery event log ------------------------------------------------

def drain_event_sink() -> List[Dict]:
    """Remove and return every event fired in this process so far."""
    with _SINK_LOCK:
        events, _EVENT_SINK[:] = list(_EVENT_SINK), []
    return events


#: rotation threshold for the recovery log; override with the
#: ``REPRO_CHAOS_LOG_MAX_BYTES`` environment variable (0 disables)
DEFAULT_EVENT_LOG_MAX_BYTES = 4 * 1024 * 1024


def _event_log_cap() -> int:
    raw = os.environ.get("REPRO_CHAOS_LOG_MAX_BYTES")
    if raw is None:
        return DEFAULT_EVENT_LOG_MAX_BYTES
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_EVENT_LOG_MAX_BYTES


def write_event_log(
    path: Union[str, Path],
    events: Optional[Sequence[Dict]] = None,
    max_bytes: Optional[int] = None,
) -> Path:
    """Append ``events`` (default: drain the sink) to a JSONL file.

    The log is *bounded*: when the file has grown past ``max_bytes``
    (default :data:`DEFAULT_EVENT_LOG_MAX_BYTES`, overridable via
    ``REPRO_CHAOS_LOG_MAX_BYTES``; 0 disables rotation) it is rotated
    to ``<path>.1`` — replacing any previous rotation — before the
    append, so a long chaos soak holds at most ~2× the cap on disk
    instead of growing without limit.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if events is None:
        events = drain_event_sink()
    cap = _event_log_cap() if max_bytes is None else max_bytes
    if cap > 0 and path.exists() and path.stat().st_size >= cap:
        os.replace(path, path.with_name(path.name + ".1"))
    with path.open("a") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True) + "\n")
    return path
