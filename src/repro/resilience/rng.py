"""Lossless capture/restore of ``numpy.random.Generator`` state.

``Generator.bit_generator.state`` round-trips the *stream position*,
but not the :class:`numpy.random.SeedSequence` the generator was built
from — and ``Generator.spawn()`` derives children from that seed
sequence's ``n_children_spawned`` counter.  A checkpoint that saved
only ``bit_generator.state`` would resume the stream bit-identically
yet hand out *different* spawned children than the uninterrupted run,
silently breaking the per-component solver seeding in
:func:`repro.core.framework.decompose`.

:func:`capture_rng` therefore records both the seed-sequence
parameters (entropy, spawn key, pool size, children spawned) and the
raw bit-generator state; :func:`restore_rng` rebuilds the seed
sequence first, re-attaches it to a fresh bit generator of the same
type, then overwrites the stream position.  Generators whose seed
sequence is absent or foreign (e.g. hand-built bit generators) degrade
to state-only capture — correct for draws, undefined for spawns.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Optional

import numpy as np

__all__ = ["capture_rng", "restore_rng"]


def _jsonify(value: Any) -> Any:
    """Make a bit-generator state dict JSON-friendly (ints stay exact)."""
    if isinstance(value, dict):
        return {key: _jsonify(sub) for key, sub in value.items()}
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value


def _dejsonify(value: Any) -> Any:
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.asarray(value["__ndarray__"], dtype=value["dtype"])
        return {key: _dejsonify(sub) for key, sub in value.items()}
    return value


def capture_rng(rng: np.random.Generator) -> Dict[str, Any]:
    """Snapshot ``rng`` into a JSON-safe dict (see module docs)."""
    bg = rng.bit_generator
    spec: Dict[str, Any] = {
        "bit_generator": type(bg).__name__,
        "state": _jsonify(copy.deepcopy(bg.state)),
    }
    seed_seq = getattr(bg, "seed_seq", None)
    if isinstance(seed_seq, np.random.SeedSequence):
        spec["seed_seq"] = {
            "entropy": _jsonify(seed_seq.entropy),
            "spawn_key": list(seed_seq.spawn_key),
            "pool_size": int(seed_seq.pool_size),
            "n_children_spawned": int(seed_seq.n_children_spawned),
        }
    return spec


def restore_rng(spec: Dict[str, Any]) -> np.random.Generator:
    """Rebuild the generator captured by :func:`capture_rng`."""
    bg_cls = getattr(np.random, spec["bit_generator"])
    seq_spec: Optional[Dict[str, Any]] = spec.get("seed_seq")
    if seq_spec is not None:
        entropy = _dejsonify(seq_spec["entropy"])
        if isinstance(entropy, list):
            entropy = [int(e) for e in entropy]
        seed_seq = np.random.SeedSequence(
            entropy=entropy,
            spawn_key=tuple(int(k) for k in seq_spec["spawn_key"]),
            pool_size=int(seq_spec["pool_size"]),
            n_children_spawned=int(seq_spec["n_children_spawned"]),
        )
        bg = bg_cls(seed_seq)
    else:
        bg = bg_cls()
    bg.state = _dejsonify(spec["state"])
    return np.random.Generator(bg)
