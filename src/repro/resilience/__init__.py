"""repro.resilience — deterministic fault injection and crash safety.

This package makes failure a first-class, *testable* input to the
system:

``faults``
    :class:`FaultPlan` — a seeded, deterministic schedule of injected
    failures (kernel NaN/overflow, worker crash/hang/death, SQLite
    errors, gateway connection drops) fired through cheap seams in the
    kernels, worker, job store, and gateway client.  Zero overhead when
    no plan is installed.

Crash-safe execution itself lives with the code it protects:

* solver-state checkpoints — :class:`repro.ising.solvers.bsb.SBCheckpoint`
  and :class:`repro.core.checkpoint.DecomposeCheckpoint`, persisted
  through :class:`repro.service.artifacts.ArtifactStore`;
* supervised process-isolated workers —
  :class:`repro.service.supervisor.WorkerSupervisor`;
* numerical guards with numpy32 → numpy64 escalation — in the bSB
  solve loop.

See ``docs/resilience.md`` for the failure-mode → detection → recovery
map.
"""

from repro.resilience.faults import (
    FAULT_SITES,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_fault_plan,
    clear_fault_plan,
    fault_injection,
    install_fault_plan,
)

__all__ = [
    "FAULT_SITES",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "active_fault_plan",
    "clear_fault_plan",
    "fault_injection",
    "install_fault_plan",
]
