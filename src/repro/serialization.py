"""JSON serialization of decomposition results and LUT designs.

A decomposition run is expensive; its *outcome* — per output, an input
partition plus a (column- or row-based) setting — is tiny.  This module
persists that outcome so a design can be re-loaded, re-evaluated,
turned into a cascade, or emitted as Verilog without re-running any
solver.

The format is versioned, plain JSON (no pickle — results may be shared
between machines and reviewed by humans):

.. code-block:: json

    {
      "format": "repro-decomposition",
      "schema_version": 2,
      "n_inputs": 9,
      "n_outputs": 9,
      "med": 2.51,
      "components": {
        "0": {"partition": {"free": [0,1,2,3], "bound": [4,5,6,7,8]},
               "kind": "column",
               "pattern1": "0110...", "pattern2": "...", "column_types": "..."}
      }
    }

Bit vectors are stored as compact 0/1 strings.

Versioning
----------
Documents carry an explicit ``schema_version`` (current: 2).  Version-1
documents used a ``version`` key instead; they are still read.  A
document with neither key, or with a version this build does not know,
is rejected up front with :class:`SerializationError` — the artifact
store depends on that early check to evolve its on-disk format safely
instead of failing deep inside design reconstruction.
"""

from __future__ import annotations

import json
from pathlib import Path
from types import SimpleNamespace
from typing import Dict, Union

import numpy as np

from repro.boolean.decomposition import ColumnSetting, RowSetting
from repro.boolean.partition import InputPartition
from repro.errors import ReproError
from repro.lut.cascade import LutCascadeDesign, build_cascade_design

__all__ = [
    "SCHEMA_VERSION",
    "SerializationError",
    "design_to_dict",
    "design_from_dict",
    "ensure_design_document",
    "save_design",
    "load_design",
    "result_to_dict",
]

_FORMAT = "repro-decomposition"
#: current on-disk schema version (written as ``schema_version``)
SCHEMA_VERSION = 2
#: versions this build can read; 1 is the legacy ``version``-keyed form
_READABLE_VERSIONS = (1, 2)


def _document_version(data: Dict):
    """Extract and validate the document's declared schema version."""
    version = data.get("schema_version", data.get("version"))
    if version is None:
        raise SerializationError(
            "document declares no schema_version (nor legacy 'version'); "
            "refusing to guess the on-disk format"
        )
    if version not in _READABLE_VERSIONS:
        raise SerializationError(
            f"unsupported schema_version {version!r}; this build reads "
            f"versions {list(_READABLE_VERSIONS)}"
        )
    return version


class SerializationError(ReproError, ValueError):
    """Raised for malformed or incompatible serialized designs."""


def _bits_to_string(bits: np.ndarray) -> str:
    return "".join("1" if b else "0" for b in np.asarray(bits).ravel())


def _string_to_bits(text: str) -> np.ndarray:
    if not set(text) <= {"0", "1"}:
        raise SerializationError(f"invalid bit string {text[:32]!r}...")
    return np.fromiter((c == "1" for c in text), dtype=np.uint8,
                       count=len(text))


def _partition_to_dict(partition: InputPartition) -> Dict:
    return {
        "free": list(partition.free),
        "bound": list(partition.bound),
        "n_inputs": partition.n_inputs,
    }


def _partition_from_dict(data: Dict) -> InputPartition:
    try:
        return InputPartition(
            data["free"], data["bound"], data["n_inputs"]
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed partition entry: {exc}") from exc


def _setting_to_dict(setting) -> Dict:
    if isinstance(setting, ColumnSetting):
        return {
            "kind": "column",
            "pattern1": _bits_to_string(setting.pattern1),
            "pattern2": _bits_to_string(setting.pattern2),
            "column_types": _bits_to_string(setting.column_types),
        }
    if isinstance(setting, RowSetting):
        return {
            "kind": "row",
            "pattern": _bits_to_string(setting.pattern),
            "row_types": [int(t) for t in setting.row_types],
        }
    raise SerializationError(
        f"unsupported setting type {type(setting).__name__}"
    )


def _setting_from_dict(data: Dict):
    kind = data.get("kind")
    if kind == "column":
        return ColumnSetting(
            _string_to_bits(data["pattern1"]),
            _string_to_bits(data["pattern2"]),
            _string_to_bits(data["column_types"]),
        )
    if kind == "row":
        return RowSetting(
            _string_to_bits(data["pattern"]),
            np.asarray(data["row_types"], dtype=np.int8),
        )
    raise SerializationError(f"unknown setting kind {kind!r}")


def result_to_dict(result) -> Dict:
    """Serialize a decomposition result (core or baseline) to a dict.

    Accepts any object with ``exact``, ``med``, and ``components`` (a
    mapping to objects carrying ``partition`` and ``setting``).
    """
    components = {}
    for index, accepted in result.components.items():
        components[str(index)] = {
            "partition": _partition_to_dict(accepted.partition),
            **_setting_to_dict(accepted.setting),
            "objective": float(accepted.objective),
        }
    return {
        "format": _FORMAT,
        "schema_version": SCHEMA_VERSION,
        "n_inputs": result.exact.n_inputs,
        "n_outputs": result.exact.n_outputs,
        "med": float(result.med),
        "components": components,
    }


def design_to_dict(result) -> Dict:
    """Alias of :func:`result_to_dict` (the design is the payload)."""
    return result_to_dict(result)


class _LoadedComponent:
    """Duck-typed stand-in for an accepted component decomposition."""

    def __init__(self, partition, setting, objective):
        self.partition = partition
        self.setting = setting
        self.objective = objective


class _LoadedResult:
    """Duck-typed stand-in feeding :func:`build_cascade_design`."""

    def __init__(self, exact_shape, components, med):
        n_inputs, n_outputs = exact_shape
        self.exact = SimpleNamespace(n_inputs=n_inputs, n_outputs=n_outputs)
        self.components = components
        self.med = med


def design_from_dict(data: Dict) -> LutCascadeDesign:
    """Rebuild an evaluable cascade design from serialized form."""
    if data.get("format") != _FORMAT:
        raise SerializationError(
            f"not a {_FORMAT} document (format={data.get('format')!r})"
        )
    _document_version(data)
    components = {}
    for key, entry in data["components"].items():
        components[int(key)] = _LoadedComponent(
            _partition_from_dict(entry["partition"]),
            _setting_from_dict(entry),
            float(entry.get("objective", float("nan"))),
        )
    loaded = _LoadedResult(
        (int(data["n_inputs"]), int(data["n_outputs"])),
        components,
        float(data.get("med", float("nan"))),
    )
    return build_cascade_design(loaded)


def ensure_design_document(data: Dict) -> Dict:
    """Validate format/version of a design document without rebuilding it.

    The cheap boundary check for code that *transports* designs rather
    than evaluates them (the gateway's result endpoint, the remote
    ``fetch`` path): confirms the payload is a readable
    ``repro-decomposition`` document and returns it unchanged, raising
    :class:`SerializationError` otherwise.
    """
    if not isinstance(data, dict):
        raise SerializationError(
            f"design document must be a JSON object, "
            f"got {type(data).__name__}"
        )
    if data.get("format") != _FORMAT:
        raise SerializationError(
            f"not a {_FORMAT} document (format={data.get('format')!r})"
        )
    _document_version(data)
    return data


def save_design(result, path: Union[str, Path]) -> None:
    """Serialize ``result`` to a JSON file."""
    payload = result_to_dict(result)
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_design(path: Union[str, Path]) -> LutCascadeDesign:
    """Load a JSON file written by :func:`save_design`."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON in {path}: {exc}") from exc
    return design_from_dict(data)
