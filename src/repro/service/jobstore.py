"""Durable job store: a SQLite journal of decomposition jobs.

The store is the single source of truth for the service — submission,
scheduling, worker leases, retries, and telemetry all read and write the
one ``jobs`` table, so any process that can open the database file can
submit, serve, or inspect (the CLI's ``submit`` / ``serve`` / ``status``
commands are separate processes by design).

Job lifecycle::

    queued ──claim──▶ running ──complete──▶ done
      ▲                  │
      │   retry (attempts < max_attempts,
      └──── backoff) ────┤
                         ├──fail──▶ failed
                         └──quarantine──▶ quarantined

``running`` jobs carry a *lease* that the worker renews via progress
heartbeats; a lease that expires without completion marks the worker as
crashed, and :meth:`JobStore.recover_orphans` atomically returns the job
to ``queued`` (or ``failed`` once its attempt budget is exhausted).
Claiming uses ``BEGIN IMMEDIATE`` so exactly one worker wins each job
even across processes.

``quarantined`` is the poison-job terminal state: every failed attempt
records its worker in the ``failed_workers`` column, and once a job has
taken down *N distinct workers* (scheduler policy, default 3) it is
parked instead of being retried — a job that reliably crashes whatever
runs it must not be allowed to cycle through the whole fleet.

Every mutation is a short transaction on a per-call connection (WAL
mode with a ``busy_timeout``), which keeps the store safe under thread
pools, process pools, and abrupt worker death — the crash-tolerance the
service advertises is exactly SQLite's.  Opening a store runs
``PRAGMA quick_check`` once and raises a typed
:class:`~repro.errors.JobStoreCorruptError` on damage, so a corrupt
database surfaces at startup rather than as an arbitrary ``sqlite3``
error mid-claim.
"""

from __future__ import annotations

import json
import sqlite3
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import JobNotFound, JobStoreCorruptError, ServiceError
from repro.resilience.faults import active_fault_plan
from repro.service.spec import JobSpec, spec_from_stored

__all__ = [
    "JobStore",
    "JobRecord",
    "WorkerRecord",
    "JOB_STATES",
    "TERMINAL_STATES",
]

JOB_STATES = ("queued", "running", "done", "failed", "quarantined")

#: states a job never leaves on its own
TERMINAL_STATES = ("done", "failed", "quarantined")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id              TEXT PRIMARY KEY,
    artifact_key    TEXT NOT NULL,
    spec            TEXT NOT NULL,
    state           TEXT NOT NULL CHECK (state IN
                        ('queued', 'running', 'done', 'failed',
                         'quarantined')),
    attempts        INTEGER NOT NULL DEFAULT 0,
    max_attempts    INTEGER NOT NULL,
    not_before      REAL NOT NULL DEFAULT 0,
    lease_expires   REAL,
    worker          TEXT,
    cache_hit       INTEGER NOT NULL DEFAULT 0,
    error           TEXT,
    created_at      REAL NOT NULL,
    started_at      REAL,
    finished_at     REAL,
    runtime_seconds REAL,
    med             REAL,
    failed_workers  TEXT NOT NULL DEFAULT '[]'
);
CREATE INDEX IF NOT EXISTS idx_jobs_state ON jobs (state, not_before);
CREATE INDEX IF NOT EXISTS idx_jobs_key ON jobs (artifact_key);
CREATE TABLE IF NOT EXISTS workers (
    id              TEXT PRIMARY KEY,
    kind            TEXT NOT NULL DEFAULT 'local',
    first_seen      REAL NOT NULL,
    last_heartbeat  REAL NOT NULL,
    current_job     TEXT,
    jobs_completed  INTEGER NOT NULL DEFAULT 0,
    jobs_failed     INTEGER NOT NULL DEFAULT 0
);
"""

#: columns shared by the pre-quarantine schema and the current one, in
#: the order the migration copies them
_V1_COLUMNS = (
    "id, artifact_key, spec, state, attempts, max_attempts, not_before, "
    "lease_expires, worker, cache_hit, error, created_at, started_at, "
    "finished_at, runtime_seconds, med"
)


@dataclass(frozen=True)
class JobRecord:
    """Immutable snapshot of one row of the ``jobs`` table."""

    id: str
    artifact_key: str
    spec: JobSpec
    state: str
    attempts: int
    max_attempts: int
    not_before: float
    lease_expires: Optional[float]
    worker: Optional[str]
    cache_hit: bool
    error: Optional[str]
    created_at: float
    started_at: Optional[float]
    finished_at: Optional[float]
    runtime_seconds: Optional[float]
    med: Optional[float]
    failed_workers: Tuple[str, ...] = ()

    @property
    def retries(self) -> int:
        """Executed retries (attempts beyond the first)."""
        return max(0, self.attempts - 1)

    def to_dict(self) -> Dict:
        """Plain-JSON snapshot; the gateway's job-status body.

        The spec travels in wire form so a record round-tripped through
        :meth:`from_dict` (the remote ``status`` path) is
        indistinguishable from one read off the local store.
        """
        return {
            "id": self.id,
            "artifact_key": self.artifact_key,
            "spec": self.spec.to_wire(),
            "state": self.state,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "not_before": self.not_before,
            "lease_expires": self.lease_expires,
            "worker": self.worker,
            "cache_hit": self.cache_hit,
            "error": self.error,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "runtime_seconds": self.runtime_seconds,
            "med": self.med,
            "failed_workers": list(self.failed_workers),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "JobRecord":
        """Rebuild a record serialized by :meth:`to_dict`."""
        try:
            return cls(
                id=data["id"],
                artifact_key=data["artifact_key"],
                spec=spec_from_stored(data["spec"]),
                state=data["state"],
                attempts=int(data["attempts"]),
                max_attempts=int(data["max_attempts"]),
                not_before=float(data.get("not_before", 0.0)),
                lease_expires=data.get("lease_expires"),
                worker=data.get("worker"),
                cache_hit=bool(data.get("cache_hit", False)),
                error=data.get("error"),
                created_at=float(data["created_at"]),
                started_at=data.get("started_at"),
                finished_at=data.get("finished_at"),
                runtime_seconds=data.get("runtime_seconds"),
                med=data.get("med"),
                failed_workers=tuple(data.get("failed_workers", ())),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed job record: {exc}") from exc


@dataclass(frozen=True)
class WorkerRecord:
    """One row of the ``workers`` registry table.

    Rows are maintained as a *side effect* of the lease API: a claim
    registers (or refreshes) the claiming worker, every heartbeat
    refreshes ``last_heartbeat``, and completion-path transitions bump
    the per-worker counters.  The registry is therefore exactly as
    durable and process-oblivious as the jobs table itself — any
    process reading the store sees the same fleet, which is what the
    ``repro status --workers`` view and the gateway's ``GET
    /v1/workers`` endpoint render.
    """

    id: str
    kind: str
    first_seen: float
    last_heartbeat: float
    current_job: Optional[str]
    jobs_completed: int
    jobs_failed: int
    lease_expires: Optional[float] = None

    def to_dict(self, now: Optional[float] = None) -> Dict:
        """Plain-JSON snapshot (the ``GET /v1/workers`` wire shape)."""
        now = time.time() if now is None else now
        return {
            "id": self.id,
            "kind": self.kind,
            "first_seen": self.first_seen,
            "last_heartbeat": self.last_heartbeat,
            "heartbeat_age_seconds": round(
                max(0.0, now - self.last_heartbeat), 3
            ),
            "current_job": self.current_job,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "lease_expires": self.lease_expires,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "WorkerRecord":
        """Rebuild a record serialized by :meth:`to_dict`."""
        try:
            return cls(
                id=data["id"],
                kind=data.get("kind", "local"),
                first_seen=float(data["first_seen"]),
                last_heartbeat=float(data["last_heartbeat"]),
                current_job=data.get("current_job"),
                jobs_completed=int(data.get("jobs_completed", 0)),
                jobs_failed=int(data.get("jobs_failed", 0)),
                lease_expires=data.get("lease_expires"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed worker record: {exc}") from exc


def _record_from_row(row: sqlite3.Row) -> JobRecord:
    return JobRecord(
        id=row["id"],
        artifact_key=row["artifact_key"],
        spec=spec_from_stored(json.loads(row["spec"])),
        state=row["state"],
        attempts=row["attempts"],
        max_attempts=row["max_attempts"],
        not_before=row["not_before"],
        lease_expires=row["lease_expires"],
        worker=row["worker"],
        cache_hit=bool(row["cache_hit"]),
        error=row["error"],
        created_at=row["created_at"],
        started_at=row["started_at"],
        finished_at=row["finished_at"],
        runtime_seconds=row["runtime_seconds"],
        med=row["med"],
        failed_workers=tuple(json.loads(row["failed_workers"])),
    )


class JobStore:
    """SQLite-backed durable job journal (see module docs)."""

    #: how long a connection waits on a locked database before raising
    BUSY_TIMEOUT_SECONDS = 30.0

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        existed = self.path.exists()
        try:
            with self._connect() as conn:
                if existed:
                    self._integrity_check(conn)
                    self._migrate(conn)
                conn.executescript(_SCHEMA)
                conn.commit()
        except sqlite3.OperationalError:
            raise  # transient (locked / injected), not corruption
        except sqlite3.DatabaseError as exc:
            # _connect's PRAGMAs hit unreadable files before the
            # quick_check can run; surface those the same typed way
            raise JobStoreCorruptError(
                f"job store {self.path} is not a readable SQLite "
                f"database: {exc}"
            ) from exc

    def _integrity_check(self, conn: sqlite3.Connection) -> None:
        """``PRAGMA quick_check`` once per open; typed error on damage."""
        try:
            rows = conn.execute("PRAGMA quick_check").fetchall()
        except sqlite3.DatabaseError as exc:
            raise JobStoreCorruptError(
                f"job store {self.path} is not a readable SQLite "
                f"database: {exc}"
            ) from exc
        findings = [row[0] for row in rows if row[0] != "ok"]
        if findings:
            raise JobStoreCorruptError(
                f"job store {self.path} failed its integrity check: "
                + "; ".join(findings)
            )

    def _migrate(self, conn: sqlite3.Connection) -> None:
        """Rebuild a pre-quarantine ``jobs`` table in place.

        The ``state`` CHECK constraint is baked into the table DDL, so
        admitting the ``quarantined`` state (and the ``failed_workers``
        column) for a database written by an older build requires the
        SQLite rename–copy–drop dance.  Idempotent: a current-schema
        table is left untouched.
        """
        row = conn.execute(
            "SELECT sql FROM sqlite_master "
            "WHERE type = 'table' AND name = 'jobs'"
        ).fetchone()
        if row is None or "quarantined" in (row["sql"] or ""):
            return
        conn.execute("BEGIN IMMEDIATE")
        conn.execute("ALTER TABLE jobs RENAME TO jobs_migrating")
        conn.executescript(_SCHEMA)
        conn.execute(
            f"INSERT INTO jobs ({_V1_COLUMNS}) "
            f"SELECT {_V1_COLUMNS} FROM jobs_migrating"
        )
        conn.execute("DROP TABLE jobs_migrating")
        conn.commit()

    def _connect(self) -> sqlite3.Connection:
        plan = active_fault_plan()
        if plan is not None and plan.should_fire(
            "jobstore.operational_error", detail=str(self.path)
        ):
            raise sqlite3.OperationalError(
                "injected fault: database is locked"
            )
        conn = sqlite3.connect(
            self.path, timeout=self.BUSY_TIMEOUT_SECONDS
        )
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        # explicit busy handler: sqlite3's ``timeout=`` covers the
        # Python wrapper, busy_timeout covers statements SQLite retries
        # internally (WAL checkpoints), and the value survives
        # ``BEGIN IMMEDIATE`` contention between worker processes
        conn.execute(
            f"PRAGMA busy_timeout={int(self.BUSY_TIMEOUT_SECONDS * 1000)}"
        )
        return conn

    @contextmanager
    def _txn(self, immediate: bool = False):
        conn = self._connect()
        try:
            if immediate:
                conn.execute("BEGIN IMMEDIATE")
            yield conn
            plan = active_fault_plan()
            if plan is not None and plan.should_fire(
                "jobstore.disk_full", detail=str(self.path)
            ):
                raise sqlite3.OperationalError(
                    "injected fault: database or disk is full"
                )
            conn.commit()
        except BaseException:
            conn.rollback()
            raise
        finally:
            conn.close()

    # -- submission ----------------------------------------------------

    def submit(
        self,
        spec: JobSpec,
        artifact_key: str,
        now: Optional[float] = None,
        job_id: Optional[str] = None,
    ) -> JobRecord:
        """Enqueue a new job; returns its freshly-created record.

        ``job_id`` lets a caller pre-assign the id — the sharded store
        uses this to tag ids with their home shard (and to journal the
        submission intent before the row exists).
        """
        now = time.time() if now is None else now
        if job_id is None:
            job_id = f"job-{uuid.uuid4().hex[:12]}"
        with self._txn() as conn:
            conn.execute(
                "INSERT INTO jobs (id, artifact_key, spec, state, "
                "max_attempts, created_at) VALUES (?, ?, ?, 'queued', ?, ?)",
                (
                    job_id,
                    artifact_key,
                    json.dumps(spec.to_wire(), sort_keys=True),
                    spec.max_attempts,
                    now,
                ),
            )
        return self.get(job_id)

    def restore_job(
        self,
        *,
        job_id: str,
        artifact_key: str,
        spec_wire: Dict,
        state: str,
        max_attempts: int,
        created_at: float,
        attempts: int = 0,
        error: Optional[str] = None,
        med: Optional[float] = None,
        runtime_seconds: Optional[float] = None,
        cache_hit: bool = False,
        finished_at: Optional[float] = None,
    ) -> None:
        """Insert one job row verbatim (shard rebuild only).

        Unlike :meth:`submit` this writes a row in any state with its
        original id and timestamps — it is how
        :func:`repro.service.shards.rebuild_shard` replays a lost
        shard's intent journal into a fresh database.  Idempotent per
        id: an existing row is left untouched (the rebuild may replay
        a journal that partially overlaps a surviving database).
        """
        if state not in JOB_STATES:
            raise ServiceError(
                f"unknown job state {state!r}; states: {JOB_STATES}"
            )
        with self._txn() as conn:
            conn.execute(
                "INSERT OR IGNORE INTO jobs (id, artifact_key, spec, "
                "state, attempts, max_attempts, cache_hit, error, "
                "created_at, finished_at, runtime_seconds, med) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    job_id,
                    artifact_key,
                    json.dumps(spec_wire, sort_keys=True),
                    state,
                    attempts,
                    max_attempts,
                    int(cache_hit),
                    error,
                    created_at,
                    finished_at,
                    runtime_seconds,
                    med,
                ),
            )

    # -- scheduling ----------------------------------------------------

    @staticmethod
    def _upsert_worker(
        conn: sqlite3.Connection,
        worker: str,
        *,
        kind: str,
        now: float,
        job_id: Optional[str] = None,
    ) -> None:
        """Register/refresh one worker row inside an open transaction."""
        conn.execute(
            "INSERT INTO workers (id, kind, first_seen, last_heartbeat, "
            "current_job) VALUES (?, ?, ?, ?, ?) "
            "ON CONFLICT(id) DO UPDATE SET "
            "kind = excluded.kind, "
            "last_heartbeat = excluded.last_heartbeat, "
            "current_job = COALESCE(excluded.current_job, "
            "workers.current_job)",
            (worker, kind, now, now, job_id),
        )

    def claim(
        self,
        worker: str,
        lease_seconds: float,
        now: Optional[float] = None,
        kind: str = "local",
    ) -> Optional[JobRecord]:
        """Atomically move the oldest eligible queued job to running.

        Returns ``None`` when nothing is eligible (empty queue, or all
        queued jobs still inside their retry-backoff window).  Either
        way the claiming worker is registered/refreshed in the
        ``workers`` table (``kind`` distinguishes local pool threads
        from ``"remote"`` fleet agents claiming over the gateway) — an
        idle worker polling an empty queue is still a live worker.

        Duplicate submissions are *single-flighted*: a queued job whose
        artifact key is already running is never claimed — it waits for
        the in-flight twin, then resolves instantly from the artifact
        cache instead of burning a second solve.  (If the twin fails
        permanently, the key stops being in flight and the waiter runs
        itself.)
        """
        now = time.time() if now is None else now
        with self._txn(immediate=True) as conn:
            row = conn.execute(
                "SELECT id FROM jobs WHERE state = 'queued' AND "
                "not_before <= ? AND artifact_key NOT IN "
                "(SELECT artifact_key FROM jobs WHERE state = 'running') "
                "ORDER BY created_at, id LIMIT 1",
                (now,),
            ).fetchone()
            self._upsert_worker(
                conn, worker, kind=kind, now=now,
                job_id=row["id"] if row is not None else None,
            )
            if row is None:
                return None
            conn.execute(
                "UPDATE jobs SET state = 'running', attempts = attempts + 1,"
                " worker = ?, started_at = ?, lease_expires = ?, error = NULL"
                " WHERE id = ?",
                (worker, now, now + lease_seconds, row["id"]),
            )
            job_id = row["id"]
        return self.get(job_id)

    def heartbeat(
        self,
        job_id: str,
        lease_seconds: float,
        now: Optional[float] = None,
    ) -> None:
        """Renew a running job's lease (driven by progress hooks).

        The holder's registry row is refreshed in the same transaction
        — the fleet view's ``last heartbeat age`` is exactly the lease
        heartbeat, not a second liveness channel that could drift.
        """
        now = time.time() if now is None else now
        with self._txn() as conn:
            conn.execute(
                "UPDATE jobs SET lease_expires = ? "
                "WHERE id = ? AND state = 'running'",
                (now + lease_seconds, job_id),
            )
            conn.execute(
                "UPDATE workers SET last_heartbeat = ?, current_job = ? "
                "WHERE id = (SELECT worker FROM jobs "
                "WHERE id = ? AND state = 'running')",
                (now, job_id, job_id),
            )

    def recover_orphans(
        self,
        now: Optional[float] = None,
        quarantine_after: Optional[int] = None,
    ) -> List[str]:
        """Requeue running jobs whose lease expired (crashed workers).

        Each lost worker is recorded in the job's ``failed_workers``
        set; with ``quarantine_after`` set, a job that has now failed
        on that many *distinct* workers moves to ``quarantined``.  A
        job whose attempt budget is already spent moves to ``failed``.
        Returns the ids of every transitioned job.
        """
        now = time.time() if now is None else now
        with self._txn(immediate=True) as conn:
            rows = conn.execute(
                "SELECT id, attempts, max_attempts, worker, "
                "failed_workers FROM jobs "
                "WHERE state = 'running' AND lease_expires < ?",
                (now,),
            ).fetchall()
            return [
                self._release_row(
                    conn,
                    row,
                    now=now,
                    error="worker lost (lease expired)",
                    quarantine_after=quarantine_after,
                )
                for row in rows
            ]

    def release_worker(
        self,
        worker: str,
        now: Optional[float] = None,
        quarantine_after: Optional[int] = None,
    ) -> List[str]:
        """Release every running job held by ``worker`` immediately.

        The supervisor calls this when it has *observed* a worker
        process die — there is no point waiting out the lease when the
        holder is known dead.  Same routing as
        :meth:`recover_orphans`.
        """
        now = time.time() if now is None else now
        with self._txn(immediate=True) as conn:
            rows = conn.execute(
                "SELECT id, attempts, max_attempts, worker, "
                "failed_workers FROM jobs "
                "WHERE state = 'running' AND worker = ?",
                (worker,),
            ).fetchall()
            return [
                self._release_row(
                    conn,
                    row,
                    now=now,
                    error=f"worker process died ({worker})",
                    quarantine_after=quarantine_after,
                )
                for row in rows
            ]

    @staticmethod
    def _release_row(
        conn: sqlite3.Connection,
        row: sqlite3.Row,
        *,
        now: float,
        error: str,
        quarantine_after: Optional[int],
    ) -> str:
        """Route one lost running job: requeue, fail, or quarantine."""
        failed_workers = json.loads(row["failed_workers"])
        if row["worker"] and row["worker"] not in failed_workers:
            failed_workers.append(row["worker"])
        workers_json = json.dumps(failed_workers)
        if (
            quarantine_after is not None
            and len(failed_workers) >= quarantine_after
        ):
            conn.execute(
                "UPDATE jobs SET state = 'quarantined', finished_at = ?, "
                "error = ?, lease_expires = NULL, failed_workers = ? "
                "WHERE id = ?",
                (
                    now,
                    f"{error}; quarantined after failing on "
                    f"{len(failed_workers)} distinct worker(s)",
                    workers_json,
                    row["id"],
                ),
            )
        elif row["attempts"] >= row["max_attempts"]:
            conn.execute(
                "UPDATE jobs SET state = 'failed', finished_at = ?, "
                "error = ?, lease_expires = NULL, failed_workers = ? "
                "WHERE id = ?",
                (
                    now,
                    f"{error}; attempts exhausted",
                    workers_json,
                    row["id"],
                ),
            )
        else:
            conn.execute(
                "UPDATE jobs SET state = 'queued', lease_expires = NULL, "
                "worker = NULL, error = ?, failed_workers = ? "
                "WHERE id = ?",
                (error, workers_json, row["id"]),
            )
        if row["worker"]:
            # Charge the lost attempt to the holder's registry row, but
            # leave last_heartbeat alone — the holder is presumed dead.
            conn.execute(
                "UPDATE workers SET jobs_failed = jobs_failed + 1, "
                "current_job = CASE WHEN current_job = ? THEN NULL "
                "ELSE current_job END WHERE id = ?",
                (row["id"], row["worker"]),
            )
        return row["id"]

    def note_worker_failure(
        self, job_id: str, worker: Optional[str]
    ) -> Tuple[str, ...]:
        """Record that ``worker``'s attempt at ``job_id`` failed.

        Returns the updated set of distinct failed workers — the
        scheduler compares its size against the quarantine threshold.
        """
        with self._txn(immediate=True) as conn:
            row = conn.execute(
                "SELECT failed_workers FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
            if row is None:
                raise JobNotFound(job_id)
            failed_workers = json.loads(row["failed_workers"])
            if worker and worker not in failed_workers:
                failed_workers.append(worker)
                conn.execute(
                    "UPDATE jobs SET failed_workers = ? WHERE id = ?",
                    (json.dumps(failed_workers), job_id),
                )
        return tuple(failed_workers)

    # -- completion ----------------------------------------------------

    def complete(
        self,
        job_id: str,
        *,
        med: Optional[float] = None,
        runtime_seconds: Optional[float] = None,
        cache_hit: bool = False,
        now: Optional[float] = None,
    ) -> None:
        """Mark a running job done (optionally resolved from the cache)."""
        now = time.time() if now is None else now
        self._transition(
            job_id,
            "UPDATE jobs SET state = 'done', finished_at = ?, med = ?, "
            "runtime_seconds = ?, cache_hit = ?, error = NULL, "
            "lease_expires = NULL WHERE id = ? AND state = 'running'",
            (now, med, runtime_seconds, int(cache_hit), job_id),
            outcome="completed",
            now=now,
        )

    def retry(
        self,
        job_id: str,
        error: str,
        not_before: float,
    ) -> None:
        """Return a failed attempt to the queue with a backoff gate."""
        self._transition(
            job_id,
            "UPDATE jobs SET state = 'queued', error = ?, not_before = ?, "
            "lease_expires = NULL, worker = NULL "
            "WHERE id = ? AND state = 'running'",
            (error, not_before, job_id),
            outcome="failed",
            now=time.time(),
        )

    def fail(
        self, job_id: str, error: str, now: Optional[float] = None
    ) -> None:
        """Permanently fail a running job (attempt budget exhausted)."""
        now = time.time() if now is None else now
        self._transition(
            job_id,
            "UPDATE jobs SET state = 'failed', error = ?, finished_at = ?, "
            "lease_expires = NULL WHERE id = ? AND state = 'running'",
            (error, now, job_id),
            outcome="failed",
            now=now,
        )

    def quarantine(
        self, job_id: str, error: str, now: Optional[float] = None
    ) -> None:
        """Park a running poison job permanently (see module docs)."""
        now = time.time() if now is None else now
        self._transition(
            job_id,
            "UPDATE jobs SET state = 'quarantined', error = ?, "
            "finished_at = ?, lease_expires = NULL "
            "WHERE id = ? AND state = 'running'",
            (error, now, job_id),
            outcome="failed",
            now=now,
        )

    def _transition(
        self,
        job_id: str,
        sql: str,
        params,
        *,
        outcome: Optional[str] = None,
        now: Optional[float] = None,
    ) -> None:
        with self._txn(immediate=True) as conn:
            prior = conn.execute(
                "SELECT state, worker FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
            if prior is None:
                raise JobNotFound(job_id)
            cursor = conn.execute(sql, params)
            if cursor.rowcount == 0:
                raise ServiceError(
                    f"job {job_id} is {prior['state']!r}; transition refused"
                )
            if outcome is not None and prior["worker"]:
                done = 1 if outcome == "completed" else 0
                conn.execute(
                    "UPDATE workers SET "
                    "jobs_completed = jobs_completed + ?, "
                    "jobs_failed = jobs_failed + ?, "
                    "last_heartbeat = ?, "
                    "current_job = CASE WHEN current_job = ? "
                    "THEN NULL ELSE current_job END "
                    "WHERE id = ?",
                    (
                        done,
                        1 - done,
                        time.time() if now is None else now,
                        job_id,
                        prior["worker"],
                    ),
                )

    # -- inspection ----------------------------------------------------

    def get(self, job_id: str) -> JobRecord:
        """Fetch one job by id; raises :class:`JobNotFound`."""
        with self._txn() as conn:
            row = conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        if row is None:
            raise JobNotFound(job_id)
        return _record_from_row(row)

    def list_jobs(self, state: Optional[str] = None) -> List[JobRecord]:
        """All jobs (optionally filtered by state), oldest first."""
        records, _ = self.page_jobs(state=state)
        return records

    def page_jobs(
        self,
        state: Optional[str] = None,
        limit: Optional[int] = None,
        cursor: Optional[str] = None,
        after: Optional[Tuple[float, str]] = None,
    ) -> Tuple[List[JobRecord], Optional[str]]:
        """One page of jobs, oldest first: ``(records, next_cursor)``.

        The cursor is the last-seen job id; pagination continues from
        strictly after that job in ``(created_at, id)`` order, which is
        stable under concurrent submissions — rows never shift under a
        paginating reader the way OFFSET pages do, so no job is skipped
        or repeated.  ``next_cursor`` is ``None`` on the final page.
        ``limit=None`` returns everything in one page (legacy shape).
        An unknown ``cursor`` or ``state`` raises
        :class:`~repro.errors.ServiceError`.

        ``after`` is an explicit ``(created_at, id)`` anchor used
        instead of cursor resolution — the sharded store's cross-shard
        keyset merge passes it so every shard can continue from the
        same global position even when the anchor row lives (or lived)
        on a different shard.
        """
        if state is not None and state not in JOB_STATES:
            raise ServiceError(
                f"unknown job state {state!r}; states: {JOB_STATES}"
            )
        if limit is not None and limit <= 0:
            raise ServiceError(
                f"limit must be a positive integer, got {limit!r}"
            )
        clauses: List[str] = []
        params: List = []
        with self._txn() as conn:
            if cursor is not None and after is None:
                anchor = conn.execute(
                    "SELECT created_at, id FROM jobs WHERE id = ?",
                    (cursor,),
                ).fetchone()
                if anchor is None:
                    raise ServiceError(
                        f"unknown pagination cursor {cursor!r}"
                    )
                after = (anchor["created_at"], cursor)
            if after is not None:
                clauses.append(
                    "(created_at > ? OR (created_at = ? AND id > ?))"
                )
                params.extend([after[0], after[0], after[1]])
            if state is not None:
                clauses.append("state = ?")
                params.append(state)
            query = "SELECT * FROM jobs"
            if clauses:
                query += " WHERE " + " AND ".join(clauses)
            query += " ORDER BY created_at, id"
            if limit is not None:
                # one extra row tells us whether a next page exists
                query += " LIMIT ?"
                params.append(limit + 1)
            rows = conn.execute(query, tuple(params)).fetchall()
        next_cursor: Optional[str] = None
        if limit is not None and len(rows) > limit:
            rows = rows[:limit]
            next_cursor = rows[-1]["id"]
        return [_record_from_row(row) for row in rows], next_cursor

    def find_by_key(
        self,
        artifact_key: str,
        states: Optional[Sequence[str]] = None,
    ) -> List[JobRecord]:
        """All jobs with this artifact key, oldest first.

        ``states`` optionally restricts the search — the idempotent
        submission path asks for ``("queued", "running", "done")`` to
        find a live twin while ignoring failed attempts.
        """
        query = "SELECT * FROM jobs WHERE artifact_key = ?"
        params: List = [artifact_key]
        if states is not None:
            for state in states:
                if state not in JOB_STATES:
                    raise ServiceError(
                        f"unknown job state {state!r}; states: {JOB_STATES}"
                    )
            placeholders = ", ".join("?" for _ in states)
            query += f" AND state IN ({placeholders})"
            params.extend(states)
        query += " ORDER BY created_at, id"
        with self._txn() as conn:
            rows = conn.execute(query, tuple(params)).fetchall()
        return [_record_from_row(row) for row in rows]

    def counts(self) -> Dict[str, int]:
        """Jobs per state (all states present, zero-filled)."""
        with self._txn() as conn:
            rows = conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        counts = {state: 0 for state in JOB_STATES}
        for row in rows:
            counts[row["state"]] = row["n"]
        return counts

    def pending(self) -> int:
        """Jobs still owed a result (queued or running)."""
        counts = self.counts()
        return counts["queued"] + counts["running"]

    # -- worker registry -----------------------------------------------

    def list_workers(self) -> List[WorkerRecord]:
        """Every worker ever seen by this store, oldest first.

        ``lease_expires`` is joined in from the worker's current
        *running* job (``None`` for idle workers), so callers can show
        lease health without a second query.
        """
        with self._txn() as conn:
            rows = conn.execute(
                "SELECT w.*, j.lease_expires AS lease_expires "
                "FROM workers AS w LEFT JOIN jobs AS j "
                "ON j.id = w.current_job AND j.state = 'running' "
                "ORDER BY w.first_seen, w.id"
            ).fetchall()
        return [
            WorkerRecord(
                id=row["id"],
                kind=row["kind"],
                first_seen=row["first_seen"],
                last_heartbeat=row["last_heartbeat"],
                current_job=row["current_job"],
                jobs_completed=row["jobs_completed"],
                jobs_failed=row["jobs_failed"],
                lease_expires=row["lease_expires"],
            )
            for row in rows
        ]

    def prune_workers(
        self, idle_seconds: float, now: Optional[float] = None
    ) -> int:
        """Drop idle registry rows not heard from in ``idle_seconds``.

        Workers with a current job are never pruned — their fate is
        decided by lease expiry, not registry housekeeping.  Returns
        the number of rows removed.
        """
        now = time.time() if now is None else now
        with self._txn(immediate=True) as conn:
            cursor = conn.execute(
                "DELETE FROM workers WHERE current_job IS NULL "
                "AND last_heartbeat < ?",
                (now - idle_seconds,),
            )
            return cursor.rowcount
