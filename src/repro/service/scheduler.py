"""Scheduling policy: claims, bounded retries with backoff, recovery.

The :class:`Scheduler` is the thin brain between the durable
:class:`~repro.service.jobstore.JobStore` and the workers: it decides
*when* a queued job may run (retry-backoff gates), *how long* a silent
worker keeps its lease, and *whether* a failed attempt retries or the
job is declared dead.  It holds no state of its own beyond the policy —
everything durable lives in the store, so any number of scheduler
instances (threads or processes) can drive the same queue.

Backoff is exponential and deterministic:
``retry_backoff_seconds * backoff_multiplier ** (attempts - 1)``.
Determinism matters here too — the *result* of a job never depends on
its retry history (each attempt replays the same seeded search), so
backoff only shapes load, never answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.obs.logconfig import get_logger
from repro.obs.metrics import get_metrics
from repro.obs.tracing import get_tracer
from repro.service.jobstore import JobRecord, JobStore

logger = get_logger("repro.service.scheduler")

__all__ = ["Scheduler", "SchedulerPolicy"]


@dataclass(frozen=True)
class SchedulerPolicy:
    """Tunable scheduling knobs.

    Attributes
    ----------
    lease_seconds:
        How long a claimed job may go without a heartbeat before it is
        considered orphaned by a crashed worker.
    retry_backoff_seconds:
        Base delay before a failed attempt re-enters the queue.
    backoff_multiplier:
        Exponential growth factor of the retry delay.
    poll_interval_seconds:
        Worker sleep between claim attempts on an empty queue.
    quarantine_after:
        Distinct workers a job may fail on before it is parked in the
        terminal ``quarantined`` state instead of retrying (poison-job
        protection; ``None`` disables quarantine).  Counted over
        *distinct worker names* — one flaky worker retrying the same
        job does not quarantine it, a job that takes down several
        different workers does.
    """

    lease_seconds: float = 60.0
    retry_backoff_seconds: float = 0.25
    backoff_multiplier: float = 2.0
    poll_interval_seconds: float = 0.05
    quarantine_after: Optional[int] = 3

    def __post_init__(self) -> None:
        if self.lease_seconds <= 0:
            raise ConfigurationError(
                f"lease_seconds must be positive, got {self.lease_seconds}"
            )
        if self.retry_backoff_seconds < 0:
            raise ConfigurationError(
                "retry_backoff_seconds must be non-negative, got "
                f"{self.retry_backoff_seconds}"
            )
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError(
                "backoff_multiplier must be >= 1, got "
                f"{self.backoff_multiplier}"
            )
        if self.poll_interval_seconds <= 0:
            raise ConfigurationError(
                "poll_interval_seconds must be positive, got "
                f"{self.poll_interval_seconds}"
            )
        if self.quarantine_after is not None and self.quarantine_after < 1:
            raise ConfigurationError(
                "quarantine_after must be >= 1 or None, got "
                f"{self.quarantine_after}"
            )

    def backoff_for(self, attempts: int) -> float:
        """Delay before attempt ``attempts + 1`` may start."""
        exponent = max(0, attempts - 1)
        return self.retry_backoff_seconds * (
            self.backoff_multiplier ** exponent
        )


class Scheduler:
    """Policy-applying façade over the job store (see module docs).

    ``store`` is anything speaking the :class:`JobStore` interface —
    the single SQLite store or a
    :class:`~repro.service.shards.ShardedJobStore`; the scheduler is
    oblivious to the layout.  Against a sharded store a degraded
    shard surfaces as :class:`~repro.errors.ShardUnavailableError`
    from key/id-scoped calls (the worker pool treats it as store
    pressure), while claims and recovery silently continue over the
    surviving shards.
    """

    def __init__(
        self, store: JobStore, policy: Optional[SchedulerPolicy] = None
    ) -> None:
        self.store = store
        self.policy = policy if policy is not None else SchedulerPolicy()

    # ------------------------------------------------------------------

    def claim(
        self,
        worker: str,
        now: Optional[float] = None,
        kind: str = "local",
    ) -> Optional[JobRecord]:
        """Claim the next runnable job for ``worker`` (or ``None``).

        ``kind`` tags the worker's registry row (``"local"`` for
        in-process pool threads, ``"remote"`` for fleet agents claiming
        over the gateway) — purely informational, scheduling ignores it.
        """
        job = self.store.claim(
            worker,
            lease_seconds=self.policy.lease_seconds,
            now=now,
            kind=kind,
        )
        if job is not None:
            get_tracer().instant(
                "job_claimed",
                category="service",
                job_id=job.id,
                worker=worker,
                attempt=job.attempts,
            )
            get_metrics().counter(
                "scheduler_claims_total", help="jobs claimed by workers"
            ).inc()
        return job

    def heartbeat(self, job: JobRecord, now: Optional[float] = None) -> None:
        """Renew ``job``'s lease; workers call this from progress hooks."""
        self.store.heartbeat(
            job.id, lease_seconds=self.policy.lease_seconds, now=now
        )
        get_metrics().counter(
            "scheduler_heartbeats_total", help="lease renewals"
        ).inc()

    def complete(self, job: JobRecord, **kwargs) -> None:
        """Record a successful attempt (see :meth:`JobStore.complete`)."""
        self.store.complete(job.id, **kwargs)
        get_tracer().instant(
            "job_completed", category="service", job_id=job.id
        )

    def record_failure(
        self,
        job: JobRecord,
        error: str,
        now: float,
    ) -> str:
        """Route a failed attempt: retry, fail for good, or quarantine.

        Returns the resulting state (``"queued"``, ``"failed"``, or
        ``"quarantined"``).  ``job`` must be the claimed record — its
        ``attempts`` already counts the attempt that just failed.
        Quarantine wins over both other routes: a job that has broken
        ``policy.quarantine_after`` distinct workers is parked even if
        retry budget remains.
        """
        failed_workers = self.store.note_worker_failure(job.id, job.worker)
        threshold = self.policy.quarantine_after
        if threshold is not None and len(failed_workers) >= threshold:
            self.store.quarantine(
                job.id,
                error=(
                    f"{error}; quarantined after failing on "
                    f"{len(failed_workers)} distinct worker(s)"
                ),
                now=now,
            )
            logger.error(
                "job %s quarantined after failing on %d distinct "
                "worker(s): %s",
                job.id, len(failed_workers), error,
            )
            get_tracer().instant(
                "job_quarantined",
                category="service",
                job_id=job.id,
                failed_workers=len(failed_workers),
            )
            get_metrics().counter(
                "scheduler_quarantines_total",
                help="poison jobs parked after breaking distinct workers",
            ).inc()
            return "quarantined"
        if job.attempts < job.max_attempts:
            delay = self.policy.backoff_for(job.attempts)
            self.store.retry(job.id, error=error, not_before=now + delay)
            get_tracer().instant(
                "job_retry",
                category="service",
                job_id=job.id,
                attempt=job.attempts,
                backoff_seconds=delay,
            )
            get_metrics().counter(
                "scheduler_retries_total",
                help="failed attempts requeued with backoff",
            ).inc()
            return "queued"
        self.store.fail(job.id, error=error, now=now)
        logger.warning(
            "job %s failed permanently after %d attempts: %s",
            job.id, job.attempts, error,
        )
        get_tracer().instant(
            "job_failed",
            category="service",
            job_id=job.id,
            attempts=job.attempts,
        )
        get_metrics().counter(
            "scheduler_failures_total",
            help="jobs failed after exhausting retries",
        ).inc()
        return "failed"

    def recover_orphans(self, now: Optional[float] = None) -> List[str]:
        """Requeue/fail/quarantine jobs abandoned by crashed workers."""
        recovered = self.store.recover_orphans(
            now=now, quarantine_after=self.policy.quarantine_after
        )
        if recovered:
            logger.warning(
                "recovered %d orphaned job(s): %s",
                len(recovered), ", ".join(recovered),
            )
            for job_id in recovered:
                get_tracer().instant(
                    "job_orphan_recovered",
                    category="service",
                    job_id=job_id,
                )
            get_metrics().counter(
                "scheduler_orphans_recovered_total",
                help="jobs reclaimed from crashed workers",
            ).inc(len(recovered))
        return recovered

    def release_worker(
        self, worker: str, now: Optional[float] = None
    ) -> List[str]:
        """Release a worker observed dead without waiting out its lease.

        The supervisor's fast path for jobs held by a child process it
        just saw exit; routing (requeue / fail / quarantine) matches
        :meth:`recover_orphans`.
        """
        released = self.store.release_worker(
            worker, now=now, quarantine_after=self.policy.quarantine_after
        )
        if released:
            logger.warning(
                "released %d job(s) from dead worker %s: %s",
                len(released), worker, ", ".join(released),
            )
            get_metrics().counter(
                "scheduler_worker_releases_total",
                help="jobs released from workers observed dead",
            ).inc(len(released))
        return released
