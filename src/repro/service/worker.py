"""Workers: claim jobs, execute them, keep the lease alive.

Execution path of one job:

1. re-check the artifact store — a duplicate submitted while an
   identical job was in flight resolves here without solving (recorded
   as a cache hit);
2. otherwise run the seeded search through
   :meth:`~repro.core.framework.IsingDecomposer.decompose`, with

   * the framework *progress hook* renewing the job's lease (so a live
     long job is distinguishable from a crashed worker), and
   * the framework *cancel hook* enforcing the per-attempt timeout
     cooperatively (the attempt stops at the next component boundary
     and counts against the retry budget);

3. persist the design under its content key and mark the job done.

Determinism contract: the job spec pins the seed and the semantic
config, and ``decompose`` replays the identical search on every
attempt, so the stored design is bit-for-bit independent of which
worker ran the job, how many retries it took, and whether it was served
from the cache.

The pool itself is a set of daemon threads sharing one scheduler.  The
heavy numerics release the GIL inside BLAS (and jobs may additionally
fan out their candidate sweep over processes via
``FrameworkConfig.n_workers``), so threads are the right weight here;
crash-tolerance against *process* death is the job store's lease
mechanism, exercised by the orphan-recovery tests.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.framework import IsingDecomposer
from repro.errors import OperationCancelled
from repro.obs.logconfig import get_logger
from repro.obs.metrics import get_metrics
from repro.obs.tracing import get_tracer
from repro.serialization import result_to_dict
from repro.service.artifacts import ArtifactStore
from repro.service.jobstore import JobRecord
from repro.service.scheduler import Scheduler
from repro.service.spec import JobSpec

logger = get_logger("repro.service.worker")

__all__ = ["JobExecutor", "WorkerPool", "ExecutionOutcome"]

#: Signature of a pluggable decompose function: ``(spec, table,
#: progress, should_cancel) -> DecompositionResult``.  The default runs
#: the real framework; tests inject wrappers to simulate crashes.
DecomposeFn = Callable[..., object]


def _default_decompose(spec: JobSpec, table, progress, should_cancel):
    return IsingDecomposer(spec.config).decompose(
        table, progress=progress, should_cancel=should_cancel
    )


@dataclass(frozen=True)
class ExecutionOutcome:
    """What one successful job execution produced."""

    design: Dict
    med: Optional[float]
    runtime_seconds: float
    cache_hit: bool


class JobExecutor:
    """Executes one claimed job against the artifact store."""

    def __init__(
        self,
        artifacts: ArtifactStore,
        decompose_fn: Optional[DecomposeFn] = None,
    ) -> None:
        self.artifacts = artifacts
        self._decompose = (
            decompose_fn if decompose_fn is not None else _default_decompose
        )

    def execute(
        self,
        job: JobRecord,
        *,
        heartbeat: Optional[Callable[[], None]] = None,
    ) -> ExecutionOutcome:
        """Run ``job`` to an outcome (raises on crash/timeout).

        Timeouts raise :class:`~repro.errors.OperationCancelled`; any
        other exception is a worker crash.  The caller owns the job
        store transition either way.
        """
        start = time.monotonic()
        tracer = get_tracer()
        with tracer.span(
            "artifact_cache_check", category="service", job_id=job.id
        ):
            cached = self.artifacts.get(job.artifact_key)
        if cached is not None:
            get_metrics().counter(
                "service_cache_hits_total",
                help="jobs resolved from the artifact cache",
            ).inc()
            return ExecutionOutcome(
                design=cached["design"],
                med=cached["meta"].get("med"),
                runtime_seconds=time.monotonic() - start,
                cache_hit=True,
            )
        spec = job.spec
        table = spec.build_table()
        deadline = (
            None
            if spec.timeout_seconds is None
            else start + spec.timeout_seconds
        )

        def progress(event: Dict) -> None:
            if heartbeat is not None:
                heartbeat()

        def should_cancel() -> bool:
            return deadline is not None and time.monotonic() > deadline

        if should_cancel():
            raise OperationCancelled(
                f"timeout of {spec.timeout_seconds}s expired before the "
                "attempt started"
            )
        with tracer.span(
            "job_decompose",
            category="service",
            job_id=job.id,
            artifact_key=job.artifact_key,
        ):
            result = self._decompose(spec, table, progress, should_cancel)
        runtime = time.monotonic() - start
        meta = {
            "med": float(result.med),
            "runtime_seconds": runtime,
            "n_cop_solves": getattr(result, "n_cop_solves", None),
            "problem": spec.describe(),
        }
        with tracer.span(
            "artifact_put", category="service", job_id=job.id
        ):
            envelope = self.artifacts.put(job.artifact_key, result, meta)
        return ExecutionOutcome(
            design=envelope["design"],
            med=float(result.med),
            runtime_seconds=runtime,
            cache_hit=False,
        )


class WorkerPool:
    """N looping worker threads draining one scheduler's queue."""

    def __init__(
        self,
        scheduler: Scheduler,
        executor: JobExecutor,
        n_workers: int = 1,
        name: str = "svc",
    ) -> None:
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        self.scheduler = scheduler
        self.executor = executor
        self.n_workers = n_workers
        self.name = name
        self._stop = threading.Event()
        self._threads: list = []

    # ------------------------------------------------------------------

    def _run_one(self, worker_name: str, job: JobRecord) -> None:
        def heartbeat() -> None:
            self.scheduler.heartbeat(job)

        metrics = get_metrics()
        with get_tracer().span(
            "job",
            category="service",
            job_id=job.id,
            worker=worker_name,
            attempt=job.attempts,
        ) as span:
            try:
                outcome = self.executor.execute(job, heartbeat=heartbeat)
            except OperationCancelled as exc:
                logger.warning("job %s timed out: %s", job.id, exc)
                span.set_args(outcome="timeout")
                metrics.counter(
                    "service_jobs_timeout_total",
                    help="job attempts ended by timeout",
                ).inc()
                self.scheduler.record_failure(
                    job, error=f"timeout: {exc}", now=time.time()
                )
            except Exception as exc:  # worker crash — never kills the pool
                logger.warning(
                    "job %s crashed: %s: %s",
                    job.id, type(exc).__name__, exc,
                )
                span.set_args(outcome="crashed")
                metrics.counter(
                    "service_jobs_crashed_total",
                    help="job attempts ended by a worker crash",
                ).inc()
                self.scheduler.record_failure(
                    job,
                    error=f"{type(exc).__name__}: {exc}",
                    now=time.time(),
                )
            else:
                span.set_args(
                    outcome="completed", cache_hit=outcome.cache_hit
                )
                metrics.counter(
                    "service_jobs_completed_total",
                    help="jobs completed successfully",
                ).inc()
                self.scheduler.complete(
                    job,
                    med=outcome.med,
                    runtime_seconds=outcome.runtime_seconds,
                    cache_hit=outcome.cache_hit,
                )

    def _loop(self, worker_name: str, drain: bool) -> None:
        poll = self.scheduler.policy.poll_interval_seconds
        while not self._stop.is_set():
            self.scheduler.recover_orphans()
            job = self.scheduler.claim(worker_name)
            if job is None:
                if drain and self.scheduler.store.pending() == 0:
                    return
                # backoff gates may hold queued jobs; keep polling
                self._stop.wait(poll)
                continue
            self._run_one(worker_name, job)

    # ------------------------------------------------------------------

    def run_until_drained(self, timeout: Optional[float] = None) -> None:
        """Process jobs until the queue is empty (all threads joined)."""
        self._spawn(drain=True)
        deadline = None if timeout is None else time.monotonic() + timeout
        for thread in self._threads:
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            thread.join(remaining)
        self._threads = []

    def start(self) -> None:
        """Start serving forever (until :meth:`stop`)."""
        self._spawn(drain=False)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until :meth:`stop` is requested (or ``timeout``)."""
        return self._stop.wait(timeout)

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        """Ask all workers to stop after their current job."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []
        self._stop.clear()

    def _spawn(self, drain: bool) -> None:
        if self._threads:
            raise RuntimeError("worker pool already running")
        self._stop.clear()
        for index in range(self.n_workers):
            worker_name = f"{self.name}-worker-{index}"
            thread = threading.Thread(
                target=self._loop,
                args=(worker_name, drain),
                name=worker_name,
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
