"""Workers: claim jobs, execute them, keep the lease alive.

Execution path of one job:

1. re-check the artifact store — a duplicate submitted while an
   identical job was in flight resolves here without solving (recorded
   as a cache hit);
2. if a crash-recovery checkpoint exists for the job's artifact key
   (a previous attempt died mid-run), restore it — the attempt
   continues from the last completed component instead of restarting;
3. otherwise run the seeded search through
   :meth:`~repro.core.framework.IsingDecomposer.decompose`, with

   * the framework *progress hook* renewing the job's lease (so a live
     long job is distinguishable from a crashed worker),
   * the framework *cancel hook* enforcing the per-attempt timeout
     cooperatively (the attempt stops at the next component boundary
     and counts against the retry budget), and
   * the framework *checkpoint hook* persisting a
     :class:`~repro.core.checkpoint.DecomposeCheckpoint` every
     ``checkpoint_every`` components through the artifact store;

4. persist the design under its content key, drop the checkpoint, and
   mark the job done.

Determinism contract: the job spec pins the seed and the semantic
config, and ``decompose`` replays the identical search on every
attempt — and a checkpoint restores the exact mid-run state (RNG
streams included) — so the stored design is bit-for-bit independent of
which worker ran the job, how many retries it took, whether any retry
resumed from a checkpoint, and whether it was served from the cache.

The pool itself is a set of daemon threads sharing one scheduler.  The
heavy numerics release the GIL inside BLAS (and jobs may additionally
fan out their candidate sweep over processes via
``FrameworkConfig.n_workers``), so threads are the right weight here;
crash-tolerance against *process* death is the job store's lease
mechanism plus the process-isolated supervisor
(:mod:`repro.service.supervisor`).

Fault seams (active only under an installed
:class:`~repro.resilience.FaultPlan`): ``worker.crash`` fires at
attempt start and after every checkpoint write, ``worker.hang`` sleeps
``param`` seconds at attempt start, ``worker.die`` hard-exits the
process (supervisor mode only).
"""

from __future__ import annotations

import inspect
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.core.checkpoint import DecomposeCheckpoint
from repro.core.framework import IsingDecomposer
from repro.core.fusion import SweepFusionGate
from repro.errors import (
    OperationCancelled,
    ReproError,
    ServiceError,
    ShardUnavailableError,
)
from repro.obs.logconfig import get_logger, warn_once
from repro.obs.metrics import get_metrics
from repro.obs.tracing import get_tracer
from repro.resilience import InjectedFault, active_fault_plan
from repro.serialization import result_to_dict
from repro.service.artifacts import ArtifactStore
from repro.service.jobstore import JobRecord
from repro.service.scheduler import Scheduler
from repro.service.spec import JobSpec

logger = get_logger("repro.service.worker")

__all__ = [
    "JobExecutor",
    "WorkerPool",
    "ExecutionOutcome",
    "DEFAULT_CHECKPOINT_EVERY",
]

#: Signature of a pluggable decompose function: ``(spec, table,
#: progress, should_cancel) -> DecompositionResult``, optionally also
#: accepting ``resume=`` / ``checkpoint_hook=`` keyword arguments (the
#: executor inspects the signature and only passes what the function
#: takes, so pre-checkpoint test wrappers keep working).  The default
#: runs the real framework.
DecomposeFn = Callable[..., object]

#: default checkpoint cadence: persist after every component
DEFAULT_CHECKPOINT_EVERY = 1


def _default_decompose(
    spec: JobSpec,
    table,
    progress,
    should_cancel,
    resume=None,
    checkpoint_hook=None,
    sweep_gate=None,
):
    return IsingDecomposer(spec.config, sweep_gate=sweep_gate).decompose(
        table,
        progress=progress,
        should_cancel=should_cancel,
        resume=resume,
        checkpoint_hook=checkpoint_hook,
    )


def _fusion_rejection(spec: JobSpec) -> Optional[str]:
    """Why ``spec`` can never join a fused sweep group (``None`` = it can).

    The reasons are stable identifiers — they feed the
    ``fusion_rejected_total`` metric and the warn-once batch log, so
    operators can see *why* a batch ran unfused instead of silently
    observing no fusion:

    * ``"ising-problem"`` — raw Ising solve jobs have no candidate
      sweep to fuse;
    * ``"config-not-batched"`` — the spec runs the sequential
      per-candidate path (``FrameworkConfig.batched`` is off);
    * ``"multiprocess-sweep"`` — the sweep already fans out over
      processes (``n_workers > 1``), which is incompatible with
      sharing an in-process kernel window.
    """
    if spec.ising is not None:
        return "ising-problem"
    cfg = spec.config
    if not cfg.batched:
        return "config-not-batched"
    if cfg.n_workers > 1:
        return "multiprocess-sweep"
    return None


def _fusion_key(spec: JobSpec):
    """Grouping key for cross-job sweep fusion (``None`` = not fusable).

    Two jobs may share fused kernel windows when both run the inline
    batched path and their solvers advance on the same iteration
    schedule; everything else about the jobs (tables, shapes, seeds,
    backends) may differ — the BlockBatch planner handles shape/backend
    packing, and float64 sweeps replay solo inside the batch.
    """
    if _fusion_rejection(spec) is not None:
        return None
    solver = spec.config.solver
    return (
        solver.max_iterations,
        solver.sample_every,
        solver.dt,
        solver.a0,
        solver.resolved_ramp_iterations,
    )


@dataclass(frozen=True)
class ExecutionOutcome:
    """What one successful job execution produced."""

    design: Dict
    med: Optional[float]
    runtime_seconds: float
    cache_hit: bool
    resumed_from_checkpoint: bool = False


class JobExecutor:
    """Executes one claimed job against the artifact store.

    Parameters
    ----------
    artifacts:
        The content-addressed store (results *and* checkpoints).
    decompose_fn:
        Pluggable decomposition function (see :data:`DecomposeFn`).
    checkpoint_every:
        Service-default checkpoint cadence in components; a job spec's
        own ``checkpoint_every`` overrides it, ``None`` disables
        checkpointing entirely.
    """

    def __init__(
        self,
        artifacts: ArtifactStore,
        decompose_fn: Optional[DecomposeFn] = None,
        checkpoint_every: Optional[int] = DEFAULT_CHECKPOINT_EVERY,
    ) -> None:
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ServiceError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.artifacts = artifacts
        self.checkpoint_every = checkpoint_every
        self._decompose = (
            decompose_fn if decompose_fn is not None else _default_decompose
        )
        self._decompose_kwargs = self._supported_kwargs(self._decompose)

    @staticmethod
    def _supported_kwargs(fn: Callable) -> frozenset:
        """Which optional kwargs ``fn`` accepts (legacy fns: none)."""
        optional = {"resume", "checkpoint_hook", "sweep_gate"}
        try:
            parameters = inspect.signature(fn).parameters.values()
        except (TypeError, ValueError):
            return frozenset()
        names = {p.name for p in parameters}
        if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters):
            names |= optional
        return frozenset(names & optional)

    def _load_checkpoint(
        self, job: JobRecord, table
    ) -> Optional[DecomposeCheckpoint]:
        """A valid stored checkpoint for ``job``, or ``None``.

        Anything unreadable or bound to a different problem is removed
        — a broken checkpoint must degrade to restart-from-scratch.
        """
        stored = self.artifacts.get_checkpoint(job.artifact_key)
        if stored is None:
            return None
        try:
            checkpoint = DecomposeCheckpoint.from_dict(stored)
            checkpoint.validate_for(table)
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            logger.warning(
                "discarding unusable checkpoint for job %s: %s",
                job.id, exc,
            )
            self.artifacts.delete_checkpoint(job.artifact_key)
            return None
        return checkpoint

    def execute(
        self,
        job: JobRecord,
        *,
        heartbeat: Optional[Callable[[], None]] = None,
        sweep_gate=None,
    ) -> ExecutionOutcome:
        """Run ``job`` to an outcome (raises on crash/timeout).

        Timeouts raise :class:`~repro.errors.OperationCancelled`; any
        other exception is a worker crash.  The caller owns the job
        store transition either way.  A crash leaves the latest
        checkpoint in place for the next attempt; success removes it.
        """
        start = time.monotonic()
        tracer = get_tracer()
        plan = active_fault_plan()
        detail = f"{job.id}:{job.worker or ''}"
        if plan is not None:
            if plan.should_fire("worker.hang", detail):
                time.sleep(plan.site_param("worker.hang", 1.0))
            if plan.should_fire("worker.die", detail):
                os._exit(int(plan.site_param("worker.die", 1.0)) or 1)
            if plan.should_fire("worker.crash", detail):
                raise InjectedFault(f"injected worker crash ({detail})")
        with tracer.span(
            "artifact_cache_check", category="service", job_id=job.id
        ):
            cached = self.artifacts.get(job.artifact_key)
        if cached is not None:
            get_metrics().counter(
                "service_cache_hits_total",
                help="jobs resolved from the artifact cache",
            ).inc()
            return ExecutionOutcome(
                design=cached["design"],
                med=cached["meta"].get("med"),
                runtime_seconds=time.monotonic() - start,
                cache_hit=True,
            )
        spec = job.spec
        if spec.ising is not None:
            return self._execute_ising(
                job, spec, start=start, tracer=tracer, heartbeat=heartbeat
            )
        table = spec.build_table()
        deadline = (
            None
            if spec.timeout_seconds is None
            else start + spec.timeout_seconds
        )

        def progress(event: Dict) -> None:
            if heartbeat is not None:
                heartbeat()

        def should_cancel() -> bool:
            return deadline is not None and time.monotonic() > deadline

        if should_cancel():
            raise OperationCancelled(
                f"timeout of {spec.timeout_seconds}s expired before the "
                "attempt started"
            )

        cadence = (
            spec.checkpoint_every
            if spec.checkpoint_every is not None
            else self.checkpoint_every
        )
        resume: Optional[DecomposeCheckpoint] = None
        if cadence is not None and "resume" in self._decompose_kwargs:
            resume = self._load_checkpoint(job, table)
            if resume is not None:
                logger.info(
                    "job %s resuming from checkpoint (round %d, "
                    "position %d)",
                    job.id, resume.round_index + 1, resume.position,
                )
                tracer.instant(
                    "job_checkpoint_resume",
                    category="service",
                    job_id=job.id,
                    round=resume.round_index + 1,
                    position=resume.position,
                )
                get_metrics().counter(
                    "service_checkpoint_resumes_total",
                    help="job attempts resumed from a crash checkpoint",
                ).inc()

        components_done = 0

        def checkpoint_hook(checkpoint: DecomposeCheckpoint) -> None:
            nonlocal components_done
            components_done += 1
            if components_done % cadence != 0:
                return
            self.artifacts.put_checkpoint(
                job.artifact_key, checkpoint.to_dict()
            )
            get_metrics().counter(
                "service_checkpoints_written_total",
                help="crash-recovery checkpoints persisted",
            ).inc()
            if plan is not None and plan.should_fire(
                "worker.crash", f"{detail}:post-checkpoint"
            ):
                raise InjectedFault(
                    f"injected worker crash after checkpoint ({detail})"
                )

        kwargs = {}
        if "resume" in self._decompose_kwargs:
            kwargs["resume"] = resume
        if cadence is not None and (
            "checkpoint_hook" in self._decompose_kwargs
        ):
            kwargs["checkpoint_hook"] = checkpoint_hook
        if sweep_gate is not None and (
            "sweep_gate" in self._decompose_kwargs
        ):
            kwargs["sweep_gate"] = sweep_gate
        with tracer.span(
            "job_decompose",
            category="service",
            job_id=job.id,
            artifact_key=job.artifact_key,
            resumed=resume is not None,
        ):
            result = self._decompose(
                spec, table, progress, should_cancel, **kwargs
            )
        runtime = time.monotonic() - start
        meta = {
            "med": float(result.med),
            "runtime_seconds": runtime,
            "n_cop_solves": getattr(result, "n_cop_solves", None),
            "problem": spec.describe(),
        }
        with tracer.span(
            "artifact_put", category="service", job_id=job.id
        ):
            envelope = self.artifacts.put(job.artifact_key, result, meta)
        self.artifacts.delete_checkpoint(job.artifact_key)
        return ExecutionOutcome(
            design=envelope["design"],
            med=float(result.med),
            runtime_seconds=runtime,
            cache_hit=False,
            resumed_from_checkpoint=resume is not None,
        )

    def _execute_ising(
        self,
        job: JobRecord,
        spec: JobSpec,
        *,
        start: float,
        tracer,
        heartbeat: Optional[Callable[[], None]] = None,
    ) -> ExecutionOutcome:
        """Solve one raw Ising problem job (:mod:`repro.ising.wire`).

        These jobs are the partition subsystem's subproblems (and any
        direct ``--ising-model`` submission).  They are single seeded
        solver runs — no components, so no checkpoints and no ``med``;
        the artifact envelope's ``design`` slot carries the
        ``repro-ising-result`` document instead of a cascade design.

        The per-worker size gate ``REPRO_ISING_MAX_SPINS`` (default
        4096, deliberately *not* part of the artifact key — it is an
        operational limit, not problem semantics) is what makes
        "beyond the monolithic practical limit" a hard error that
        ``--partition k`` exists to route around.
        """
        from repro.ising import wire

        problem = spec.ising
        n_spins = int(problem["model"]["n_spins"])
        limit = int(os.environ.get("REPRO_ISING_MAX_SPINS", "4096"))
        if n_spins > limit:
            raise ServiceError(
                f"ising problem has {n_spins} spins, over this worker's "
                f"single-solve limit of {limit} (REPRO_ISING_MAX_SPINS); "
                "split it with `repro submit --partition K`"
            )
        model = wire.problem_model(problem)
        solver = wire.build_problem_solver(problem, spec.config)
        rng = np.random.default_rng(spec.config.seed)
        if heartbeat is not None:
            heartbeat()
        with tracer.span(
            "ising_solve",
            category="service",
            job_id=job.id,
            solver=problem["solver"],
            n_spins=n_spins,
        ):
            result = solver.solve(model, rng)
        runtime = time.monotonic() - start
        get_metrics().counter(
            "service_ising_jobs_total",
            help="raw Ising solve jobs executed",
        ).inc()
        meta = {
            "med": None,
            "runtime_seconds": runtime,
            "problem": spec.describe(),
            "ising": {
                "solver": problem["solver"],
                "n_spins": n_spins,
                "energy": float(result.energy),
                "objective": float(result.objective),
                "n_iterations": int(result.n_iterations),
                "stop_reason": str(result.stop_reason),
            },
        }
        with tracer.span(
            "artifact_put", category="service", job_id=job.id
        ):
            envelope = self.artifacts.put(
                job.artifact_key, wire.solve_result_to_dict(result), meta
            )
        return ExecutionOutcome(
            design=envelope["design"],
            med=None,
            runtime_seconds=runtime,
            cache_hit=False,
        )


class WorkerPool:
    """N looping worker threads draining one scheduler's queue.

    With ``batch_size > 1`` each loop iteration claims up to
    ``batch_size`` runnable jobs at once and advances them *together*:

    * duplicate submissions (same artifact key) are deferred behind the
      first job with that key and resolved from the artifact cache
      afterwards, preserving single-flight dedup;
    * distinct jobs run concurrently in threads, each with its own
      lease heartbeat, per-job checkpoints, retry accounting, and
      quarantine — the batch changes scheduling only, never durable
      semantics;
    * jobs whose specs share a fusion key (inline batched path, same
      iteration schedule — see ``_fusion_key``) additionally share a
      :class:`~repro.core.fusion.SweepFusionGate`, so their candidate
      sweeps advance inside common fused kernel passes.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        executor: JobExecutor,
        n_workers: int = 1,
        name: str = "svc",
        batch_size: int = 1,
        fusion_timeout: float = 30.0,
    ) -> None:
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        if batch_size <= 0:
            raise ValueError(
                f"batch_size must be positive, got {batch_size}"
            )
        self.scheduler = scheduler
        self.executor = executor
        self.n_workers = n_workers
        self.name = name
        self.batch_size = batch_size
        self.fusion_timeout = fusion_timeout
        self._stop = threading.Event()
        self._threads: list = []

    # ------------------------------------------------------------------

    def _transition(self, action: Callable[[], None], job_id: str) -> None:
        """Apply a completion-path store transition, tolerating races.

        A slow attempt can lose its claim to orphan recovery (the lease
        expired, another worker re-ran the job); its completion then
        targets a row that is no longer ``running`` for this worker.
        That is not an error of *this* worker — log and move on, the
        job's durable state is owned by whoever holds the claim now.

        A transition that hits a *degraded shard* is different: the
        row is intact but unreachable, so the job stays ``running``
        and lease expiry recovers it once the shard returns (or a
        rebuild requeues it).  Either way the worker survives.
        """
        try:
            action()
        except ShardUnavailableError as exc:
            logger.warning(
                "job %s transition hit a degraded shard (%s); "
                "leaving recovery to the lease",
                job_id, exc,
            )
            get_metrics().counter(
                "service_store_errors_total",
                help="transient job-store errors seen by workers",
            ).inc()
        except ServiceError as exc:
            logger.warning(
                "job %s transition lost a race (lease expired or "
                "recovered by another worker): %s",
                job_id, exc,
            )
            get_metrics().counter(
                "service_transition_races_total",
                help="completion-path transitions lost to recovery races",
            ).inc()

    def _run_one(
        self, worker_name: str, job: JobRecord, participant=None
    ) -> None:
        def heartbeat() -> None:
            self.scheduler.heartbeat(job)

        metrics = get_metrics()
        with get_tracer().span(
            "job",
            category="service",
            job_id=job.id,
            worker=worker_name,
            attempt=job.attempts,
            fused=participant is not None,
        ) as span:
            try:
                try:
                    outcome = self.executor.execute(
                        job, heartbeat=heartbeat, sweep_gate=participant
                    )
                finally:
                    # any exit (cache hit, crash, timeout, success)
                    # must release fusion partners waiting on this job
                    if participant is not None:
                        participant.leave()
            except OperationCancelled as exc:
                logger.warning("job %s timed out: %s", job.id, exc)
                span.set_args(outcome="timeout")
                metrics.counter(
                    "service_jobs_timeout_total",
                    help="job attempts ended by timeout",
                ).inc()
                self._transition(
                    lambda: self.scheduler.record_failure(
                        job, error=f"timeout: {exc}", now=time.time()
                    ),
                    job.id,
                )
            except Exception as exc:  # worker crash — never kills the pool
                logger.warning(
                    "job %s crashed: %s: %s",
                    job.id, type(exc).__name__, exc,
                )
                span.set_args(outcome="crashed")
                metrics.counter(
                    "service_jobs_crashed_total",
                    help="job attempts ended by a worker crash",
                ).inc()
                self._transition(
                    lambda: self.scheduler.record_failure(
                        job,
                        error=f"{type(exc).__name__}: {exc}",
                        now=time.time(),
                    ),
                    job.id,
                )
            else:
                span.set_args(
                    outcome="completed", cache_hit=outcome.cache_hit
                )
                metrics.counter(
                    "service_jobs_completed_total",
                    help="jobs completed successfully",
                ).inc()
                self._transition(
                    lambda: self.scheduler.complete(
                        job,
                        med=outcome.med,
                        runtime_seconds=outcome.runtime_seconds,
                        cache_hit=outcome.cache_hit,
                    ),
                    job.id,
                )

    def _run_batch(self, worker_name: str, jobs: list) -> None:
        """Advance one claimed batch: dedup, fuse, run, settle."""
        if len(jobs) == 1:
            self._run_one(worker_name, jobs[0])
            return
        wave: list = []
        deferred: list = []
        seen_keys: set = set()
        for job in jobs:
            if job.artifact_key in seen_keys:
                deferred.append(job)
            else:
                seen_keys.add(job.artifact_key)
                wave.append(job)
        # one fusion gate per compatible group of two or more jobs;
        # every job left out of a gate is *accounted for*, not silently
        # skipped — the rejection reason feeds a metric and a warn-once
        # log so an operator can see why a batch ran unfused
        metrics = get_metrics()
        participants: Dict[str, object] = {}
        groups: Dict[tuple, list] = {}
        rejections: Dict[str, int] = {}
        for job in wave:
            reason = _fusion_rejection(job.spec)
            if reason is not None:
                rejections[reason] = rejections.get(reason, 0) + 1
                continue
            groups.setdefault(_fusion_key(job.spec), []).append(job)
        n_fused = 0
        for members in groups.values():
            if len(members) < 2:
                # fusable alone, but no batch partner shares its
                # iteration schedule — still a rejection to account for
                rejections["no-compatible-schedule"] = (
                    rejections.get("no-compatible-schedule", 0)
                    + len(members)
                )
                continue
            gate = SweepFusionGate(wait_timeout=self.fusion_timeout)
            for job in members:
                participants[job.id] = gate.participant(
                    job.id,
                    heartbeat=(
                        lambda j=job: self.scheduler.heartbeat(j)
                    ),
                )
            n_fused += len(members)
        if rejections:
            metrics.counter(
                "fusion_rejected_total",
                help="batched jobs excluded from cross-job sweep fusion",
            ).inc(sum(rejections.values()))
            for reason, count in sorted(rejections.items()):
                warn_once(
                    logger,
                    f"fusion-rejected:{reason}",
                    "cross-job sweep fusion excluded %d job(s) from a "
                    "batch: %s (further exclusions for this reason are "
                    "counted in fusion_rejected_total without logging)",
                    count, reason,
                )
        with get_tracer().span(
            "job_batch",
            category="service",
            worker=worker_name,
            n_jobs=len(jobs),
            n_parallel=len(wave),
            n_deferred=len(deferred),
            n_fused=n_fused,
        ):
            metrics.counter(
                "service_job_batches_total",
                help="multi-job batches advanced together",
            ).inc()
            metrics.counter(
                "service_jobs_batched_total",
                help="jobs claimed into multi-job batches",
            ).inc(len(jobs))
            threads = []
            for job in wave:
                thread = threading.Thread(
                    target=self._run_one,
                    args=(worker_name, job, participants.get(job.id)),
                    name=f"{worker_name}:{job.id}",
                    daemon=True,
                )
                thread.start()
                threads.append(thread)
            for thread in threads:
                thread.join()
            # duplicates run after the wave: the first job with their
            # artifact key has persisted (or will retry); these resolve
            # from the cache, keeping single-flight dedup intact
            for job in deferred:
                self._run_one(worker_name, job)

    def _loop(self, worker_name: str, drain: bool) -> None:
        poll = self.scheduler.policy.poll_interval_seconds
        while not self._stop.is_set():
            try:
                self.scheduler.recover_orphans()
                job = self.scheduler.claim(worker_name)
            except sqlite3.OperationalError as exc:
                # transient store pressure (locked, disk full, or an
                # injected jobstore fault) — back off, never die
                logger.warning(
                    "worker %s: job store unavailable (%s); backing off",
                    worker_name, exc,
                )
                get_metrics().counter(
                    "service_store_errors_total",
                    help="transient job-store errors seen by workers",
                ).inc()
                self._stop.wait(poll)
                continue
            if job is None:
                if drain:
                    try:
                        if self.scheduler.store.pending() == 0:
                            return
                    except sqlite3.OperationalError:
                        pass  # can't tell if drained; poll again
                # backoff gates may hold queued jobs; keep polling
                self._stop.wait(poll)
                continue
            jobs = [job]
            if self.batch_size > 1:
                try:
                    while len(jobs) < self.batch_size:
                        extra = self.scheduler.claim(worker_name)
                        if extra is None:
                            break
                        jobs.append(extra)
                except sqlite3.OperationalError:
                    pass  # run what we have; the store is struggling
            try:
                self._run_batch(worker_name, jobs)
            except sqlite3.OperationalError as exc:
                # the *completion* transition hit store pressure; the
                # job stays ``running`` and lease expiry will recover
                # it (a persisted artifact then resolves the retry from
                # the cache) — the worker itself must survive
                logger.warning(
                    "worker %s: job %s completion hit store pressure "
                    "(%s); leaving recovery to the lease",
                    worker_name, job.id, exc,
                )
                get_metrics().counter(
                    "service_store_errors_total",
                    help="transient job-store errors seen by workers",
                ).inc()
                self._stop.wait(poll)

    # ------------------------------------------------------------------

    def run_until_drained(self, timeout: Optional[float] = None) -> None:
        """Process jobs until the queue is empty (all threads joined)."""
        self._spawn(drain=True)
        deadline = None if timeout is None else time.monotonic() + timeout
        for thread in self._threads:
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            thread.join(remaining)
        self._threads = []

    def start(self) -> None:
        """Start serving forever (until :meth:`stop`)."""
        self._spawn(drain=False)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until :meth:`stop` is requested (or ``timeout``)."""
        return self._stop.wait(timeout)

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        """Ask all workers to stop after their current job."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []
        self._stop.clear()

    def request_stop(self) -> None:
        """Signal stop without joining (asynchronous retirement).

        The autoscaler retires pool units from its control loop and
        must not block on a job mid-flight; it polls :attr:`alive`
        afterwards and lets finished threads be garbage-collected.
        Unlike :meth:`stop` this never clears the stop flag, so a
        still-running thread cannot resume looping.
        """
        self._stop.set()

    @property
    def alive(self) -> bool:
        """True while any worker thread is still running."""
        return any(thread.is_alive() for thread in self._threads)

    def _spawn(self, drain: bool) -> None:
        if self._threads:
            raise RuntimeError("worker pool already running")
        self._stop.clear()
        for index in range(self.n_workers):
            worker_name = f"{self.name}-worker-{index}"
            thread = threading.Thread(
                target=self._loop,
                args=(worker_name, drain),
                name=worker_name,
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
