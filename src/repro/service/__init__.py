"""repro.service — a durable, crash-tolerant decomposition job service.

The software analogue of a hardware Ising dispatch layer: problem
instances are *submitted* as durable jobs, *scheduled* onto a worker
pool with bounded retries and cooperative timeouts, and their finished
designs land in a *content-addressed artifact cache* so duplicate
submissions never re-solve.

Module map
----------
``spec``       :class:`JobSpec` + :func:`artifact_key` (content hashing)
``artifacts``  :class:`ArtifactStore` — on-disk design cache
``jobstore``   :class:`JobStore` — SQLite job journal (the durable truth)
``shards``     :class:`ShardedJobStore` — N independent job-store
               fault domains with per-shard circuit breakers,
               degraded-mode serving, and journal-based scrub/rebuild
``scheduler``  :class:`Scheduler`/:class:`SchedulerPolicy` — retries,
               backoff, leases, orphan recovery
``worker``     :class:`JobExecutor` + :class:`WorkerPool`
``supervisor`` :class:`WorkerSupervisor` — process-isolated workers
               with restart-on-crash and hang detection
``telemetry``  :func:`service_summary` — derived structured metrics
``service``    :class:`DecompositionService` — the façade the CLI's
               ``serve``/``submit``/``status``/``fetch`` commands wrap

Determinism guarantee: a job's spec pins its seed and semantic config;
every attempt replays the identical seeded search, so returned designs
are bit-for-bit independent of worker count, retry history, crashes,
and cache hits.
"""

from repro.service.artifacts import ArtifactStore
from repro.service.jobstore import (
    JOB_STATES,
    TERMINAL_STATES,
    JobRecord,
    JobStore,
    WorkerRecord,
)
from repro.service.scheduler import Scheduler, SchedulerPolicy
from repro.service.service import DecompositionService
from repro.service.shards import (
    ShardedJobStore,
    open_job_store,
    rebuild_shard,
    scrub_store,
    shard_for_key,
)
from repro.service.spec import (
    SPEC_FORMAT,
    SPEC_SCHEMA_VERSION,
    JobSpec,
    artifact_key,
    spec_from_stored,
)
from repro.service.supervisor import WorkerSupervisor
from repro.service.telemetry import (
    format_job_table,
    format_worker_table,
    service_summary,
)
from repro.service.worker import (
    DEFAULT_CHECKPOINT_EVERY,
    JobExecutor,
    WorkerPool,
)

__all__ = [
    "ArtifactStore",
    "DEFAULT_CHECKPOINT_EVERY",
    "DecompositionService",
    "JOB_STATES",
    "JobExecutor",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "SPEC_FORMAT",
    "SPEC_SCHEMA_VERSION",
    "Scheduler",
    "SchedulerPolicy",
    "ShardedJobStore",
    "TERMINAL_STATES",
    "WorkerPool",
    "WorkerRecord",
    "WorkerSupervisor",
    "artifact_key",
    "format_job_table",
    "format_worker_table",
    "open_job_store",
    "rebuild_shard",
    "scrub_store",
    "service_summary",
    "shard_for_key",
    "spec_from_stored",
]
