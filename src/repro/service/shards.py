"""Sharded job store: N independent SQLite fault domains.

A single :class:`~repro.service.jobstore.JobStore` is one file — one
``JobStoreCorruptError`` or stuck disk takes down submits, fleet
claims, and the scheduler at once.  :class:`ShardedJobStore` splits
the store into N independent SQLite databases, hashing every job onto
a shard by its **artifact key** (the content address over truth table
and semantic config), and presents the union behind the exact
``JobStore`` interface the scheduler, gateway, and CLI already speak.

Layout
------
``N == 1`` is byte-identical to today's single store — the factory
:func:`open_job_store` returns a plain ``JobStore`` over
``<root>/jobs.sqlite3`` with no manifest and no journal, so every
existing service directory keeps working untouched.  ``N >= 2``
writes::

    <root>/
      shards.json               layout manifest {"n_shards": N}
      jobs-00.sqlite3           shard 0 (plus -wal/-shm siblings)
      jobs-00.journal.jsonl     shard 0 intent journal
      ...
      jobs-<N-1>.sqlite3
      artifacts/                shared content-addressed cache (unsharded)

The manifest makes the layout self-describing: ``repro submit`` /
``status`` / supervised worker processes discover N from it, and an
explicit ``--shards`` that contradicts it is refused rather than
silently resharding (keys would rehash onto different shards).

Fault domains
-------------
Each shard carries a circuit breaker.  Repeated
``sqlite3.OperationalError`` (or a single
:class:`~repro.errors.JobStoreCorruptError`) trips the shard to
``degraded``; while degraded:

- operations *scoped* to the shard — submits and dedup lookups whose
  key hashes there, transitions on jobs homed there — raise
  :class:`~repro.errors.ShardUnavailableError`, which the gateway
  maps to a scoped 503 ``store_unavailable`` with Retry-After;
- everything with a surviving-shard answer keeps working: claims
  rotate over healthy shards, pagination keyset-merges the healthy
  shards, counts/pending/fleet registry aggregate what is reachable.

A degraded shard is re-probed *half-open*: every
``probe_interval_seconds`` one real call is let through, and a
success closes the circuit again.  A shard whose file is actually
corrupt keeps failing its probes until ``repro admin rebuild``
reconstructs it.

Rebuild
-------
Every submit appends an intent record to the shard's append-only
journal *before* the row is inserted, and every terminal transition
(done / failed / quarantined) appends its outcome after commit.  The
journal plus the content-addressed artifact store make a lost shard
reconstructible (:func:`rebuild_shard`): journaled terminal jobs are
restored verbatim, journaled submits whose artifact already exists
resolve as cache-hit ``done``, and everything else is requeued (the
solve is deterministic, so re-execution converges to byte-identical
artifacts).  :func:`scrub_store` is the read-only audit: per-shard
``quick_check`` plus journal↔database and done-job↔artifact
cross-checks.

Job ids are tagged with their home shard (``job-s03-<hex>``), so
routing a transition is O(1); untagged legacy ids fall back to
probing the shards.
"""

from __future__ import annotations

import itertools
import json
import os
import re
import sqlite3
import struct
import threading
import time
import uuid
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import (
    JobNotFound,
    JobStoreCorruptError,
    ServiceError,
    ShardUnavailableError,
)
from repro.obs.logconfig import get_logger
from repro.obs.metrics import get_metrics
from repro.resilience.faults import active_fault_plan
from repro.service.artifacts import ArtifactStore
from repro.service.jobstore import (
    JOB_STATES,
    JobRecord,
    JobStore,
    WorkerRecord,
)
from repro.service.spec import JobSpec

__all__ = [
    "MANIFEST_NAME",
    "ShardedJobStore",
    "open_job_store",
    "read_journal",
    "rebuild_shard",
    "resolve_n_shards",
    "scrub_store",
    "shard_for_key",
    "shard_db_path",
    "shard_journal_path",
]

logger = get_logger("repro.service.shards")

MANIFEST_NAME = "shards.json"
_MANIFEST_FORMAT = "repro-shards"

#: shard-tagged job ids: ``job-s<index>-<hex>``
_SHARD_ID_RE = re.compile(r"^job-s(\d+)-")

_TERMINAL_OPS = {"done": "done", "failed": "failed",
                 "quarantined": "quarantined"}


def shard_for_key(artifact_key: str, n_shards: int) -> int:
    """Home shard of an artifact key (stable content-address hash).

    Keys are SHA-256 hex digests, so the leading 32 bits are already a
    uniform hash — no second hashing pass needed.
    """
    if n_shards <= 1:
        return 0
    try:
        return int(artifact_key[:8], 16) % n_shards
    except (ValueError, IndexError):
        # not a hex digest (defensive); fold the raw bytes instead
        return sum(artifact_key.encode("utf-8", "replace")) % n_shards


def shard_db_path(root: Path, index: int, n_shards: int) -> Path:
    """Database file of one shard (the legacy name when unsharded)."""
    if n_shards == 1:
        return Path(root) / "jobs.sqlite3"
    return Path(root) / f"jobs-{index:02d}.sqlite3"


def shard_journal_path(root: Path, index: int) -> Path:
    """Append-only intent journal of one shard."""
    return Path(root) / f"jobs-{index:02d}.journal.jsonl"


# -- layout manifest ----------------------------------------------------

def _read_manifest(root: Path) -> Optional[int]:
    path = Path(root) / MANIFEST_NAME
    if not path.exists():
        return None
    try:
        data = json.loads(path.read_text())
        n = int(data["n_shards"])
    except (ValueError, KeyError, TypeError) as exc:
        raise ServiceError(
            f"malformed shard manifest {path}: {exc}"
        ) from exc
    if n < 1:
        raise ServiceError(f"shard manifest {path} has n_shards={n}")
    return n


def _write_manifest(root: Path, n_shards: int) -> None:
    path = Path(root) / MANIFEST_NAME
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(
        json.dumps(
            {"format": _MANIFEST_FORMAT, "n_shards": n_shards},
            sort_keys=True,
        )
        + "\n"
    )
    os.replace(tmp, path)


def resolve_n_shards(
    root: Union[str, Path], requested: Optional[int] = None
) -> int:
    """Shard count of a service directory.

    The manifest (written on first sharded open) is authoritative:
    ``requested`` may be ``None`` (discover) or must agree with it —
    a contradicting count is refused because rehashing keys onto a
    different N would scatter jobs across the wrong shards.  Without
    a manifest, ``requested`` (default 1) decides.
    """
    existing = _read_manifest(Path(root))
    if existing is not None:
        if requested is not None and requested != existing:
            raise ServiceError(
                f"service directory {root} is laid out with "
                f"{existing} shard(s); --shards {requested} would "
                f"reshard it (not supported)"
            )
        return existing
    n = 1 if requested is None else int(requested)
    if n < 1:
        raise ServiceError(f"shard count must be >= 1, got {n}")
    return n


def open_job_store(
    root: Union[str, Path], shards: Optional[int] = None
) -> Union[JobStore, "ShardedJobStore"]:
    """Open a service directory's job store, sharded or not.

    ``N == 1`` returns a plain :class:`JobStore` over
    ``<root>/jobs.sqlite3`` — byte-identical to the pre-sharding
    layout, no manifest, no journal.  ``N >= 2`` writes/validates the
    manifest and returns a :class:`ShardedJobStore`.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    n = resolve_n_shards(root, shards)
    if n == 1:
        return JobStore(root / "jobs.sqlite3")
    if (root / "jobs.sqlite3").exists():
        # an unsharded store already lives here; sharding on top
        # would strand its jobs in a file nothing reads anymore
        raise ServiceError(
            f"service directory {root} already holds an unsharded "
            f"job store (jobs.sqlite3); --shards {n} would strand "
            f"its jobs (resharding is not supported)"
        )
    _write_manifest(root, n)
    return ShardedJobStore(root, n)


# -- intent journal -----------------------------------------------------

def read_journal(path: Union[str, Path]) -> Iterator[Dict]:
    """Records of one shard journal, oldest first.

    Torn trailing lines (a crash mid-append) are skipped rather than
    fatal — the journal is a recovery aid, not a ledger.
    """
    path = Path(path)
    if not path.exists():
        return
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                yield record


# -- per-shard breaker state --------------------------------------------

class _ShardHealth:
    """Mutable breaker state of one shard (guarded by the store lock)."""

    __slots__ = (
        "index", "path", "state", "consecutive_failures",
        "tripped_at", "last_error", "last_probe",
    )

    def __init__(self, index: int, path: Path) -> None:
        self.index = index
        self.path = path
        self.state = "healthy"
        self.consecutive_failures = 0
        self.tripped_at: Optional[float] = None
        self.last_error: Optional[str] = None
        self.last_probe = 0.0

    def to_dict(self) -> Dict:
        return {
            "index": self.index,
            "path": str(self.path),
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "tripped_at": self.tripped_at,
            "last_error": self.last_error,
        }


class ShardedJobStore:
    """N independent job-store fault domains behind one interface.

    See the module docs for the layout, degraded-mode semantics, and
    rebuild story.  Requires ``n_shards >= 2`` — the N=1 case is a
    plain :class:`JobStore` (use :func:`open_job_store`).
    """

    #: consecutive ``OperationalError``\ s before the breaker trips
    #: (corruption trips immediately)
    TRIP_THRESHOLD = 3

    #: how often a degraded shard lets one half-open probe through
    PROBE_INTERVAL_SECONDS = 2.0

    #: Retry-After carried by :class:`ShardUnavailableError`
    RETRY_AFTER_SECONDS = 2.0

    def __init__(
        self,
        root: Union[str, Path],
        n_shards: int,
        *,
        trip_threshold: Optional[int] = None,
        probe_interval_seconds: Optional[float] = None,
        retry_after_seconds: Optional[float] = None,
    ) -> None:
        if n_shards < 2:
            raise ServiceError(
                "ShardedJobStore requires n_shards >= 2; use "
                "open_job_store() for the single-store layout"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.n_shards = int(n_shards)
        self.trip_threshold = (
            self.TRIP_THRESHOLD if trip_threshold is None
            else int(trip_threshold)
        )
        self.probe_interval_seconds = (
            self.PROBE_INTERVAL_SECONDS if probe_interval_seconds is None
            else float(probe_interval_seconds)
        )
        self.retry_after_seconds = (
            self.RETRY_AFTER_SECONDS if retry_after_seconds is None
            else float(retry_after_seconds)
        )
        self._paths = [
            shard_db_path(self.root, i, self.n_shards)
            for i in range(self.n_shards)
        ]
        self._stores: List[Optional[JobStore]] = [None] * self.n_shards
        self._health = [
            _ShardHealth(i, self._paths[i]) for i in range(self.n_shards)
        ]
        self._lock = threading.Lock()
        self._journal_locks = [
            threading.Lock() for _ in range(self.n_shards)
        ]
        self._claim_rr = itertools.count()
        # Open every shard eagerly so schema migration and corruption
        # surface now — but a bad shard degrades instead of failing the
        # whole store (that is the point of the fault domains).
        for index in range(self.n_shards):
            try:
                self._call(index, None)
            except (sqlite3.OperationalError, JobStoreCorruptError):
                pass

    # -- breaker plumbing ----------------------------------------------

    def _record_failure(self, index: int, exc: Exception) -> None:
        health = self._health[index]
        corrupt = isinstance(exc, JobStoreCorruptError)
        with self._lock:
            health.consecutive_failures += 1
            health.last_error = f"{type(exc).__name__}: {exc}"
            if corrupt:
                # the cached connection-factory wraps a bad file; drop
                # it so a post-rebuild probe reopens from scratch
                self._stores[index] = None
            tripped = health.state != "degraded" and (
                corrupt
                or health.consecutive_failures >= self.trip_threshold
            )
            if tripped:
                health.state = "degraded"
                health.tripped_at = time.time()
                health.last_probe = health.tripped_at
        if tripped:
            logger.warning(
                "shard %d (%s) tripped to degraded: %s",
                index, self._paths[index], health.last_error,
            )
            get_metrics().counter(
                "service_shard_trips_total",
                help="shard circuit breakers tripped to degraded",
            ).inc()

    def _record_ok(self, index: int) -> None:
        health = self._health[index]
        with self._lock:
            recovered = health.state == "degraded"
            health.state = "healthy"
            health.consecutive_failures = 0
            health.tripped_at = None
            health.last_error = None
        if recovered:
            logger.info(
                "shard %d (%s) recovered; circuit closed",
                index, self._paths[index],
            )
            get_metrics().counter(
                "service_shard_recoveries_total",
                help="shard circuit breakers closed after recovery",
            ).inc()

    def _usable(self, index: int, now: Optional[float] = None) -> bool:
        """Healthy — or degraded with a half-open probe slot due."""
        health = self._health[index]
        with self._lock:
            if health.state == "healthy":
                return True
            now = time.time() if now is None else now
            if now - health.last_probe >= self.probe_interval_seconds:
                health.last_probe = now
                return True
            return False

    def _unavailable(self, index: int) -> ShardUnavailableError:
        health = self._health[index]
        detail = f" ({health.last_error})" if health.last_error else ""
        return ShardUnavailableError(
            f"shard {index} of {self.n_shards} is unavailable{detail}",
            shard=index,
            retry_after=self.retry_after_seconds,
        )

    def _check_seams(self, index: int) -> None:
        plan = active_fault_plan()
        if plan is None:
            return
        detail = f"{index}:{self._paths[index]}"
        if plan.should_fire("shard.unavailable", detail=detail):
            raise sqlite3.OperationalError(
                f"injected fault: shard {index} unavailable"
            )
        if plan.should_fire("shard.corrupt", detail=detail):
            raise JobStoreCorruptError(
                f"injected fault: shard {index} corrupt"
            )

    def _call(self, index: int, method: Optional[str], *args, **kwargs):
        """One guarded call into a shard; outcomes feed its breaker.

        ``method=None`` just opens the shard (startup / probe).
        """
        try:
            self._check_seams(index)
            with self._lock:
                store = self._stores[index]
            if store is None:
                store = JobStore(self._paths[index])
                with self._lock:
                    self._stores[index] = store
            result = (
                None if method is None
                else getattr(store, method)(*args, **kwargs)
            )
        except (sqlite3.OperationalError, JobStoreCorruptError) as exc:
            self._record_failure(index, exc)
            raise
        self._record_ok(index)
        return result

    def _scoped(self, index: int, method: str, *args, **kwargs):
        """A call with no surviving-shard fallback (key/id homed here).

        Raises :class:`ShardUnavailableError` when the shard's circuit
        is open (no probe due) or the call itself fails.
        """
        if not self._usable(index):
            raise self._unavailable(index)
        try:
            return self._call(index, method, *args, **kwargs)
        except (sqlite3.OperationalError, JobStoreCorruptError) as exc:
            raise self._unavailable(index) from exc

    def _each_usable(self) -> Iterator[int]:
        for index in range(self.n_shards):
            if self._usable(index):
                yield index

    # -- routing --------------------------------------------------------

    def shard_for(self, artifact_key: str) -> int:
        """Home shard index of one artifact key."""
        return shard_for_key(artifact_key, self.n_shards)

    def _route(self, job_id: str) -> int:
        """Home shard of a job id (tag parse, else probe the shards)."""
        match = _SHARD_ID_RE.match(job_id)
        if match:
            index = int(match.group(1))
            if 0 <= index < self.n_shards:
                return index
        for index in self._each_usable():
            try:
                self._call(index, "get", job_id)
                return index
            except JobNotFound:
                continue
            except (sqlite3.OperationalError, JobStoreCorruptError):
                continue
        raise JobNotFound(job_id)

    # -- intent journal -------------------------------------------------

    def _journal_append(self, index: int, record: Dict) -> None:
        line = json.dumps(record, sort_keys=True)
        with self._journal_locks[index]:
            with shard_journal_path(self.root, index).open("a") as fh:
                fh.write(line + "\n")

    # -- submission -----------------------------------------------------

    def submit(
        self,
        spec: JobSpec,
        artifact_key: str,
        now: Optional[float] = None,
    ) -> JobRecord:
        """Enqueue on the key's home shard (write-ahead journaled)."""
        index = self.shard_for(artifact_key)
        now = time.time() if now is None else now
        if not self._usable(index):
            raise self._unavailable(index)
        job_id = f"job-s{index:02d}-{uuid.uuid4().hex[:12]}"
        self._journal_append(index, {
            "op": "submit",
            "id": job_id,
            "artifact_key": artifact_key,
            "spec": spec.to_wire(),
            "max_attempts": spec.max_attempts,
            "created_at": now,
        })
        try:
            return self._call(
                index, "submit", spec, artifact_key,
                now=now, job_id=job_id,
            )
        except (sqlite3.OperationalError, JobStoreCorruptError) as exc:
            raise self._unavailable(index) from exc

    # -- scheduling -----------------------------------------------------

    def claim(
        self,
        worker: str,
        lease_seconds: float,
        now: Optional[float] = None,
        kind: str = "local",
    ) -> Optional[JobRecord]:
        """Claim from any reachable shard (rotating round-robin).

        Ordering is per-shard FIFO, not global — a claim drains the
        shards fairly rather than strictly oldest-first across them.
        Single-flight dedup still holds globally because twin keys
        always hash onto the same shard.  Raises
        ``sqlite3.OperationalError`` only when *no* shard is
        reachable (every circuit open), which callers already treat
        as store pressure.
        """
        now = time.time() if now is None else now
        start = next(self._claim_rr)
        reached = 0
        for offset in range(self.n_shards):
            index = (start + offset) % self.n_shards
            if not self._usable(index, now):
                continue
            try:
                job = self._call(
                    index, "claim", worker, lease_seconds,
                    now=now, kind=kind,
                )
            except (sqlite3.OperationalError, JobStoreCorruptError):
                continue
            reached += 1
            if job is not None:
                return job
        if reached == 0:
            raise sqlite3.OperationalError(
                f"all {self.n_shards} job-store shards are unavailable"
            )
        return None

    def heartbeat(
        self,
        job_id: str,
        lease_seconds: float,
        now: Optional[float] = None,
    ) -> None:
        """Renew a running job's lease on its home shard."""
        self._scoped(
            self._route(job_id), "heartbeat", job_id, lease_seconds,
            now=now,
        )

    def recover_orphans(
        self,
        now: Optional[float] = None,
        quarantine_after: Optional[int] = None,
    ) -> List[str]:
        """Requeue expired leases on every reachable shard."""
        recovered: List[str] = []
        for index in self._each_usable():
            try:
                recovered.extend(self._call(
                    index, "recover_orphans", now=now,
                    quarantine_after=quarantine_after,
                ))
            except (sqlite3.OperationalError, JobStoreCorruptError):
                continue
        return recovered

    def release_worker(
        self,
        worker: str,
        now: Optional[float] = None,
        quarantine_after: Optional[int] = None,
    ) -> List[str]:
        """Release a dead worker's jobs on every reachable shard."""
        released: List[str] = []
        for index in self._each_usable():
            try:
                released.extend(self._call(
                    index, "release_worker", worker, now=now,
                    quarantine_after=quarantine_after,
                ))
            except (sqlite3.OperationalError, JobStoreCorruptError):
                continue
        return released

    def note_worker_failure(
        self, job_id: str, worker: Optional[str]
    ) -> Tuple[str, ...]:
        """Record a failed attempt on the job's home shard."""
        return self._scoped(
            self._route(job_id), "note_worker_failure", job_id, worker
        )

    # -- completion -----------------------------------------------------

    def complete(
        self,
        job_id: str,
        *,
        med: Optional[float] = None,
        runtime_seconds: Optional[float] = None,
        cache_hit: bool = False,
        now: Optional[float] = None,
    ) -> None:
        """Mark done on the home shard; journal the outcome."""
        now = time.time() if now is None else now
        index = self._route(job_id)
        self._scoped(
            index, "complete", job_id, med=med,
            runtime_seconds=runtime_seconds, cache_hit=cache_hit,
            now=now,
        )
        self._journal_append(index, {
            "op": "done",
            "id": job_id,
            "med": med,
            "runtime_seconds": runtime_seconds,
            "cache_hit": cache_hit,
            "finished_at": now,
        })

    def retry(self, job_id: str, error: str, not_before: float) -> None:
        """Requeue a failed attempt on the home shard (not journaled —
        non-terminal; a rebuild requeues journal-only jobs anyway).
        """
        self._scoped(
            self._route(job_id), "retry", job_id, error, not_before
        )

    def fail(
        self, job_id: str, error: str, now: Optional[float] = None
    ) -> None:
        """Permanently fail on the home shard; journal the outcome."""
        now = time.time() if now is None else now
        index = self._route(job_id)
        self._scoped(index, "fail", job_id, error, now=now)
        self._journal_append(index, {
            "op": "failed", "id": job_id, "error": error,
            "finished_at": now,
        })

    def quarantine(
        self, job_id: str, error: str, now: Optional[float] = None
    ) -> None:
        """Park a poison job on the home shard; journal the outcome."""
        now = time.time() if now is None else now
        index = self._route(job_id)
        self._scoped(index, "quarantine", job_id, error, now=now)
        self._journal_append(index, {
            "op": "quarantined", "id": job_id, "error": error,
            "finished_at": now,
        })

    # -- inspection -----------------------------------------------------

    def get(self, job_id: str) -> JobRecord:
        """Fetch one job from its home shard."""
        match = _SHARD_ID_RE.match(job_id)
        if match and 0 <= int(match.group(1)) < self.n_shards:
            return self._scoped(int(match.group(1)), "get", job_id)
        for index in self._each_usable():
            try:
                return self._call(index, "get", job_id)
            except JobNotFound:
                continue
            except (sqlite3.OperationalError, JobStoreCorruptError):
                continue
        raise JobNotFound(job_id)

    def list_jobs(self, state: Optional[str] = None) -> List[JobRecord]:
        """All jobs on reachable shards, oldest first."""
        records, _ = self.page_jobs(state=state)
        return records

    @staticmethod
    def _encode_cursor(record: JobRecord) -> str:
        # created_at rides in the cursor as IEEE-754 bits (hex) so any
        # shard can continue from the same global keyset position even
        # when the anchor row's home shard is degraded or rebuilt —
        # pagination never needs to resolve the cursor id
        bits = struct.unpack("<Q", struct.pack("<d", record.created_at))[0]
        return f"{bits:016x}.{record.id}"

    def _decode_cursor(self, cursor: str) -> Tuple[float, str]:
        head, sep, job_id = cursor.partition(".")
        if sep and len(head) == 16:
            try:
                bits = int(head, 16)
            except ValueError:
                bits = None
            if bits is not None:
                created_at = struct.unpack(
                    "<d", struct.pack("<Q", bits)
                )[0]
                return created_at, job_id
        # a plain job-id cursor (pre-sharding client); resolve it
        try:
            record = self.get(cursor)
        except JobNotFound:
            raise ServiceError(
                f"unknown pagination cursor {cursor!r}"
            ) from None
        return record.created_at, record.id

    def page_jobs(
        self,
        state: Optional[str] = None,
        limit: Optional[int] = None,
        cursor: Optional[str] = None,
    ) -> Tuple[List[JobRecord], Optional[str]]:
        """One globally-ordered page via cross-shard keyset merge.

        Each reachable shard is asked for its rows strictly after the
        cursor's ``(created_at, id)`` anchor and the streams are
        merged; the returned cursor embeds the anchor itself, so the
        walk stays stable — no skips, no repeats over surviving
        shards — even while a shard is degraded or comes back.
        """
        if state is not None and state not in JOB_STATES:
            raise ServiceError(
                f"unknown job state {state!r}; states: {JOB_STATES}"
            )
        if limit is not None and limit <= 0:
            raise ServiceError(
                f"limit must be a positive integer, got {limit!r}"
            )
        after = (
            self._decode_cursor(cursor) if cursor is not None else None
        )
        per_shard = None if limit is None else limit + 1
        merged: List[JobRecord] = []
        for index in self._each_usable():
            try:
                records, _ = self._call(
                    index, "page_jobs", state=state, limit=per_shard,
                    after=after,
                )
            except (sqlite3.OperationalError, JobStoreCorruptError):
                continue
            merged.extend(records)
        merged.sort(key=lambda record: (record.created_at, record.id))
        if limit is None or len(merged) <= limit:
            return merged, None
        merged = merged[:limit]
        return merged, self._encode_cursor(merged[-1])

    def find_by_key(
        self,
        artifact_key: str,
        states: Optional[Sequence[str]] = None,
    ) -> List[JobRecord]:
        """All jobs with this key — they live on exactly one shard."""
        return self._scoped(
            self.shard_for(artifact_key), "find_by_key",
            artifact_key, states,
        )

    def counts(self) -> Dict[str, int]:
        """Jobs per state summed over reachable shards."""
        totals = {job_state: 0 for job_state in JOB_STATES}
        for index in self._each_usable():
            try:
                shard_counts = self._call(index, "counts")
            except (sqlite3.OperationalError, JobStoreCorruptError):
                continue
            for job_state, count in shard_counts.items():
                totals[job_state] += count
        return totals

    def pending(self) -> int:
        """Queued + running over reachable shards."""
        counts = self.counts()
        return counts["queued"] + counts["running"]

    # -- worker registry ------------------------------------------------

    def list_workers(self) -> List[WorkerRecord]:
        """The fleet merged across reachable shards.

        A worker claiming from several shards has a registry row on
        each; the merged view keeps the earliest ``first_seen``, the
        freshest heartbeat, the summed counters, and the current job
        from whichever row holds a live lease.
        """
        merged: Dict[str, WorkerRecord] = {}
        for index in self._each_usable():
            try:
                workers = self._call(index, "list_workers")
            except (sqlite3.OperationalError, JobStoreCorruptError):
                continue
            for worker in workers:
                prior = merged.get(worker.id)
                if prior is None:
                    merged[worker.id] = worker
                    continue
                newest = (
                    worker
                    if worker.last_heartbeat >= prior.last_heartbeat
                    else prior
                )
                current = next(
                    (
                        w for w in (newest, worker, prior)
                        if w.current_job is not None
                    ),
                    newest,
                )
                merged[worker.id] = WorkerRecord(
                    id=worker.id,
                    kind=newest.kind,
                    first_seen=min(worker.first_seen, prior.first_seen),
                    last_heartbeat=max(
                        worker.last_heartbeat, prior.last_heartbeat
                    ),
                    current_job=current.current_job,
                    jobs_completed=(
                        worker.jobs_completed + prior.jobs_completed
                    ),
                    jobs_failed=worker.jobs_failed + prior.jobs_failed,
                    lease_expires=current.lease_expires,
                )
        return sorted(
            merged.values(), key=lambda w: (w.first_seen, w.id)
        )

    def prune_workers(
        self, idle_seconds: float, now: Optional[float] = None
    ) -> int:
        """Prune idle registry rows on every reachable shard."""
        pruned = 0
        for index in self._each_usable():
            try:
                pruned += self._call(
                    index, "prune_workers", idle_seconds, now=now
                )
            except (sqlite3.OperationalError, JobStoreCorruptError):
                continue
        return pruned

    # -- health surface -------------------------------------------------

    def shard_states(self) -> List[Dict]:
        """Breaker snapshot of every shard (healthz / metrics feed)."""
        with self._lock:
            return [health.to_dict() for health in self._health]

    def degraded_shards(self) -> List[int]:
        """Indices of shards whose circuit is currently open."""
        with self._lock:
            return [
                health.index for health in self._health
                if health.state == "degraded"
            ]

    def reset_shard(self, index: int) -> None:
        """Forget a shard's breaker state and cached handle.

        ``repro admin rebuild`` calls this (via a fresh store) — and a
        long-running service does it implicitly through the half-open
        probe once the rebuilt file answers again.
        """
        if not 0 <= index < self.n_shards:
            raise ServiceError(
                f"shard index {index} out of range 0..{self.n_shards - 1}"
            )
        health = self._health[index]
        with self._lock:
            self._stores[index] = None
            health.state = "healthy"
            health.consecutive_failures = 0
            health.tripped_at = None
            health.last_error = None
            health.last_probe = 0.0


# -- scrub / rebuild ----------------------------------------------------

def scrub_store(
    root: Union[str, Path], shards: Optional[int] = None
) -> Dict:
    """Read-only integrity audit of a service directory.

    Per shard: ``PRAGMA quick_check`` (via a fresh :class:`JobStore`
    open), a journal↔database cross-check (every journaled submit has
    a row), and a done-job↔artifact cross-check (every done row's
    artifact actually exists in the content-addressed store).
    Returns a report dict; ``report["ok"]`` is the overall verdict.
    """
    root = Path(root)
    n_shards = resolve_n_shards(root, shards)
    artifact_keys = set(ArtifactStore(root / "artifacts").keys())
    report: Dict = {"n_shards": n_shards, "ok": True, "shards": []}
    for index in range(n_shards):
        path = shard_db_path(root, index, n_shards)
        journal = (
            shard_journal_path(root, index) if n_shards > 1 else None
        )
        entry: Dict = {
            "index": index,
            "path": str(path),
            "ok": True,
            "jobs": None,
            "findings": [],
        }
        journaled = (
            list(read_journal(journal)) if journal is not None else []
        )
        if not path.exists():
            if journaled:
                entry["findings"].append(
                    "database file missing but journal has "
                    f"{len(journaled)} record(s) — run "
                    f"`repro admin rebuild --shard {index}`"
                )
        else:
            try:
                store = JobStore(path)
                jobs = store.list_jobs()
            except (JobStoreCorruptError, sqlite3.Error) as exc:
                entry["findings"].append(f"integrity: {exc}")
                jobs = None
            if jobs is not None:
                entry["jobs"] = len(jobs)
                present = {job.id for job in jobs}
                missing = [
                    record["id"] for record in journaled
                    if record.get("op") == "submit"
                    and record.get("id")
                    and record["id"] not in present
                ]
                if missing:
                    entry["findings"].append(
                        f"{len(missing)} journaled submit(s) missing "
                        "from the database (first: "
                        f"{missing[0]})"
                    )
                orphaned = [
                    job.id for job in jobs
                    if job.state == "done"
                    and job.artifact_key not in artifact_keys
                ]
                if orphaned:
                    entry["findings"].append(
                        f"{len(orphaned)} done job(s) whose artifact "
                        f"is missing from the store (first: "
                        f"{orphaned[0]})"
                    )
        if entry["findings"]:
            entry["ok"] = False
            report["ok"] = False
        report["shards"].append(entry)
    return report


def rebuild_shard(
    root: Union[str, Path],
    index: int,
    shards: Optional[int] = None,
) -> Dict:
    """Reconstruct one lost/corrupt shard from journal + artifacts.

    The damaged database file (if any) is moved aside to
    ``<name>.corrupt`` and a fresh shard is built by replaying the
    intent journal: journaled terminal outcomes are restored verbatim;
    journaled submits whose artifact already exists in the
    content-addressed store resolve as cache-hit ``done``; everything
    else is requeued with a fresh attempt budget (the decomposition is
    deterministic, so re-execution reproduces byte-identical
    artifacts).  Restores are idempotent per job id, so rebuilding a
    healthy shard is a no-op-shaped audit.
    """
    root = Path(root)
    n_shards = resolve_n_shards(root, shards)
    if n_shards < 2:
        raise ServiceError(
            "rebuild requires a sharded layout (n_shards >= 2); the "
            "single store has no per-shard journal to replay"
        )
    if not 0 <= index < n_shards:
        raise ServiceError(
            f"shard index {index} out of range 0..{n_shards - 1}"
        )
    path = shard_db_path(root, index, n_shards)
    report: Dict = {
        "shard": index,
        "path": str(path),
        "backed_up": None,
        "restored": 0,
        "requeued": 0,
        "done_from_artifact": 0,
        "terminal_from_journal": 0,
    }
    if path.exists():
        backup = path.with_name(path.name + ".corrupt")
        os.replace(path, backup)
        report["backed_up"] = str(backup)
    for suffix in ("-wal", "-shm"):
        sidecar = Path(str(path) + suffix)
        if sidecar.exists():
            sidecar.unlink()
    store = JobStore(path)
    submits: Dict[str, Dict] = {}
    terminals: Dict[str, Dict] = {}
    for record in read_journal(shard_journal_path(root, index)):
        op = record.get("op")
        job_id = record.get("id")
        if not job_id:
            continue
        if op == "submit":
            submits.setdefault(job_id, record)
        elif op in _TERMINAL_OPS:
            terminals[job_id] = record
    artifact_keys = set(ArtifactStore(root / "artifacts").keys())
    for job_id, sub in submits.items():
        base = dict(
            job_id=job_id,
            artifact_key=sub.get("artifact_key", ""),
            spec_wire=sub.get("spec", {}),
            max_attempts=int(sub.get("max_attempts", 1)),
            created_at=float(sub.get("created_at", 0.0)),
        )
        terminal = terminals.get(job_id)
        if terminal is not None:
            store.restore_job(
                state=_TERMINAL_OPS[terminal["op"]],
                attempts=1,
                error=terminal.get("error"),
                med=terminal.get("med"),
                runtime_seconds=terminal.get("runtime_seconds"),
                cache_hit=bool(terminal.get("cache_hit", False)),
                finished_at=terminal.get("finished_at"),
                **base,
            )
            report["terminal_from_journal"] += 1
        elif base["artifact_key"] in artifact_keys:
            # the solve happened — only the `done` row died with the
            # shard; resolve it from the content-addressed cache
            store.restore_job(
                state="done", attempts=1, cache_hit=True, **base
            )
            report["done_from_artifact"] += 1
        else:
            store.restore_job(state="queued", **base)
            report["requeued"] += 1
        report["restored"] += 1
    logger.info(
        "rebuilt shard %d: %d job(s) restored (%d requeued, %d done "
        "from artifacts, %d terminal from journal)",
        index, report["restored"], report["requeued"],
        report["done_from_artifact"], report["terminal_from_journal"],
    )
    return report
