"""Process-isolated worker supervision: restart, release, hang-kill.

The thread-based :class:`~repro.service.worker.WorkerPool` cannot
survive a worker that takes the *process* down (a segfaulting kernel, an
``os._exit``, the OOM killer) — and a worker stuck in a non-Python hang
never reaches the cooperative cancellation hook.  The
:class:`WorkerSupervisor` runs each worker as a child **process** and
closes both gaps:

* **Crash restart.**  A child observed dead has its running job released
  immediately (:meth:`~repro.service.scheduler.Scheduler.release_worker`
  — no waiting out the lease) and is replaced by a fresh child of the
  next *generation*.  Generations are part of the worker name
  (``<name>-p<idx>-g<gen>``), so a poison job that kills every
  replacement accumulates *distinct* worker names and trips the
  scheduler's quarantine threshold instead of cycling forever.
* **Hang detection.**  Before each orphan-recovery sweep the supervisor
  looks for running jobs whose lease has expired while their worker
  process is still alive — the signature of a hang (a crashed process
  would have been reaped already).  Such children are killed, then the
  normal release path requeues or quarantines their jobs.
* **Restart budget.**  ``max_restarts`` bounds total replacements; once
  spent, dead workers stay dead and :meth:`run_until_drained` raises
  rather than spinning on a queue nobody serves.

Everything durable stays in the job store — the supervisor holds only
process handles, so a supervisor crash degrades to the plain lease
mechanism.

An installed :class:`~repro.resilience.FaultPlan` is forwarded into
children via its picklable spec and re-installed there (counters reset
per process); ``worker.die`` plans are only meaningful under this
supervisor, where ``os._exit`` kills a child instead of the host.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import ServiceError
from repro.obs.logconfig import get_logger
from repro.obs.metrics import get_metrics
from repro.resilience import (
    FaultPlan,
    active_fault_plan,
    install_fault_plan,
)
from repro.service.artifacts import ArtifactStore
from repro.service.shards import open_job_store
from repro.service.scheduler import Scheduler, SchedulerPolicy
from repro.service.worker import (
    DEFAULT_CHECKPOINT_EVERY,
    JobExecutor,
    WorkerPool,
)

logger = get_logger("repro.service.supervisor")

__all__ = ["WorkerSupervisor", "worker_process_main"]


def worker_process_main(
    root: str,
    policy_dict: Dict,
    name: str,
    fault_spec: Optional[Dict],
    checkpoint_every: Optional[int],
    drain: bool,
) -> None:
    """Entry point of one supervised worker process.

    Module-level so every multiprocessing start method can pickle it.
    Rebuilds the full service stack from the on-disk service directory
    — children share nothing with the parent but the files.
    """
    if fault_spec is not None:
        install_fault_plan(FaultPlan.from_spec(fault_spec))
    root_path = Path(root)
    # discovers the shard layout from the manifest, so supervised
    # children of a `serve --shards N` parent open the same N stores
    store = open_job_store(root_path)
    artifacts = ArtifactStore(root_path / "artifacts")
    scheduler = Scheduler(store, SchedulerPolicy(**policy_dict))
    executor = JobExecutor(artifacts, checkpoint_every=checkpoint_every)
    pool = WorkerPool(scheduler, executor, n_workers=1, name=name)
    if drain:
        pool.run_until_drained()
    else:
        pool.start()
        pool.wait()


class WorkerSupervisor:
    """Run ``n_workers`` worker *processes* over a service directory."""

    def __init__(
        self,
        root: Union[str, Path],
        n_workers: int = 1,
        policy: Optional[SchedulerPolicy] = None,
        checkpoint_every: Optional[int] = DEFAULT_CHECKPOINT_EVERY,
        max_restarts: int = 5,
        name: str = "sup",
        poll_interval_seconds: float = 0.1,
        start_method: Optional[str] = None,
    ) -> None:
        if n_workers <= 0:
            raise ServiceError(
                f"n_workers must be positive, got {n_workers}"
            )
        if max_restarts < 0:
            raise ServiceError(
                f"max_restarts must be >= 0, got {max_restarts}"
            )
        self.root = Path(root)
        self.policy = policy if policy is not None else SchedulerPolicy()
        self.scheduler = Scheduler(
            open_job_store(self.root), self.policy
        )
        self.n_workers = n_workers
        self.checkpoint_every = checkpoint_every
        self.max_restarts = max_restarts
        self.name = name
        self.poll_interval_seconds = poll_interval_seconds
        self._ctx = multiprocessing.get_context(start_method)
        self._children: List = [None] * n_workers
        self._generations = [0] * n_workers
        self.restarts_used = 0
        # snapshot the parent's fault plan once so children of every
        # start method (fork or spawn) see the same schedule
        plan = active_fault_plan()
        self._fault_spec = plan.to_spec() if plan is not None else None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- naming --------------------------------------------------------

    def _child_name(self, index: int) -> str:
        return f"{self.name}-p{index}-g{self._generations[index]}"

    @staticmethod
    def _claim_name(child_name: str) -> str:
        # the single-threaded pool inside the child appends -worker-0
        return f"{child_name}-worker-0"

    def worker_names(self) -> List[str]:
        """The store-visible worker names of the current generation."""
        return [
            self._claim_name(self._child_name(index))
            for index in range(self.n_workers)
        ]

    # -- child lifecycle -----------------------------------------------

    def _start_child(self, index: int, drain: bool) -> None:
        child_name = self._child_name(index)
        process = self._ctx.Process(
            target=worker_process_main,
            args=(
                str(self.root),
                asdict(self.policy),
                child_name,
                self._fault_spec,
                self.checkpoint_every,
                drain,
            ),
            name=child_name,
            daemon=True,
        )
        process.start()
        self._children[index] = process
        logger.info(
            "started worker process %s (pid %d)", child_name, process.pid
        )

    def _kill_child(self, index: int) -> None:
        process = self._children[index]
        if process is None or not process.is_alive():
            return
        process.terminate()
        process.join(5.0)
        if process.is_alive():
            process.kill()
            process.join(5.0)

    def _kill_hung_children(self, now: float) -> List[str]:
        """Kill children whose claimed job outlived its lease.

        Must run *before* orphan recovery in the same sweep: recovery
        clears the expired rows that identify which worker is hung.  A
        dead-but-unreaped child is left alone here — :meth:`_reap`
        handles it on the same sweep.
        """
        expired_workers = {
            record.worker
            for record in self.scheduler.store.list_jobs("running")
            if record.worker
            and record.lease_expires is not None
            and record.lease_expires < now
        }
        if not expired_workers:
            return []
        killed = []
        for index, process in enumerate(self._children):
            if process is None or not process.is_alive():
                continue
            claim_name = self._claim_name(self._child_name(index))
            if claim_name in expired_workers:
                logger.warning(
                    "worker %s is hung (lease expired, process alive); "
                    "killing pid %d",
                    claim_name, process.pid,
                )
                self._kill_child(index)
                killed.append(claim_name)
                get_metrics().counter(
                    "service_hung_workers_killed_total",
                    help="worker processes killed on missed heartbeats",
                ).inc()
        return killed

    def _reap(self, drain: bool) -> None:
        """Release dead children's jobs; restart within the budget.

        A drain-mode child exiting cleanly (code 0) has emptied the
        queue — it is not replaced.  Everything else (crash, injected
        ``worker.die``, hang-kill) is.
        """
        for index, process in enumerate(self._children):
            if process is None or process.is_alive():
                continue
            process.join()
            clean_exit = process.exitcode == 0
            child_name = self._child_name(index)
            self._children[index] = None
            self.scheduler.release_worker(self._claim_name(child_name))
            if clean_exit and drain:
                continue
            if not clean_exit:
                logger.warning(
                    "worker process %s died (exit code %s)",
                    child_name, process.exitcode,
                )
            if self.restarts_used >= self.max_restarts:
                logger.error(
                    "worker %s not replaced: restart budget (%d) spent",
                    child_name, self.max_restarts,
                )
                continue
            self.restarts_used += 1
            self._generations[index] += 1
            get_metrics().counter(
                "service_worker_restarts_total",
                help="supervised worker processes restarted after death",
            ).inc()
            self._start_child(index, drain)

    def _alive_count(self) -> int:
        return sum(
            1 for process in self._children
            if process is not None and process.is_alive()
        )

    def _sweep(self, drain: bool) -> None:
        now = time.time()
        self._kill_hung_children(now)
        self.scheduler.recover_orphans(now=now)
        self._reap(drain)

    # -- serving -------------------------------------------------------

    def run_until_drained(self, timeout: Optional[float] = None) -> None:
        """Serve with supervised processes until the queue is empty.

        Raises :class:`~repro.errors.ServiceError` if every worker is
        dead, the restart budget is spent, and jobs are still pending —
        silently returning would misreport an unserved queue as
        drained.  On ``timeout`` the children are torn down and the
        queue is left as-is (the durable store makes that safe).
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        self.scheduler.recover_orphans()
        for index in range(self.n_workers):
            self._start_child(index, drain=True)
        try:
            while True:
                self._sweep(drain=True)
                pending = self.scheduler.store.pending()
                if pending == 0 and self._alive_count() == 0:
                    return
                if pending > 0 and self._alive_count() == 0:
                    raise ServiceError(
                        f"{pending} job(s) pending but every worker is "
                        f"dead and the restart budget "
                        f"({self.max_restarts}) is spent"
                    )
                if (
                    deadline is not None
                    and time.monotonic() > deadline
                ):
                    logger.warning(
                        "drain timed out with %d job(s) pending", pending
                    )
                    return
                time.sleep(self.poll_interval_seconds)
        finally:
            for index in range(self.n_workers):
                self._kill_child(index)
                self._children[index] = None

    def start(self) -> None:
        """Start serving forever in the background (see :meth:`stop`)."""
        if self._thread is not None:
            raise RuntimeError("supervisor already running")
        self._stop.clear()
        self.scheduler.recover_orphans()
        for index in range(self.n_workers):
            self._start_child(index, drain=False)
        self._thread = threading.Thread(
            target=self._supervise_forever,
            name=f"{self.name}-supervisor",
            daemon=True,
        )
        self._thread.start()

    def _supervise_forever(self) -> None:
        while not self._stop.is_set():
            self._sweep(drain=False)
            self._stop.wait(self.poll_interval_seconds)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until :meth:`stop` is requested (or ``timeout``)."""
        return self._stop.wait(timeout)

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        """Tear down the supervision loop and every worker process."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        for index in range(self.n_workers):
            self._kill_child(index)
            self._children[index] = None
