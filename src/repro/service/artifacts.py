"""Content-addressed, on-disk store of finished decomposition designs.

Artifacts are keyed by :func:`repro.service.spec.artifact_key` — a
SHA-256 over (truth table bits, input distribution, semantic framework
config) — and stored as one JSON envelope per key:

.. code-block:: json

    {
      "format": "repro-artifact",
      "schema_version": 1,
      "key": "<sha256 hex>",
      "design": { ... repro.serialization design document ... },
      "meta": {"med": 2.51, "runtime_seconds": 1.2, "n_cop_solves": 120}
    }

The ``design`` member is exactly a :mod:`repro.serialization` document,
so a fetched artifact round-trips through ``design_from_dict`` /
``load_design`` and the existing ``evaluate`` / ``export-verilog``
tooling unchanged.

Writes are atomic (temp file + ``os.replace``) and *idempotent by
construction*: two workers racing on the same key write byte-identical
design payloads (content addressing guarantees the result is determined
by the key), so the last rename simply wins.  Keys are fanned out into
256 two-hex-character subdirectories to keep directory listings flat
under production volumes.

Checkpoints
-----------
The store also hosts *in-progress* job checkpoints
(:class:`repro.core.checkpoint.DecomposeCheckpoint` payloads) under the
reserved ``_checkpoints/`` area — same sharding, same atomic writes,
but deliberately outside :meth:`keys`/:meth:`stats` (underscore-prefixed
shard directories are skipped): a checkpoint is scratch state of one
job, not a finished content-addressed design.  Workers write one per
artifact key, delete it on success, and leave it behind on failure so
the retrying worker resumes instead of restarting.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from repro._version import package_version
from repro.errors import ServiceError
from repro.lut.cascade import LutCascadeDesign
from repro.serialization import (
    SerializationError,
    design_from_dict,
    result_to_dict,
)

__all__ = ["ArtifactStore", "ARTIFACT_SCHEMA_VERSION"]

ARTIFACT_SCHEMA_VERSION = 1
_FORMAT = "repro-artifact"


class ArtifactStore:
    """Directory-backed artifact cache; safe for concurrent writers."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """Where the envelope for ``key`` lives (may not exist yet)."""
        if len(key) < 3:
            raise ServiceError(f"implausible artifact key {key!r}")
        return self.root / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def get(self, key: str) -> Optional[Dict]:
        """The stored envelope for ``key``, or ``None`` on a miss."""
        path = self.path_for(key)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except json.JSONDecodeError as exc:
            raise SerializationError(
                f"corrupt artifact {path}: {exc}"
            ) from exc
        if data.get("format") != _FORMAT:
            raise SerializationError(
                f"{path} is not a {_FORMAT} envelope "
                f"(format={data.get('format')!r})"
            )
        if data.get("schema_version") != ARTIFACT_SCHEMA_VERSION:
            raise SerializationError(
                f"{path}: unsupported artifact schema_version "
                f"{data.get('schema_version')!r}"
            )
        return data

    def load_design(self, key: str) -> LutCascadeDesign:
        """Rebuild the cached design for ``key`` (must exist)."""
        envelope = self.get(key)
        if envelope is None:
            raise ServiceError(f"no artifact stored under key {key}")
        return design_from_dict(envelope["design"])

    def put(self, key: str, result, meta: Optional[Dict] = None) -> Dict:
        """Persist a decomposition ``result`` under ``key``; returns the
        envelope.  ``result`` may be a framework result object or an
        already-serialized design dict.
        """
        design = result if isinstance(result, dict) else (
            result_to_dict(result)
        )
        envelope = {
            "format": _FORMAT,
            "schema_version": ARTIFACT_SCHEMA_VERSION,
            "repro_version": package_version(),
            "key": key,
            "created_at": time.time(),
            "design": design,
            "meta": dict(meta or {}),
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(envelope, indent=2, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except FileNotFoundError:
                pass
            raise
        return envelope

    # -- job checkpoints (reserved ``_checkpoints/`` area) -------------

    def checkpoint_path(self, key: str) -> Path:
        """Where the in-progress checkpoint for ``key`` lives."""
        if len(key) < 3:
            raise ServiceError(f"implausible artifact key {key!r}")
        return self.root / "_checkpoints" / key[:2] / f"{key}.json"

    def put_checkpoint(self, key: str, payload: Dict) -> Path:
        """Atomically persist a checkpoint payload for ``key``."""
        path = self.checkpoint_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = json.dumps(payload, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(body)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except FileNotFoundError:
                pass
            raise
        return path

    def get_checkpoint(self, key: str) -> Optional[Dict]:
        """The stored checkpoint payload for ``key``, or ``None``.

        A checkpoint that cannot be parsed is treated as absent (and
        removed): a torn write must degrade to restart-from-scratch,
        never block the retry.
        """
        path = self.checkpoint_path(key)
        try:
            return json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except json.JSONDecodeError:
            try:
                path.unlink()
            except FileNotFoundError:
                pass
            return None

    def delete_checkpoint(self, key: str) -> bool:
        """Remove ``key``'s checkpoint (True if one existed)."""
        try:
            self.checkpoint_path(key).unlink()
            return True
        except FileNotFoundError:
            return False

    # ------------------------------------------------------------------

    def keys(self) -> Iterator[str]:
        """All stored artifact keys (checkpoint scratch excluded)."""
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir() or shard.name.startswith("_"):
                continue
            for entry in sorted(shard.glob("*.json")):
                yield entry.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def stats(self) -> Dict:
        """Aggregate store statistics for telemetry."""
        n, total_bytes = 0, 0
        for shard in self.root.iterdir():
            if not shard.is_dir() or shard.name.startswith("_"):
                continue
            for entry in shard.glob("*.json"):
                n += 1
                total_bytes += entry.stat().st_size
        return {"n_artifacts": n, "total_bytes": total_bytes}
