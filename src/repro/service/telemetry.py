"""Service telemetry: a structured summary derived from durable state.

Telemetry is *computed*, not accumulated: everything is derived from the
job store rows and the artifact directory on demand.  That makes the
numbers correct across processes (``repro status`` sees exactly what
``repro serve`` produced, even after a crash) and means there is no
second, driftable source of truth to keep consistent.

The summary layout (all times in seconds)::

    {
      "jobs": {"queued": 0, "running": 1, "done": 7, "failed": 0,
               "quarantined": 0, "total": 8},
      "cache": {"hits": 3, "misses": 4, "hit_rate": 0.4286,
                "n_artifacts": 4, "total_bytes": 51234},
      "retries": {"total": 2, "jobs_retried": 1, "max_attempts_seen": 3},
      "timing": {"solve_seconds_total": ..., "solve_seconds_mean": ...,
                 "solve_seconds_max": ..., "wall_seconds": ...,
                 "jobs_per_second": ...},
      "queue": {"depth": 0, "oldest_waiting_seconds": null}
    }
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

from repro.obs.exporters import prometheus_text
from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.service.artifacts import ArtifactStore
from repro.service.jobstore import (
    JOB_STATES,
    JobRecord,
    JobStore,
    WorkerRecord,
)

__all__ = [
    "service_summary",
    "format_job_table",
    "format_worker_table",
    "prometheus_exposition",
    "LIVE_WORKER_SECONDS",
]

#: a worker whose last heartbeat is older than this is shown as stale
LIVE_WORKER_SECONDS = 60.0


def _round(value: Optional[float], digits: int = 4) -> Optional[float]:
    return None if value is None else round(float(value), digits)


def service_summary(
    store: JobStore,
    artifacts: Optional[ArtifactStore] = None,
    now: Optional[float] = None,
) -> Dict:
    """Build the structured telemetry summary (see module docs)."""
    now = time.time() if now is None else now
    jobs = store.list_jobs()
    counts = {state: 0 for state in JOB_STATES}
    for job in jobs:
        counts[job.state] += 1
    done = [job for job in jobs if job.state == "done"]
    hits = sum(1 for job in done if job.cache_hit)
    solved = [
        job.runtime_seconds
        for job in done
        if not job.cache_hit and job.runtime_seconds is not None
    ]
    retries_per_job = [job.retries for job in jobs]
    finished = [job for job in jobs if job.finished_at is not None]
    first_start = min(
        (job.started_at for job in jobs if job.started_at is not None),
        default=None,
    )
    last_finish = max(
        (job.finished_at for job in finished), default=None
    )
    wall = (
        None
        if first_start is None or last_finish is None
        else max(0.0, last_finish - first_start)
    )
    waiting = [
        now - job.created_at for job in jobs if job.state == "queued"
    ]
    summary = {
        "jobs": {**counts, "total": len(jobs)},
        "cache": {
            "hits": hits,
            "misses": len(done) - hits,
            "hit_rate": _round(hits / len(done)) if done else None,
        },
        "retries": {
            "total": sum(retries_per_job),
            "jobs_retried": sum(1 for r in retries_per_job if r > 0),
            "max_attempts_seen": max(
                (job.attempts for job in jobs), default=0
            ),
        },
        "timing": {
            "solve_seconds_total": _round(sum(solved)) if solved else None,
            "solve_seconds_mean": (
                _round(sum(solved) / len(solved)) if solved else None
            ),
            "solve_seconds_max": _round(max(solved)) if solved else None,
            "wall_seconds": _round(wall),
            "jobs_per_second": (
                _round(len(finished) / wall) if wall else None
            ),
        },
        "queue": {
            "depth": counts["queued"] + counts["running"],
            "oldest_waiting_seconds": (
                _round(max(waiting)) if waiting else None
            ),
        },
        "fleet": _fleet_summary(store.list_workers(), now=now),
    }
    if artifacts is not None:
        summary["cache"].update(artifacts.stats())
    shard_states = getattr(store, "shard_states", None)
    if callable(shard_states):
        states = shard_states()
        summary["shards"] = {
            "total": len(states),
            "degraded": [
                state["index"] for state in states
                if state["state"] != "healthy"
            ],
            "states": states,
        }
    return summary


def _fleet_summary(workers: Sequence[WorkerRecord], now: float) -> Dict:
    """Worker-registry rollup for :func:`service_summary`."""
    ages = [max(0.0, now - w.last_heartbeat) for w in workers]
    return {
        "workers": len(workers),
        "live": sum(1 for age in ages if age <= LIVE_WORKER_SECONDS),
        "busy": sum(1 for w in workers if w.current_job is not None),
        "remote": sum(1 for w in workers if w.kind == "remote"),
        "jobs_completed": sum(w.jobs_completed for w in workers),
        "jobs_failed": sum(w.jobs_failed for w in workers),
        "max_heartbeat_age_seconds": (
            _round(max(ages)) if ages else None
        ),
    }


def prometheus_exposition(
    store: JobStore,
    artifacts: Optional[ArtifactStore] = None,
    now: Optional[float] = None,
    registry: Optional[MetricsRegistry] = None,
) -> str:
    """Prometheus text exposition of the service state.

    Combines the durable-state summary (re-derived from the job store
    and artifact directory, exported as gauges under ``repro_service_*``)
    with the in-process counters/histograms of ``registry`` (default:
    the global registry — scheduler/worker/solver metrics).
    """
    summary = service_summary(store, artifacts, now=now)
    derived = MetricsRegistry()
    for state, count in summary["jobs"].items():
        derived.gauge(
            f"service_jobs_{state}",
            help=f"jobs currently in state {state}"
            if state != "total" else "all jobs ever submitted",
        ).set(count)
    cache = summary["cache"]
    derived.gauge(
        "service_cache_hits", help="done jobs served from cache"
    ).set(cache["hits"])
    derived.gauge(
        "service_cache_misses", help="done jobs actually solved"
    ).set(cache["misses"])
    if cache.get("n_artifacts") is not None:
        derived.gauge(
            "service_artifacts", help="stored artifact count"
        ).set(cache["n_artifacts"])
    if cache.get("total_bytes") is not None:
        derived.gauge(
            "service_artifact_bytes", help="stored artifact bytes"
        ).set(cache["total_bytes"])
    derived.gauge(
        "service_retries", help="total executed retries"
    ).set(summary["retries"]["total"])
    derived.gauge(
        "service_queue_depth", help="queued plus running jobs"
    ).set(summary["queue"]["depth"])
    solve_total = summary["timing"]["solve_seconds_total"]
    if solve_total is not None:
        derived.gauge(
            "service_solve_seconds_total",
            help="cumulative non-cached solve wall time",
        ).set(solve_total)
    fleet = summary["fleet"]
    derived.gauge(
        "service_workers", help="workers ever registered"
    ).set(fleet["workers"])
    derived.gauge(
        "service_workers_live",
        help=f"workers heard from within {LIVE_WORKER_SECONDS:.0f}s",
    ).set(fleet["live"])
    derived.gauge(
        "service_workers_busy", help="workers holding a running job"
    ).set(fleet["busy"])
    if fleet["max_heartbeat_age_seconds"] is not None:
        derived.gauge(
            "service_worker_heartbeat_lag_seconds",
            help="oldest worker heartbeat age",
        ).set(fleet["max_heartbeat_age_seconds"])
    shards = summary.get("shards")
    if shards is not None:
        derived.gauge(
            "service_shards_total", help="job-store shard count"
        ).set(shards["total"])
        derived.gauge(
            "service_shards_degraded",
            help="shards whose circuit breaker is currently open",
        ).set(len(shards["degraded"]))
        # the registry has no label support, so per-shard liveness is
        # one gauge per shard: repro_service_shard00_up 0|1
        for state in shards["states"]:
            derived.gauge(
                f"service_shard{state['index']:02d}_up",
                help="1 while this shard's circuit is closed",
            ).set(1 if state["state"] == "healthy" else 0)
    text = prometheus_text(derived)
    process = prometheus_text(
        registry if registry is not None else get_metrics()
    )
    return text + process


def format_job_table(jobs: Sequence[JobRecord]) -> str:
    """Fixed-width text table of jobs for the ``status`` CLI."""
    header = (
        f"{'id':<20} {'state':<11} {'problem':<16} {'att':>3} "
        f"{'cache':>5} {'med':>8} {'runtime':>8}  error"
    )
    lines = [header, "-" * len(header)]
    for job in jobs:
        med = "-" if job.med is None else f"{job.med:.4f}"
        runtime = (
            "-"
            if job.runtime_seconds is None
            else f"{job.runtime_seconds:.2f}s"
        )
        error = "" if not job.error else f" {job.error}"
        lines.append(
            f"{job.id:<20} {job.state:<11} {job.spec.describe():<16} "
            f"{job.attempts:>3} {('yes' if job.cache_hit else 'no'):>5} "
            f"{med:>8} {runtime:>8} {error}"
        )
    return "\n".join(lines)


def format_worker_table(
    workers: Sequence[WorkerRecord], now: Optional[float] = None
) -> str:
    """Fixed-width fleet table for ``repro status --workers``."""
    now = time.time() if now is None else now
    header = (
        f"{'worker':<28} {'kind':<7} {'hb age':>8} {'lease':>8} "
        f"{'done':>5} {'fail':>5}  current job"
    )
    lines = [header, "-" * len(header)]
    for worker in workers:
        age = max(0.0, now - worker.last_heartbeat)
        stale = "" if age <= LIVE_WORKER_SECONDS else "!"
        lease = (
            "-"
            if worker.lease_expires is None
            else f"{worker.lease_expires - now:+.1f}s"
        )
        lines.append(
            f"{worker.id:<28} {worker.kind:<7} "
            f"{f'{age:.1f}s{stale}':>8} {lease:>8} "
            f"{worker.jobs_completed:>5} {worker.jobs_failed:>5}  "
            f"{worker.current_job or '-'}"
        )
    return "\n".join(lines)
