"""Service telemetry: a structured summary derived from durable state.

Telemetry is *computed*, not accumulated: everything is derived from the
job store rows and the artifact directory on demand.  That makes the
numbers correct across processes (``repro status`` sees exactly what
``repro serve`` produced, even after a crash) and means there is no
second, driftable source of truth to keep consistent.

The summary layout (all times in seconds)::

    {
      "jobs": {"queued": 0, "running": 1, "done": 7, "failed": 0,
               "quarantined": 0, "total": 8},
      "cache": {"hits": 3, "misses": 4, "hit_rate": 0.4286,
                "n_artifacts": 4, "total_bytes": 51234},
      "retries": {"total": 2, "jobs_retried": 1, "max_attempts_seen": 3},
      "timing": {"solve_seconds_total": ..., "solve_seconds_mean": ...,
                 "solve_seconds_max": ..., "wall_seconds": ...,
                 "jobs_per_second": ...},
      "queue": {"depth": 0, "oldest_waiting_seconds": null}
    }
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

from repro.obs.exporters import prometheus_text
from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.service.artifacts import ArtifactStore
from repro.service.jobstore import JOB_STATES, JobRecord, JobStore

__all__ = [
    "service_summary",
    "format_job_table",
    "prometheus_exposition",
]


def _round(value: Optional[float], digits: int = 4) -> Optional[float]:
    return None if value is None else round(float(value), digits)


def service_summary(
    store: JobStore,
    artifacts: Optional[ArtifactStore] = None,
    now: Optional[float] = None,
) -> Dict:
    """Build the structured telemetry summary (see module docs)."""
    now = time.time() if now is None else now
    jobs = store.list_jobs()
    counts = {state: 0 for state in JOB_STATES}
    for job in jobs:
        counts[job.state] += 1
    done = [job for job in jobs if job.state == "done"]
    hits = sum(1 for job in done if job.cache_hit)
    solved = [
        job.runtime_seconds
        for job in done
        if not job.cache_hit and job.runtime_seconds is not None
    ]
    retries_per_job = [job.retries for job in jobs]
    finished = [job for job in jobs if job.finished_at is not None]
    first_start = min(
        (job.started_at for job in jobs if job.started_at is not None),
        default=None,
    )
    last_finish = max(
        (job.finished_at for job in finished), default=None
    )
    wall = (
        None
        if first_start is None or last_finish is None
        else max(0.0, last_finish - first_start)
    )
    waiting = [
        now - job.created_at for job in jobs if job.state == "queued"
    ]
    summary = {
        "jobs": {**counts, "total": len(jobs)},
        "cache": {
            "hits": hits,
            "misses": len(done) - hits,
            "hit_rate": _round(hits / len(done)) if done else None,
        },
        "retries": {
            "total": sum(retries_per_job),
            "jobs_retried": sum(1 for r in retries_per_job if r > 0),
            "max_attempts_seen": max(
                (job.attempts for job in jobs), default=0
            ),
        },
        "timing": {
            "solve_seconds_total": _round(sum(solved)) if solved else None,
            "solve_seconds_mean": (
                _round(sum(solved) / len(solved)) if solved else None
            ),
            "solve_seconds_max": _round(max(solved)) if solved else None,
            "wall_seconds": _round(wall),
            "jobs_per_second": (
                _round(len(finished) / wall) if wall else None
            ),
        },
        "queue": {
            "depth": counts["queued"] + counts["running"],
            "oldest_waiting_seconds": (
                _round(max(waiting)) if waiting else None
            ),
        },
    }
    if artifacts is not None:
        summary["cache"].update(artifacts.stats())
    return summary


def prometheus_exposition(
    store: JobStore,
    artifacts: Optional[ArtifactStore] = None,
    now: Optional[float] = None,
    registry: Optional[MetricsRegistry] = None,
) -> str:
    """Prometheus text exposition of the service state.

    Combines the durable-state summary (re-derived from the job store
    and artifact directory, exported as gauges under ``repro_service_*``)
    with the in-process counters/histograms of ``registry`` (default:
    the global registry — scheduler/worker/solver metrics).
    """
    summary = service_summary(store, artifacts, now=now)
    derived = MetricsRegistry()
    for state, count in summary["jobs"].items():
        derived.gauge(
            f"service_jobs_{state}",
            help=f"jobs currently in state {state}"
            if state != "total" else "all jobs ever submitted",
        ).set(count)
    cache = summary["cache"]
    derived.gauge(
        "service_cache_hits", help="done jobs served from cache"
    ).set(cache["hits"])
    derived.gauge(
        "service_cache_misses", help="done jobs actually solved"
    ).set(cache["misses"])
    if cache.get("n_artifacts") is not None:
        derived.gauge(
            "service_artifacts", help="stored artifact count"
        ).set(cache["n_artifacts"])
    if cache.get("total_bytes") is not None:
        derived.gauge(
            "service_artifact_bytes", help="stored artifact bytes"
        ).set(cache["total_bytes"])
    derived.gauge(
        "service_retries", help="total executed retries"
    ).set(summary["retries"]["total"])
    derived.gauge(
        "service_queue_depth", help="queued plus running jobs"
    ).set(summary["queue"]["depth"])
    solve_total = summary["timing"]["solve_seconds_total"]
    if solve_total is not None:
        derived.gauge(
            "service_solve_seconds_total",
            help="cumulative non-cached solve wall time",
        ).set(solve_total)
    text = prometheus_text(derived)
    process = prometheus_text(
        registry if registry is not None else get_metrics()
    )
    return text + process


def format_job_table(jobs: Sequence[JobRecord]) -> str:
    """Fixed-width text table of jobs for the ``status`` CLI."""
    header = (
        f"{'id':<17} {'state':<11} {'problem':<16} {'att':>3} "
        f"{'cache':>5} {'med':>8} {'runtime':>8}  error"
    )
    lines = [header, "-" * len(header)]
    for job in jobs:
        med = "-" if job.med is None else f"{job.med:.4f}"
        runtime = (
            "-"
            if job.runtime_seconds is None
            else f"{job.runtime_seconds:.2f}s"
        )
        error = "" if not job.error else f" {job.error}"
        lines.append(
            f"{job.id:<17} {job.state:<11} {job.spec.describe():<16} "
            f"{job.attempts:>3} {('yes' if job.cache_hit else 'no'):>5} "
            f"{med:>8} {runtime:>8} {error}"
        )
    return "\n".join(lines)
