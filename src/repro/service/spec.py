"""Job specifications and canonical artifact keying.

A :class:`JobSpec` is everything the service needs to (re-)execute a
decomposition: the problem (a named workload at a width, or an inline
truth table), the :class:`~repro.core.config.FrameworkConfig`, and the
service-level execution policy (timeout, retry budget).  Specs are plain
JSON — the job store persists them verbatim, so a crashed worker's job
can be replayed by any process that can read the store.

Content addressing
------------------
:func:`artifact_key` maps (truth table, config) to a SHA-256 hex digest
of a canonical JSON payload.  The payload contains exactly the inputs
that determine the seeded search result bit-for-bit:

* the packed output bits of the exact truth table,
* the input-distribution probabilities (raw float64 bytes — the MED
  objective is defined against them),
* :meth:`FrameworkConfig.semantic_dict` — every framework/solver field
  except ``n_workers`` (pure scheduling), with the SB backend resolved
  because float32 stepping changes numerics.

Two submissions with equal keys are guaranteed to produce identical
designs, so the artifact store may return one's result for the other.

Wire format (JobSpecV1)
-----------------------
There is exactly one JSON shape a job spec travels in — the *wire form*
produced by :meth:`JobSpec.to_wire` and parsed by
:meth:`JobSpec.from_wire`.  The CLI's ``submit --remote``, the HTTP
gateway's ``POST /v1/jobs`` body, and the job store's persisted ``spec``
column all use it, so a spec submitted remotely is byte-comparable to
one submitted in-process:

.. code-block:: json

    {
      "format": "repro-jobspec",
      "schema_version": 1,
      "config": { ... FrameworkConfig.to_dict() ... },
      "workload": "cos", "n_inputs": 9, "table": null,
      "timeout_seconds": null, "max_attempts": 3
    }

Parsing is *strict*: a missing/unsupported ``schema_version`` or any
unknown key is rejected with :class:`~repro.errors.ServiceError`
(nested ``config`` payloads were already strict).  Job-store rows
written before the wire format carry no ``format`` key and are still
read through the legacy lenient path (:func:`spec_from_stored`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Dict, Optional

import numpy as np

from repro.boolean.truth_table import TruthTable
from repro.core.config import FrameworkConfig
from repro.errors import ServiceError

__all__ = [
    "JobSpec",
    "SPEC_FORMAT",
    "SPEC_SCHEMA_VERSION",
    "PARTITION_FORMAT",
    "PARTITION_SCHEMA_VERSION",
    "artifact_key",
    "spec_artifact_key",
    "queue_artifact_key",
    "partition_block",
    "validate_partition_block",
    "spec_from_stored",
    "table_to_dict",
    "table_from_dict",
]

#: wire-format discriminator of a serialized job spec
SPEC_FORMAT = "repro-jobspec"
#: current wire schema version (see the module docstring)
SPEC_SCHEMA_VERSION = 1
#: wire-format discriminator of a spec's partition block
PARTITION_FORMAT = "repro-partition"
#: current partition-block schema version
PARTITION_SCHEMA_VERSION = 1

#: every key a partition block may carry (strict, like the spec itself)
_PARTITION_KEYS = frozenset(
    {"format", "schema_version", "k", "max_rounds", "tolerance", "seed"}
)


def partition_block(
    k: int,
    max_rounds: int = 8,
    tolerance: float = 0.0,
    seed: int = 0,
) -> Dict:
    """Build a validated partition block for :attr:`JobSpec.partition`."""
    return validate_partition_block(
        {
            "format": PARTITION_FORMAT,
            "schema_version": PARTITION_SCHEMA_VERSION,
            "k": int(k),
            "max_rounds": int(max_rounds),
            "tolerance": float(tolerance),
            "seed": int(seed),
        }
    )


def validate_partition_block(data: Dict) -> Dict:
    """Strictly validate a partition block; returns it unchanged.

    Same rules as the spec wire format: wrong ``format``, unsupported
    ``schema_version``, and unknown keys are all rejected with
    :class:`~repro.errors.ServiceError`.
    """
    if not isinstance(data, dict):
        raise ServiceError(
            f"partition block must be a JSON object, got "
            f"{type(data).__name__}"
        )
    declared = data.get("format")
    if declared != PARTITION_FORMAT:
        raise ServiceError(
            f"not a {PARTITION_FORMAT} block (format={declared!r})"
        )
    version = data.get("schema_version")
    if version != PARTITION_SCHEMA_VERSION:
        raise ServiceError(
            f"unsupported partition block schema_version {version!r}; "
            f"this build speaks version {PARTITION_SCHEMA_VERSION}"
        )
    unknown = sorted(set(data) - _PARTITION_KEYS)
    if unknown:
        raise ServiceError(
            f"unknown partition block fields: {', '.join(unknown)}"
        )
    try:
        k = int(data["k"])
        max_rounds = int(data.get("max_rounds", 8))
        tolerance = float(data.get("tolerance", 0.0))
        int(data.get("seed", 0))
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed partition block: {exc}") from exc
    if k < 1:
        raise ServiceError(f"partition k must be >= 1, got {k}")
    if max_rounds < 1:
        raise ServiceError(
            f"partition max_rounds must be >= 1, got {max_rounds}"
        )
    if tolerance < 0:
        raise ServiceError(
            f"partition tolerance must be >= 0, got {tolerance}"
        )
    return data


def table_to_dict(table: TruthTable) -> Dict:
    """Serialize a truth table (packed bits + distribution) to JSON."""
    packed = np.packbits(table.outputs.astype(np.uint8).ravel())
    return {
        "n_inputs": table.n_inputs,
        "n_outputs": table.n_outputs,
        "outputs_hex": packed.tobytes().hex(),
        "probabilities": [float(p) for p in table.probabilities],
    }


def table_from_dict(data: Dict) -> TruthTable:
    """Rebuild a truth table serialized by :func:`table_to_dict`."""
    try:
        n_inputs = int(data["n_inputs"])
        n_outputs = int(data["n_outputs"])
        packed = np.frombuffer(
            bytes.fromhex(data["outputs_hex"]), dtype=np.uint8
        )
        n_bits = (1 << n_inputs) * n_outputs
        outputs = np.unpackbits(packed, count=n_bits).reshape(
            1 << n_inputs, n_outputs
        )
        return TruthTable(outputs, data.get("probabilities"))
    except (KeyError, ValueError, TypeError) as exc:
        raise ServiceError(f"malformed inline table payload: {exc}") from exc


@dataclass(frozen=True)
class JobSpec:
    """One unit of service work: a problem plus how to run it.

    Attributes
    ----------
    config:
        The full framework configuration, seed included.  The seed is
        part of the spec — every retry of the job replays the identical
        seeded search, which is what makes results independent of the
        retry history.
    workload:
        Name of a registered workload (``repro.workloads``); exclusive
        with ``table``.
    n_inputs:
        Width for the named workload.
    table:
        Inline truth table as produced by :func:`table_to_dict`, for
        problems outside the benchmark registry; exclusive with
        ``workload``.
    ising:
        Inline Ising-problem document
        (:mod:`repro.ising.wire`, format ``repro-ising-problem``) —
        the third problem kind: solve a raw Ising model with a named
        registry solver.  Exclusive with both ``workload`` and
        ``table``; validated strictly on construction.
    partition:
        Optional partition block (format ``repro-partition``) asking
        the *client-side* coordinator to split the Ising model into
        ``k`` subproblems with boundary-coordination rounds
        (:mod:`repro.partition`).  Requires ``ising``.  A block with
        ``k > 1`` is an orchestration document: the queue rejects it
        (:func:`queue_artifact_key`) because the coordinator — not a
        worker — owns the fan-out; ``k == 1`` degenerates to the
        monolithic job (and is normalized out of the artifact key).
    timeout_seconds:
        Per-attempt wall-clock budget enforced via the framework's
        cooperative cancellation hook (``None`` — no timeout).
    max_attempts:
        Total execution attempts (first try + retries) before the job
        is declared failed.
    checkpoint_every:
        Write a crash-recovery checkpoint every this-many component
        optimizations (``None`` — use the service default).  Purely an
        execution-policy knob: checkpoints never change the seeded
        search, so the field is *not* part of the artifact key (which
        hashes only the table and the semantic config).
    """

    config: FrameworkConfig = field(default_factory=FrameworkConfig)
    workload: Optional[str] = None
    n_inputs: int = 9
    table: Optional[Dict] = None
    ising: Optional[Dict] = None
    partition: Optional[Dict] = None
    timeout_seconds: Optional[float] = None
    max_attempts: int = 3
    checkpoint_every: Optional[int] = None

    def __post_init__(self) -> None:
        sources = [
            name
            for name in ("workload", "table", "ising")
            if getattr(self, name) is not None
        ]
        if len(sources) != 1:
            raise ServiceError(
                "spec needs exactly one problem source: a workload "
                "name, an inline table, or an ising problem (got "
                f"{', '.join(sources) if sources else 'none'})"
            )
        if self.ising is not None:
            from repro.ising.wire import validate_problem

            validate_problem(self.ising)
        if self.partition is not None:
            if self.ising is None:
                raise ServiceError(
                    "a partition block requires an ising problem "
                    "(decomposition jobs are not partitionable)"
                )
            validate_partition_block(self.partition)
        if self.max_attempts <= 0:
            raise ServiceError(
                f"max_attempts must be positive, got {self.max_attempts}"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ServiceError(
                f"timeout_seconds must be positive, got "
                f"{self.timeout_seconds}"
            )
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ServiceError(
                f"checkpoint_every must be >= 1, got "
                f"{self.checkpoint_every}"
            )

    # ------------------------------------------------------------------

    def build_table(self) -> TruthTable:
        """Materialize the exact truth table this job decomposes."""
        if self.ising is not None:
            raise ServiceError(
                "ising jobs have no truth table (the executor solves "
                "the inline model directly)"
            )
        if self.table is not None:
            return table_from_dict(self.table)
        from repro.workloads import build_workload

        return build_workload(self.workload, n_inputs=self.n_inputs).table

    def describe(self) -> str:
        """Short human-readable problem label for status displays."""
        if self.workload is not None:
            return f"{self.workload}/n={self.n_inputs}"
        if self.ising is not None:
            solver = self.ising.get("solver", "?")
            n_spins = (self.ising.get("model") or {}).get("n_spins", "?")
            label = f"ising[{solver}]/N={n_spins}"
            if self.partition is not None:
                label += f"/k={self.partition.get('k', '?')}"
            return label
        return f"inline/n={self.table.get('n_inputs', '?')}"

    def to_dict(self) -> Dict:
        """Plain-JSON form (inverse of :meth:`from_dict`)."""
        return {
            "config": self.config.to_dict(),
            "workload": self.workload,
            "n_inputs": self.n_inputs,
            "table": self.table,
            "ising": self.ising,
            "partition": self.partition,
            "timeout_seconds": self.timeout_seconds,
            "max_attempts": self.max_attempts,
            "checkpoint_every": self.checkpoint_every,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "JobSpec":
        """Rebuild a spec persisted by :meth:`to_dict` (lenient legacy
        path — pre-wire job-store rows; new code uses :meth:`from_wire`).
        """
        try:
            return cls(
                config=FrameworkConfig.from_dict(data["config"]),
                workload=data.get("workload"),
                n_inputs=int(data.get("n_inputs", 9)),
                table=data.get("table"),
                ising=data.get("ising"),
                partition=data.get("partition"),
                timeout_seconds=data.get("timeout_seconds"),
                max_attempts=int(data.get("max_attempts", 3)),
                checkpoint_every=data.get("checkpoint_every"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed job spec: {exc}") from exc

    # -- canonical wire form (JobSpecV1) -------------------------------

    def to_wire(self) -> Dict:
        """The canonical versioned JSON shape (module docstring)."""
        return {
            "format": SPEC_FORMAT,
            "schema_version": SPEC_SCHEMA_VERSION,
            **self.to_dict(),
        }

    @classmethod
    def from_wire(cls, data: Dict) -> "JobSpec":
        """Parse the canonical wire form; strict, unlike :meth:`from_dict`.

        Rejects non-mappings, a wrong ``format``, a missing or
        unsupported ``schema_version``, unknown keys, and a missing
        ``config`` — all as :class:`~repro.errors.ServiceError` with a
        message safe to surface verbatim at an API boundary.
        """
        if not isinstance(data, dict):
            raise ServiceError(
                f"job spec must be a JSON object, got {type(data).__name__}"
            )
        declared = data.get("format")
        if declared != SPEC_FORMAT:
            raise ServiceError(
                f"not a {SPEC_FORMAT} document (format={declared!r})"
            )
        version = data.get("schema_version")
        if version != SPEC_SCHEMA_VERSION:
            raise ServiceError(
                f"unsupported job spec schema_version {version!r}; this "
                f"build speaks version {SPEC_SCHEMA_VERSION}"
            )
        known = {f.name for f in fields(cls)} | {"format", "schema_version"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ServiceError(
                f"unknown job spec fields: {', '.join(unknown)}"
            )
        if "config" not in data:
            raise ServiceError("job spec is missing its config")
        return cls.from_dict(
            {k: v for k, v in data.items()
             if k not in ("format", "schema_version")}
        )


def spec_from_stored(data: Dict) -> JobSpec:
    """Parse a persisted spec: wire form if tagged, legacy otherwise.

    Job-store rows written before the wire format carry no ``format``
    key; everything newer goes through the strict :meth:`JobSpec.from_wire`
    path so corruption surfaces as a clear error instead of a default.
    """
    if isinstance(data, dict) and "format" in data:
        return JobSpec.from_wire(data)
    return JobSpec.from_dict(data)


def artifact_key(table: TruthTable, config: FrameworkConfig) -> str:
    """Content-address a (problem, config) pair; see the module docs.

    The heavy arrays are digested separately (hex SHA-256 of their raw
    bytes) and embedded in a canonical sorted-keys JSON payload, whose
    digest is the key.  Float probabilities are hashed from their IEEE
    float64 bytes — no decimal round-tripping, so equality is exact.
    """
    outputs = np.packbits(table.outputs.astype(np.uint8).ravel())
    probabilities = np.ascontiguousarray(table.probabilities, dtype="<f8")
    payload = {
        "format": "repro-artifact-key",
        "key_version": 1,
        "n_inputs": table.n_inputs,
        "n_outputs": table.n_outputs,
        "outputs_sha256": hashlib.sha256(outputs.tobytes()).hexdigest(),
        "probabilities_sha256": hashlib.sha256(
            probabilities.tobytes()
        ).hexdigest(),
        "config": config.semantic_dict(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def spec_artifact_key(spec: JobSpec) -> str:
    """The content address of any spec, whatever its problem kind.

    Decomposition jobs hash (truth table, semantic config) via
    :func:`artifact_key`; Ising jobs hash (model, solver, semantic
    config, normalized partition block) via
    :func:`repro.ising.wire.ising_artifact_key`.
    """
    if spec.ising is not None:
        from repro.ising.wire import ising_artifact_key

        return ising_artifact_key(spec.ising, spec.config, spec.partition)
    return artifact_key(spec.build_table(), spec.config)


def queue_artifact_key(spec: JobSpec) -> str:
    """:func:`spec_artifact_key`, guarding the queue's accept boundary.

    A spec carrying a partition block with ``k > 1`` is a coordinator
    document, not a runnable job — the fan-out is orchestrated
    client-side (``repro submit --partition k``), so the service and
    gateway both refuse to enqueue the parent.
    """
    if spec.partition is not None and int(spec.partition.get("k", 1)) > 1:
        raise ServiceError(
            f"spec carries a partition block with "
            f"k={spec.partition.get('k')} — partitioned solves are "
            "coordinated client-side (repro submit --partition K), "
            "which submits the subproblems as ordinary jobs; the "
            "parent document itself is not runnable"
        )
    return spec_artifact_key(spec)
