"""The service façade: one object tying store, cache, and workers.

:class:`DecompositionService` owns a *service directory*::

    <root>/
      jobs.sqlite3        durable job store (queue + journal + telemetry)
      artifacts/          content-addressed design cache

Because all state is on disk, the façade is process-oblivious: one
process may ``submit`` while another runs ``serve`` and a third polls
``status`` — the CLI maps each subcommand onto a fresh façade over the
same directory.  Library users typically drive one instance in-process:

>>> from repro.core import FrameworkConfig
>>> from repro.service import DecompositionService, JobSpec
>>> service = DecompositionService("/tmp/svc-doc-example", n_workers=2)
>>> spec = JobSpec(workload="cos", n_inputs=6,
...                config=FrameworkConfig(n_partitions=2, n_rounds=1,
...                                       seed=7))
>>> job = service.submit(spec)
>>> service.run_until_drained()
>>> service.job(job.id).state
'done'
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ServiceError
from repro.lut.cascade import LutCascadeDesign
from repro.serialization import design_from_dict
from repro.service.artifacts import ArtifactStore
from repro.service.jobstore import JobRecord
from repro.service.scheduler import Scheduler, SchedulerPolicy
from repro.service.shards import open_job_store
from repro.service.spec import JobSpec, queue_artifact_key
from repro.service.telemetry import service_summary
from repro.service.worker import (
    DEFAULT_CHECKPOINT_EVERY,
    DecomposeFn,
    JobExecutor,
    WorkerPool,
)

__all__ = ["DecompositionService"]


class DecompositionService:
    """Durable decomposition job service over a directory (module docs)."""

    def __init__(
        self,
        root: Union[str, Path],
        n_workers: int = 1,
        policy: Optional[SchedulerPolicy] = None,
        decompose_fn: Optional[DecomposeFn] = None,
        checkpoint_every: Optional[int] = DEFAULT_CHECKPOINT_EVERY,
        batch_jobs: int = 1,
        shards: Optional[int] = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # shards=None discovers the directory's layout (manifest);
        # N >= 2 opens the sharded store with per-shard fault domains
        # (see repro.service.shards), N == 1 keeps today's single
        # jobs.sqlite3 byte-identical
        self.store = open_job_store(self.root, shards)
        self.artifacts = ArtifactStore(self.root / "artifacts")
        self.scheduler = Scheduler(self.store, policy)
        self.executor = JobExecutor(
            self.artifacts, decompose_fn, checkpoint_every=checkpoint_every
        )
        # batch_jobs > 1: each worker claims up to that many jobs per
        # loop and advances them together, fusing compatible batched
        # sweeps into shared kernel passes (see WorkerPool docs)
        self.pool = WorkerPool(
            self.scheduler,
            self.executor,
            n_workers=n_workers,
            batch_size=batch_jobs,
        )

    # -- submission ----------------------------------------------------

    def submit(self, spec: JobSpec) -> JobRecord:
        """Enqueue one job; duplicates are welcome (the artifact cache
        dedups them at execution time, the second solve never happens).
        """
        key = queue_artifact_key(spec)
        return self.store.submit(spec, artifact_key=key)

    def submit_batch(self, specs: Sequence[JobSpec]) -> List[JobRecord]:
        """Enqueue many jobs, preserving order."""
        return [self.submit(spec) for spec in specs]

    def submit_idempotent(self, spec: JobSpec) -> Tuple[JobRecord, bool]:
        """Enqueue unless an equivalent job is already live.

        "Equivalent" means same artifact key — the content address over
        (truth table, semantic config), i.e. the strongest possible
        dedup: a match is *guaranteed* to yield the identical design.
        Returns ``(record, deduplicated)`` where a ``True`` flag means
        the record is a pre-existing queued/running/done twin (failed
        twins don't count — resubmission retries them).  This is the
        gateway's ``POST /v1/jobs`` path, which makes client retries
        after a lost response safe.
        """
        key = queue_artifact_key(spec)
        live = self.store.find_by_key(
            key, states=("queued", "running", "done")
        )
        if live:
            return live[0], True
        return self.store.submit(spec, artifact_key=key), False

    # -- serving -------------------------------------------------------

    def _recover_orphans_best_effort(self) -> None:
        # the worker loop retries recovery every poll, so a transient
        # store error on this eager pass must not abort serving
        try:
            self.scheduler.recover_orphans()
        except sqlite3.OperationalError:
            pass

    def run_until_drained(self, timeout: Optional[float] = None) -> None:
        """Serve until the queue is empty; recovers orphans first."""
        self._recover_orphans_best_effort()
        self.pool.run_until_drained(timeout=timeout)

    def serve_forever(self) -> WorkerPool:
        """Start background serving; call ``.stop()`` on the returned
        pool (or let the process exit — threads are daemonic).
        """
        self._recover_orphans_best_effort()
        self.pool.start()
        return self.pool

    # -- inspection / fetch --------------------------------------------

    def job(self, job_id: str) -> JobRecord:
        """Current record of one job."""
        return self.store.get(job_id)

    def jobs(self, state: Optional[str] = None) -> List[JobRecord]:
        """All job records, oldest first."""
        return self.store.list_jobs(state)

    def jobs_page(
        self,
        state: Optional[str] = None,
        limit: Optional[int] = None,
        cursor: Optional[str] = None,
    ) -> Tuple[List[JobRecord], Optional[str]]:
        """One page of job records: ``(records, next_cursor)``.

        See :meth:`repro.service.jobstore.JobStore.page_jobs` — this is
        what ``GET /v1/jobs?limit=&cursor=`` serves, so large queues
        never require an O(queue) response.
        """
        return self.store.page_jobs(
            state=state, limit=limit, cursor=cursor
        )

    def status(self) -> Dict:
        """Structured telemetry summary (see ``service.telemetry``)."""
        return service_summary(self.store, self.artifacts)

    def shard_states(self) -> Optional[List[Dict]]:
        """Per-shard breaker snapshots, or ``None`` for the single
        (unsharded) store — the healthz / ``status --shards`` feed.
        """
        states = getattr(self.store, "shard_states", None)
        return states() if callable(states) else None

    def fetch_envelope(self, job_id: str) -> Dict:
        """The finished job's artifact envelope (design + metadata)."""
        job = self.store.get(job_id)
        if job.state != "done":
            raise ServiceError(
                f"job {job_id} is {job.state!r}, not done"
                + (f" ({job.error})" if job.error else "")
            )
        envelope = self.artifacts.get(job.artifact_key)
        if envelope is None:
            raise ServiceError(
                f"job {job_id} is done but its artifact "
                f"{job.artifact_key} is missing from the store"
            )
        return envelope

    def fetch_design_dict(self, job_id: str) -> Dict:
        """The finished job's design document
        (:mod:`repro.serialization` format).
        """
        return self.fetch_envelope(job_id)["design"]

    def fetch_design(self, job_id: str) -> LutCascadeDesign:
        """The finished job's design, rebuilt and evaluable."""
        return design_from_dict(self.fetch_design_dict(job_id))

    def write_design(self, job_id: str, path: Union[str, Path]) -> Path:
        """Write the finished job's design document as a JSON file that
        ``repro evaluate`` / ``export-verilog`` / ``load_design`` read.
        """
        path = Path(path)
        path.write_text(
            json.dumps(
                self.fetch_design_dict(job_id), indent=2, sort_keys=True
            )
        )
        return path
