"""The paper's benchmark workloads.

Six continuous functions (cos, tan, exp, ln, erf, denoise) quantized per
the paper's two schemes, plus four AxBench-style arithmetic circuits
(Brent-Kung adder, Forwardk2j, Inversek2j, Multiplier) reimplemented
bit-exactly.  :mod:`repro.workloads.registry` exposes the named suites
used by the Table-1 and Figure-4 reproductions.
"""

from repro.workloads.axbench import (
    brent_kung_adder,
    brent_kung_table,
    forwardk2j_table,
    inversek2j_table,
    multiplier_table,
)
from repro.workloads.continuous import (
    CONTINUOUS_FUNCTIONS,
    continuous_table,
)
from repro.workloads.extended import EXTENDED_FUNCTIONS, extended_table
from repro.workloads.quantization import (
    QuantizationScheme,
    quantize_real_function,
)
from repro.workloads.registry import (
    Workload,
    build_workload,
    large_scale_suite,
    small_scale_suite,
    workload_names,
)

__all__ = [
    "CONTINUOUS_FUNCTIONS",
    "EXTENDED_FUNCTIONS",
    "QuantizationScheme",
    "extended_table",
    "Workload",
    "brent_kung_adder",
    "brent_kung_table",
    "build_workload",
    "continuous_table",
    "forwardk2j_table",
    "inversek2j_table",
    "large_scale_suite",
    "multiplier_table",
    "quantize_real_function",
    "small_scale_suite",
    "workload_names",
]
