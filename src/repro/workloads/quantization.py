"""Fixed-point quantization of real-valued functions into truth tables.

The paper's LUT workloads quantize a continuous function ``f`` on a
domain ``[x_lo, x_hi]`` with ``n`` input bits and ``m`` output bits over
a range ``[y_lo, y_hi]``:

* input code ``i`` decodes to ``x = x_lo + i * (x_hi - x_lo) / (2^n - 1)``
  (endpoints included);
* the output word is ``round((clip(f(x)) - y_lo) / (y_hi - y_lo)
  * (2^m - 1))`` with values clipped into the range.

:class:`QuantizationScheme` captures the bit widths; the paper's two
schemes are ``n = 9`` (free set 4 / bound set 5) and ``n = 16`` (free
set 7 / bound set 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.boolean.truth_table import TruthTable
from repro.errors import ConfigurationError

__all__ = ["QuantizationScheme", "quantize_real_function"]


@dataclass(frozen=True)
class QuantizationScheme:
    """Bit widths and the paper's matching partition sizes.

    Attributes
    ----------
    n_inputs / n_outputs:
        Total input and output bits.
    free_size:
        The paper's free-set size for this scheme (4 when n = 9,
        7 when n = 16); other widths scale it as ``ceil(n/2) - 1``
        capped to ``n - 1``.
    """

    n_inputs: int
    n_outputs: int

    def __post_init__(self) -> None:
        if self.n_inputs <= 1:
            raise ConfigurationError(
                f"n_inputs must exceed 1, got {self.n_inputs}"
            )
        if self.n_outputs <= 0:
            raise ConfigurationError(
                f"n_outputs must be positive, got {self.n_outputs}"
            )

    @property
    def free_size(self) -> int:
        """Free-set size |A| matching the paper's schemes."""
        if self.n_inputs == 9:
            return 4
        if self.n_inputs == 16:
            return 7
        return max(1, min(self.n_inputs - 1, (self.n_inputs + 1) // 2 - 1))

    @property
    def bound_size(self) -> int:
        """Bound-set size |B| = n - |A|."""
        return self.n_inputs - self.free_size

    @classmethod
    def paper_small(cls, n_outputs: int = 9) -> "QuantizationScheme":
        """The paper's first scheme: n = 9 (free 4, bound 5)."""
        return cls(9, n_outputs)

    @classmethod
    def paper_large(cls, n_outputs: int = 16) -> "QuantizationScheme":
        """The paper's second scheme: n = 16 (free 7, bound 9)."""
        return cls(16, n_outputs)


def quantize_real_function(
    func: Callable[[np.ndarray], np.ndarray],
    scheme: QuantizationScheme,
    domain: Tuple[float, float],
    output_range: Tuple[float, float],
    probabilities: Optional[np.ndarray] = None,
) -> TruthTable:
    """Quantize a vectorized real function into a truth table.

    ``func`` receives the decoded input grid (shape ``(2**n,)``) and
    must return function values of the same shape; values are clipped
    into ``output_range`` before encoding.
    """
    x_lo, x_hi = float(domain[0]), float(domain[1])
    y_lo, y_hi = float(output_range[0]), float(output_range[1])
    if x_hi <= x_lo:
        raise ConfigurationError(f"empty domain [{x_lo}, {x_hi}]")
    if y_hi <= y_lo:
        raise ConfigurationError(f"empty output range [{y_lo}, {y_hi}]")

    size = 1 << scheme.n_inputs
    codes = np.arange(size)
    grid = x_lo + codes * (x_hi - x_lo) / (size - 1)
    values = np.clip(np.asarray(func(grid), dtype=float), y_lo, y_hi)
    levels = (1 << scheme.n_outputs) - 1
    words = np.round((values - y_lo) / (y_hi - y_lo) * levels).astype(
        np.int64
    )
    return TruthTable.from_words(
        words, scheme.n_inputs, scheme.n_outputs, probabilities
    )
