"""Input-pattern probability models (the ``p_X`` of Eq. 2).

The error metrics and both core-COP objectives weight every input
pattern by its occurrence probability.  The paper's experiments use the
uniform distribution; real deployments rarely do, so the library ships
the distribution families that actually show up in front of LUT-based
accelerators:

* :func:`uniform` — the paper's setting;
* :func:`gaussian_codes` — analog-front-end style inputs concentrated
  mid-range;
* :func:`exponential_codes` — dark-heavy / small-magnitude-heavy
  signals (audio, image luma);
* :func:`zipf_codes` — heavy-tailed discrete sources;
* :func:`from_trace` — empirical histogram of an observed input trace,
  with optional Laplace smoothing;
* :func:`mixture` — convex combinations of the above.

All functions return a normalized probability vector aligned with the
truth-table index convention (``x_1`` = MSB).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import DimensionError

__all__ = [
    "uniform",
    "gaussian_codes",
    "exponential_codes",
    "zipf_codes",
    "from_trace",
    "mixture",
]


def _normalize(weights: np.ndarray) -> np.ndarray:
    total = weights.sum()
    if total <= 0 or not np.isfinite(total):
        raise DimensionError("distribution weights must have positive mass")
    return weights / total


def uniform(n_inputs: int) -> np.ndarray:
    """Equal probability for every input pattern."""
    if n_inputs < 0:
        raise DimensionError(f"n_inputs must be non-negative, got {n_inputs}")
    size = 1 << n_inputs
    return np.full(size, 1.0 / size)


def gaussian_codes(
    n_inputs: int, center: float = 0.5, sigma: float = 0.15
) -> np.ndarray:
    """Gaussian over the code range; ``center`` in [0, 1] of full scale."""
    if sigma <= 0:
        raise DimensionError(f"sigma must be positive, got {sigma}")
    size = 1 << n_inputs
    positions = np.arange(size) / max(size - 1, 1)
    weights = np.exp(-0.5 * ((positions - center) / sigma) ** 2)
    return _normalize(weights)


def exponential_codes(n_inputs: int, rate: float = 4.0) -> np.ndarray:
    """Exponentially decaying mass from code 0 upward."""
    if rate <= 0:
        raise DimensionError(f"rate must be positive, got {rate}")
    size = 1 << n_inputs
    positions = np.arange(size) / max(size - 1, 1)
    return _normalize(np.exp(-rate * positions))


def zipf_codes(n_inputs: int, exponent: float = 1.2) -> np.ndarray:
    """Zipf-like mass ``(rank + 1)^-exponent`` over codes in rank order."""
    if exponent <= 0:
        raise DimensionError(f"exponent must be positive, got {exponent}")
    size = 1 << n_inputs
    ranks = np.arange(1, size + 1, dtype=float)
    return _normalize(ranks**-exponent)


def from_trace(
    trace: Sequence[int],
    n_inputs: int,
    smoothing: float = 0.0,
) -> np.ndarray:
    """Empirical distribution of an observed input trace.

    ``smoothing`` adds Laplace mass to every code so unseen patterns keep
    non-zero probability (useful when the trace is short).
    """
    size = 1 << n_inputs
    arr = np.asarray(list(trace), dtype=np.int64)
    if arr.size == 0 and smoothing <= 0:
        raise DimensionError("empty trace with no smoothing")
    if arr.size and (arr.min() < 0 or arr.max() >= size):
        raise DimensionError(
            f"trace values must be in [0, {size}), got range "
            f"[{arr.min()}, {arr.max()}]"
        )
    if smoothing < 0:
        raise DimensionError(f"smoothing must be non-negative, got {smoothing}")
    counts = np.bincount(arr, minlength=size).astype(float)
    return _normalize(counts + smoothing)


def mixture(
    components: Sequence[np.ndarray],
    weights: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Convex combination of distributions over the same code space."""
    if not components:
        raise DimensionError("mixture needs at least one component")
    mats = [np.asarray(c, dtype=float) for c in components]
    size = mats[0].shape[0]
    for component in mats:
        if component.shape != (size,):
            raise DimensionError(
                "mixture components must share one shape, got "
                f"{[c.shape for c in mats]}"
            )
    if weights is None:
        coeffs = np.full(len(mats), 1.0 / len(mats))
    else:
        coeffs = np.asarray(list(weights), dtype=float)
        if coeffs.shape != (len(mats),):
            raise DimensionError(
                f"need {len(mats)} mixture weights, got {coeffs.shape}"
            )
        if (coeffs < 0).any():
            raise DimensionError("mixture weights must be non-negative")
    stacked = np.stack(mats)
    return _normalize(coeffs @ stacked)
