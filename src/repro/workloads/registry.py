"""Named workload suites matching the paper's evaluation.

* :func:`small_scale_suite` — the six continuous functions under the
  first quantization scheme (n = 9, m = 9; free 4 / bound 5): Table 1.
* :func:`large_scale_suite` — all ten benchmarks under the second
  scheme (n = 16; m = 16 except Brent-Kung with m = 9; free 7 /
  bound 9): Figure 4.

Both suites accept a width override so tests and laptop benchmarks can
run the identical pipeline at reduced scale; the paper's widths are the
defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.boolean.truth_table import TruthTable
from repro.errors import ConfigurationError
from repro.workloads.axbench import (
    brent_kung_table,
    forwardk2j_table,
    inversek2j_table,
    multiplier_table,
)
from repro.workloads.continuous import CONTINUOUS_FUNCTIONS, continuous_table
from repro.workloads.quantization import QuantizationScheme

__all__ = [
    "Workload",
    "workload_names",
    "build_workload",
    "small_scale_suite",
    "large_scale_suite",
]

CONTINUOUS_NAMES = tuple(CONTINUOUS_FUNCTIONS)
CIRCUIT_NAMES = ("brent-kung", "forwardk2j", "inversek2j", "multiplier")


@dataclass(frozen=True)
class Workload:
    """A named benchmark instance: truth table plus its partition sizes."""

    name: str
    table: TruthTable
    free_size: int

    @property
    def bound_size(self) -> int:
        """Bound-set size implied by the free size."""
        return self.table.n_inputs - self.free_size


def workload_names() -> List[str]:
    """All ten benchmark names in the paper's order."""
    return list(CONTINUOUS_NAMES) + list(CIRCUIT_NAMES)


def _circuit_outputs(name: str, n_inputs: int, n_outputs: int) -> int:
    """Paper's output-width convention: m = n except Brent-Kung."""
    if name == "brent-kung":
        return n_inputs // 2 + 1
    return n_outputs


def build_workload(
    name: str,
    n_inputs: int = 16,
    n_outputs: Optional[int] = None,
    probabilities: Optional[np.ndarray] = None,
) -> Workload:
    """Build one benchmark by name at the requested widths."""
    if n_outputs is None:
        n_outputs = n_inputs
    scheme = QuantizationScheme(n_inputs, n_outputs)
    if name in CONTINUOUS_FUNCTIONS:
        table = continuous_table(name, scheme, probabilities)
    elif name == "brent-kung":
        table = brent_kung_table(n_inputs, probabilities)
    elif name == "multiplier":
        table = multiplier_table(n_inputs, probabilities)
    elif name == "forwardk2j":
        table = forwardk2j_table(n_inputs, n_outputs, probabilities)
    elif name == "inversek2j":
        table = inversek2j_table(n_inputs, n_outputs, probabilities)
    else:
        raise ConfigurationError(
            f"unknown workload {name!r}; choose from {workload_names()}"
        )
    return Workload(name=name, table=table, free_size=scheme.free_size)


def small_scale_suite(n_inputs: int = 9) -> Dict[str, Workload]:
    """Table-1 suite: the six continuous functions (paper: n = m = 9)."""
    return {
        name: build_workload(name, n_inputs, n_inputs)
        for name in CONTINUOUS_NAMES
    }


def large_scale_suite(n_inputs: int = 16) -> Dict[str, Workload]:
    """Figure-4 suite: all ten benchmarks (paper: n = 16).

    Output widths follow the paper: 16 everywhere except Brent-Kung's
    ``n/2 + 1``.
    """
    suite = {}
    for name in workload_names():
        n_outputs = _circuit_outputs(name, n_inputs, n_inputs)
        suite[name] = build_workload(name, n_inputs, n_outputs)
    return suite
