"""Extended workload kernels beyond the paper's ten benchmarks.

The paper's suite covers its evaluation; downstream users of an
approximate-LUT flow keep asking for the same handful of extra
kernels — activation functions, square roots, reciprocals.  These
builders reuse the same quantization machinery, so everything in the
pipeline (decomposers, cascades, Verilog) applies unchanged.

All kernels are registered in :data:`EXTENDED_FUNCTIONS`;
:func:`extended_table` mirrors
:func:`repro.workloads.continuous.continuous_table`.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.boolean.truth_table import TruthTable
from repro.errors import ConfigurationError
from repro.workloads.continuous import ContinuousFunction
from repro.workloads.quantization import (
    QuantizationScheme,
    quantize_real_function,
)

__all__ = ["EXTENDED_FUNCTIONS", "extended_table"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


def _gelu(x: np.ndarray) -> np.ndarray:
    return 0.5 * x * (1.0 + np.tanh(
        np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)
    ))


def _reciprocal(x: np.ndarray) -> np.ndarray:
    return 1.0 / x


def _rsqrt(x: np.ndarray) -> np.ndarray:
    return 1.0 / np.sqrt(x)


EXTENDED_FUNCTIONS: Dict[str, ContinuousFunction] = {
    "sigmoid": ContinuousFunction(
        "sigmoid", _sigmoid, (-6.0, 6.0), (0.0, 1.0)
    ),
    "tanh": ContinuousFunction("tanh", np.tanh, (-3.0, 3.0), (-1.0, 1.0)),
    "gelu": ContinuousFunction("gelu", _gelu, (-4.0, 4.0), (-0.2, 4.0)),
    "sqrt": ContinuousFunction("sqrt", np.sqrt, (0.0, 4.0), (0.0, 2.0)),
    "reciprocal": ContinuousFunction(
        "reciprocal", _reciprocal, (0.5, 2.0), (0.5, 2.0)
    ),
    "rsqrt": ContinuousFunction(
        "rsqrt", _rsqrt, (0.25, 4.0), (0.5, 2.0)
    ),
    "sin": ContinuousFunction("sin", np.sin, (0.0, np.pi / 2), (0.0, 1.0)),
    "log2": ContinuousFunction("log2", np.log2, (1.0, 16.0), (0.0, 4.0)),
}


def extended_table(
    name: str,
    scheme: QuantizationScheme,
    probabilities: Optional[np.ndarray] = None,
) -> TruthTable:
    """Quantize one of the extended kernels under a scheme."""
    if name not in EXTENDED_FUNCTIONS:
        raise ConfigurationError(
            f"unknown extended kernel {name!r}; "
            f"choose from {sorted(EXTENDED_FUNCTIONS)}"
        )
    bench = EXTENDED_FUNCTIONS[name]
    return quantize_real_function(
        bench.func, scheme, bench.domain, bench.output_range, probabilities
    )
