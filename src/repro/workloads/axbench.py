"""Bit-exact reimplementations of the four AxBench-style circuits.

* **Brent-Kung** — an ``n/2 + n/2``-bit adder.  The carry network is
  implemented as an actual Brent-Kung parallel-prefix tree over
  generate/propagate pairs (tested against plain integer addition), so
  the workload is the real circuit, not just its arithmetic meaning.
  Output width ``n/2 + 1`` — the paper's ``m = 9`` for ``n = 16``.
* **Multiplier** — an ``n/2 x n/2``-bit unsigned multiplier,
  output width ``n`` (``m = 16`` for ``n = 16``).
* **Forwardk2j** — planar 2-link forward kinematics: inputs are the two
  joint angles (each ``n/2`` bits over ``[0, pi/2]``), output is the
  end-effector x-coordinate quantized to ``m`` bits.
* **Inversek2j** — the matching inverse kinematics: inputs are the
  end-effector coordinates (each ``n/2`` bits over the reachable box),
  output is the elbow angle ``theta2`` quantized to ``m`` bits, with
  out-of-workspace points clamped to the nearest reachable pose.

Link lengths follow AxBench's equal-link arm (``l1 = l2 = 0.5``).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.boolean.truth_table import TruthTable
from repro.errors import ConfigurationError

__all__ = [
    "brent_kung_adder",
    "brent_kung_table",
    "multiplier_table",
    "forwardk2j_table",
    "inversek2j_table",
]

_LINK1 = 0.5
_LINK2 = 0.5


def _split_operands(n_inputs: int) -> int:
    if n_inputs < 2 or n_inputs % 2 != 0:
        raise ConfigurationError(
            f"two-operand circuits need an even input width, got {n_inputs}"
        )
    return n_inputs // 2


def brent_kung_adder(a: int, b: int, width: int) -> int:
    """Add two ``width``-bit integers through a Brent-Kung prefix tree.

    Computes per-bit generate ``g_i = a_i & b_i`` and propagate
    ``p_i = a_i ^ b_i``, combines them with the Brent-Kung up-sweep /
    down-sweep prefix network, and assembles ``sum_i = p_i ^ c_i``.
    Returns the ``width + 1``-bit sum.
    """
    if width <= 0:
        raise ConfigurationError(f"width must be positive, got {width}")
    if not (0 <= a < (1 << width) and 0 <= b < (1 << width)):
        raise ConfigurationError(
            f"operands must be {width}-bit, got a={a}, b={b}"
        )
    g = [(a >> i) & 1 & ((b >> i) & 1) for i in range(width)]
    p = [((a >> i) & 1) ^ ((b >> i) & 1) for i in range(width)]

    # prefix arrays: after the sweeps, G[i] is the carry-out of bit i
    big_g = list(g)
    big_p = list(p)

    # up-sweep: combine nodes at stride 2, 4, 8, ...
    stride = 1
    while stride < width:
        for i in range(2 * stride - 1, width, 2 * stride):
            j = i - stride
            big_g[i] = big_g[i] | (big_p[i] & big_g[j])
            big_p[i] = big_p[i] & big_p[j]
        stride *= 2

    # down-sweep: fill in the remaining prefixes
    stride //= 2
    while stride >= 1:
        for i in range(3 * stride - 1, width, 2 * stride):
            j = i - stride
            big_g[i] = big_g[i] | (big_p[i] & big_g[j])
            big_p[i] = big_p[i] & big_p[j]
        stride //= 2

    carries = [0] + big_g[: width - 1]  # carry into bit i
    total = 0
    for i in range(width):
        total |= (p[i] ^ carries[i]) << i
    total |= big_g[width - 1] << width  # carry out
    return total


def brent_kung_table(
    n_inputs: int = 16, probabilities: Optional[np.ndarray] = None
) -> TruthTable:
    """Truth table of the Brent-Kung adder workload.

    The input word packs operand ``a`` in the high ``n/2`` bits and
    operand ``b`` in the low ``n/2`` bits.
    """
    half = _split_operands(n_inputs)
    mask = (1 << half) - 1

    def word(index: int) -> int:
        return brent_kung_adder(index >> half, index & mask, half)

    return TruthTable.from_integer_function(
        word, n_inputs, half + 1, probabilities
    )


def multiplier_table(
    n_inputs: int = 16, probabilities: Optional[np.ndarray] = None
) -> TruthTable:
    """Truth table of the unsigned ``n/2 x n/2`` multiplier workload."""
    half = _split_operands(n_inputs)
    mask = (1 << half) - 1
    codes = np.arange(1 << n_inputs, dtype=np.int64)
    words = (codes >> half) * (codes & mask)
    return TruthTable.from_words(words, n_inputs, n_inputs, probabilities)


def _decode_operands(
    n_inputs: int, lo: float, hi: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Decode both packed operands onto a real interval ``[lo, hi]``."""
    half = _split_operands(n_inputs)
    codes = np.arange(1 << n_inputs, dtype=np.int64)
    mask = (1 << half) - 1
    scale = (hi - lo) / ((1 << half) - 1)
    first = lo + (codes >> half) * scale
    second = lo + (codes & mask) * scale
    return first, second


def forwardk2j_table(
    n_inputs: int = 16,
    n_outputs: int = 16,
    probabilities: Optional[np.ndarray] = None,
) -> TruthTable:
    """Forward kinematics: ``(theta1, theta2) -> x`` end-effector coord.

    ``x = l1 cos(theta1) + l2 cos(theta1 + theta2)`` with both angles in
    ``[0, pi/2]``; output quantized over the exact image
    ``[-l2, l1 + l2]``.
    """
    theta1, theta2 = _decode_operands(n_inputs, 0.0, np.pi / 2)
    x = _LINK1 * np.cos(theta1) + _LINK2 * np.cos(theta1 + theta2)
    lo, hi = -_LINK2, _LINK1 + _LINK2
    levels = (1 << n_outputs) - 1
    words = np.round((np.clip(x, lo, hi) - lo) / (hi - lo) * levels).astype(
        np.int64
    )
    return TruthTable.from_words(words, n_inputs, n_outputs, probabilities)


def inversek2j_table(
    n_inputs: int = 16,
    n_outputs: int = 16,
    probabilities: Optional[np.ndarray] = None,
) -> TruthTable:
    """Inverse kinematics: ``(x, y) -> theta2`` elbow angle.

    ``theta2 = arccos((x^2 + y^2 - l1^2 - l2^2) / (2 l1 l2))``; points
    outside the reachable annulus clamp the cosine into ``[-1, 1]``
    (AxBench's kernels likewise saturate).  Coordinates span the
    workspace box ``[0, l1 + l2]``; the output spans ``[0, pi]``.
    """
    x, y = _decode_operands(n_inputs, 0.0, _LINK1 + _LINK2)
    cos_t2 = (x**2 + y**2 - _LINK1**2 - _LINK2**2) / (2 * _LINK1 * _LINK2)
    theta2 = np.arccos(np.clip(cos_t2, -1.0, 1.0))
    levels = (1 << n_outputs) - 1
    words = np.round(theta2 / np.pi * levels).astype(np.int64)
    return TruthTable.from_words(words, n_inputs, n_outputs, probabilities)
