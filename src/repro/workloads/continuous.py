"""The paper's six continuous benchmark functions.

Domains and ranges follow Table 1 exactly:

=========  ============  ============
function   domain        range
=========  ============  ============
cos        [0, pi/2]     [0, 1]
tan        [0, 2*pi/5]   [0, 3.08]
exp        [0, 3]        [0, 20.09]
ln         [1, 10]       [0, 2.30]
erf        [0, 3]        [0, 1]
denoise    [0, 3]        [0, 0.81]
=========  ============  ============

The AxBench ``denoise`` kernel's inner function is not specified in the
paper; we use the Gaussian weight ``0.81 * exp(-x^2)`` whose image on
``[0, 3]`` matches the reported range ``[0, 0.81]`` exactly (documented
substitution in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np
from scipy.special import erf as _erf

from repro.boolean.truth_table import TruthTable
from repro.errors import ConfigurationError
from repro.workloads.quantization import (
    QuantizationScheme,
    quantize_real_function,
)

__all__ = ["ContinuousFunction", "CONTINUOUS_FUNCTIONS", "continuous_table"]


@dataclass(frozen=True)
class ContinuousFunction:
    """One continuous benchmark: callable plus paper domain/range."""

    name: str
    func: Callable[[np.ndarray], np.ndarray]
    domain: Tuple[float, float]
    output_range: Tuple[float, float]


def _denoise(x: np.ndarray) -> np.ndarray:
    return 0.81 * np.exp(-(x**2))


CONTINUOUS_FUNCTIONS: Dict[str, ContinuousFunction] = {
    "cos": ContinuousFunction("cos", np.cos, (0.0, np.pi / 2), (0.0, 1.0)),
    "tan": ContinuousFunction(
        "tan", np.tan, (0.0, 2 * np.pi / 5), (0.0, 3.08)
    ),
    "exp": ContinuousFunction("exp", np.exp, (0.0, 3.0), (0.0, 20.09)),
    "ln": ContinuousFunction("ln", np.log, (1.0, 10.0), (0.0, 2.30)),
    "erf": ContinuousFunction("erf", _erf, (0.0, 3.0), (0.0, 1.0)),
    "denoise": ContinuousFunction(
        "denoise", _denoise, (0.0, 3.0), (0.0, 0.81)
    ),
}


def continuous_table(
    name: str,
    scheme: QuantizationScheme,
    probabilities: Optional[np.ndarray] = None,
) -> TruthTable:
    """Quantize one of the six continuous benchmarks under a scheme."""
    if name not in CONTINUOUS_FUNCTIONS:
        raise ConfigurationError(
            f"unknown continuous benchmark {name!r}; "
            f"choose from {sorted(CONTINUOUS_FUNCTIONS)}"
        )
    bench = CONTINUOUS_FUNCTIONS[name]
    return quantize_real_function(
        bench.func, scheme, bench.domain, bench.output_range, probabilities
    )
