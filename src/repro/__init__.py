"""repro — Ising-model approximate disjoint decomposition (DAC 2024).

A full Python reproduction of *"Efficient Approximate Decomposition
Solver using Ising Model"* (Xiao, Zhang, Qian, Han, Qian; DAC 2024):
column-based approximate disjoint Boolean decomposition solved with a
ballistic simulated-bifurcation Ising solver, plus every substrate and
baseline the paper's evaluation depends on.

Quick start
-----------
>>> from repro import IsingDecomposer, FrameworkConfig
>>> from repro.workloads import build_workload
>>> workload = build_workload("cos", n_inputs=8)
>>> config = FrameworkConfig(mode="joint", free_size=workload.free_size,
...                          n_partitions=4, n_rounds=1, seed=0)
>>> result = IsingDecomposer(config).decompose(workload.table)
>>> result.med >= 0 and result.compression_ratio > 1
True

Package map
-----------
``repro.boolean``    truth tables, Boolean matrices, Theorems 1/2
``repro.ising``      Ising models, QUBO, bSB/aSB/dSB/SA/brute solvers
``repro.ilp``        0-1 branch-and-bound (the Gurobi substitute)
``repro.core``       the paper's contribution (Eqs. 3-16, Sec. 3.3)
``repro.baselines``  DALTA, DALTA-ILP, BA
``repro.lut``        LUT-cascade construction and cost model
``repro.workloads``  the 10 paper benchmarks
``repro.analysis``   Table-1 / Figure-4 / ablation experiment harness
``repro.service``    durable job queue + content-addressed design cache
"""

from repro.boolean import (
    BooleanMatrix,
    ColumnSetting,
    InputPartition,
    RowSetting,
    TruthTable,
)
from repro.boolean.metrics import error_rate, mean_error_distance
from repro.core import (
    CoreCOPSolver,
    CoreSolverConfig,
    DecompositionResult,
    FrameworkConfig,
    IsingDecomposer,
)
from repro.errors import ReproError
from repro.ising import (
    BallisticSBSolver,
    BipartiteDecompositionModel,
    DenseIsingModel,
    EnergyVarianceStop,
    SimulatedAnnealingSolver,
)
from repro.lut import LutCascadeDesign, build_cascade_design
from repro._version import package_version

__version__ = package_version()

__all__ = [
    "BallisticSBSolver",
    "BipartiteDecompositionModel",
    "BooleanMatrix",
    "ColumnSetting",
    "CoreCOPSolver",
    "CoreSolverConfig",
    "DecompositionResult",
    "DenseIsingModel",
    "EnergyVarianceStop",
    "FrameworkConfig",
    "InputPartition",
    "IsingDecomposer",
    "LutCascadeDesign",
    "ReproError",
    "RowSetting",
    "SimulatedAnnealingSolver",
    "TruthTable",
    "build_cascade_design",
    "error_rate",
    "mean_error_distance",
    "__version__",
]
