"""Wire schema of the worker plane (``POST /v1/workers/*``).

Every verb is a JSON ``POST`` whose body carries at least the calling
worker's id; ownership-scoped verbs add the job id and are answered
409 when the caller no longer holds the claim (lease expired, job
recovered or finished elsewhere) — the agent must then abandon the
attempt, never report it failed.

Verbs::

    claim       {worker, wait?}            -> 200 ClaimGrant | 204 empty
    heartbeat   {worker, job_id}           -> 200 | 409
    checkpoint  {worker, job_id, checkpoint} -> 200 | 409
    complete    {worker, job_id, artifact_key,
                 design?, meta?, med?, runtime_seconds?, cache_hit?}
                                           -> 200 CompletionReceipt
    fail        {worker, job_id, error}    -> 200 {result, state}

``complete`` is idempotent, keyed by the artifact key: the design is
content-addressed and bit-deterministic, so replays (network retry,
two workers racing one job) converge — the first transition wins and
every other caller receives ``already_done`` or ``superseded`` with
status 200.  An empty-queue ``claim`` long-polls server-side up to the
gateway's ``claim_wait_seconds`` and then answers **204** with a
``Retry-After`` header and no body, so idle agents cost one parked
request instead of a poll storm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ServiceError
from repro.service.jobstore import JobRecord

__all__ = ["WORKER_VERBS", "ClaimGrant", "CompletionReceipt"]

#: the complete worker-plane verb set, as routed by the gateway
WORKER_VERBS: Tuple[str, ...] = (
    "claim", "heartbeat", "checkpoint", "complete", "fail",
)

#: every result string a ``complete`` call can come back with
COMPLETION_RESULTS: Tuple[str, ...] = (
    "completed", "already_done", "superseded",
)


@dataclass(frozen=True)
class ClaimGrant:
    """A successful claim: the job, its lease, and any checkpoint.

    ``checkpoint`` is the stored crash-recovery payload for the job's
    artifact key (``None`` when the attempt starts fresh) — shipping it
    with the grant is what lets a job abandoned by one remote worker
    resume bit-identically on the next, without the new worker having
    filesystem access to the gateway's store.
    """

    job: JobRecord
    lease_seconds: float
    checkpoint: Optional[Dict] = None

    @classmethod
    def from_payload(cls, payload: Dict) -> "ClaimGrant":
        try:
            return cls(
                job=JobRecord.from_dict(payload["job"]),
                lease_seconds=float(payload["lease_seconds"]),
                checkpoint=payload.get("checkpoint"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(
                f"malformed claim grant: {exc}"
            ) from exc


@dataclass(frozen=True)
class CompletionReceipt:
    """The gateway's answer to ``complete`` (idempotent, always 200)."""

    result: str
    state: str

    @property
    def accepted(self) -> bool:
        """True when the job is durably done (by whichever path)."""
        return self.result in ("completed", "already_done")

    @classmethod
    def from_payload(cls, payload: Dict) -> "CompletionReceipt":
        result = payload.get("result")
        if result not in COMPLETION_RESULTS:
            raise ServiceError(
                f"malformed completion receipt: result={result!r}"
            )
        return cls(result=result, state=str(payload.get("state", "")))
