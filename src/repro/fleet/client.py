"""Typed client for the worker plane (extends :class:`GatewayClient`).

:class:`FleetClient` adds the ``/v1/workers/*`` verbs and the two read
endpoints agents need (``GET /v1/artifacts/{key}``,
``GET /v1/workers``) on top of the submitter surface it inherits.

Connection handling, backoff, and error typing come from the shared
:class:`~repro.gateway.transport.HttpTransport` base (via
:class:`GatewayClient`), so the worker plane retries exactly like the
submitter plane.  Transport semantics worth knowing:

* ``claim`` uses the raw request path so an empty-queue **204** maps to
  ``None`` instead of a JSON-parse error; the socket timeout is padded
  past the requested long-poll wait so a parked claim is not mistaken
  for a dead gateway.
* ownership conflicts (**409**) are *not* retried — they mean the
  caller lost its lease, and the right reaction is to abandon the
  attempt, so they surface immediately as
  :class:`~repro.errors.GatewayError` with ``status=409``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.errors import GatewayError
from repro.fleet.protocol import ClaimGrant, CompletionReceipt
from repro.gateway.client import _TERMINAL, GatewayClient
from repro.service.jobstore import JobRecord, WorkerRecord

__all__ = ["FleetClient"]


class FleetClient(GatewayClient):
    """One remote worker's view of a gateway (see module docs)."""

    def claim(
        self, worker: str, wait: Optional[float] = None
    ) -> Optional[ClaimGrant]:
        """Claim the next runnable job (long-polling server-side).

        Returns ``None`` when the queue stayed empty for the whole
        wait (HTTP 204).  ``wait`` may lower the server's configured
        long-poll cap, never raise it.
        """
        payload: Dict = {"worker": worker}
        if wait is not None:
            payload["wait"] = float(wait)
        status, _, data = self._request(
            "POST", "/v1/workers/claim", payload
        )
        if status == 204 or not data:
            return None
        parsed = self._decode_json(data, "/v1/workers/claim", status)
        return ClaimGrant.from_payload(parsed)

    def heartbeat(self, worker: str, job_id: str) -> Dict:
        """Renew the lease on an owned running job (409 = lost it)."""
        return self._request_json(
            "POST",
            "/v1/workers/heartbeat",
            {"worker": worker, "job_id": job_id},
        )

    def checkpoint(
        self, worker: str, job_id: str, checkpoint: Dict
    ) -> Dict:
        """Ship a crash-recovery checkpoint (also renews the lease)."""
        return self._request_json(
            "POST",
            "/v1/workers/checkpoint",
            {
                "worker": worker,
                "job_id": job_id,
                "checkpoint": checkpoint,
            },
        )

    def complete(
        self,
        worker: str,
        job_id: str,
        artifact_key: str,
        *,
        design: Optional[Dict] = None,
        meta: Optional[Dict] = None,
        med: Optional[float] = None,
        runtime_seconds: Optional[float] = None,
        cache_hit: bool = False,
    ) -> CompletionReceipt:
        """Report a finished attempt (idempotent; see protocol docs)."""
        payload = self._request_json(
            "POST",
            "/v1/workers/complete",
            {
                "worker": worker,
                "job_id": job_id,
                "artifact_key": artifact_key,
                "design": design,
                "meta": meta,
                "med": med,
                "runtime_seconds": runtime_seconds,
                "cache_hit": cache_hit,
            },
        )
        return CompletionReceipt.from_payload(payload)

    def fail(self, worker: str, job_id: str, error: str) -> Dict:
        """Report a crashed/cancelled attempt; the scheduler routes it."""
        return self._request_json(
            "POST",
            "/v1/workers/fail",
            {"worker": worker, "job_id": job_id, "error": error},
        )

    def artifact(self, key: str) -> Optional[Dict]:
        """The stored envelope for ``key``, or ``None`` on a miss."""
        try:
            return self._request_json("GET", f"/v1/artifacts/{key}")
        except GatewayError as exc:
            if exc.status == 404:
                return None
            raise

    def wait_many(
        self,
        job_ids: Sequence[str],
        poll_seconds: float = 0.25,
        timeout_seconds: Optional[float] = None,
    ) -> List[JobRecord]:
        """Poll until *every* job reaches a terminal state.

        Returns records in the order of ``job_ids``.  One shared
        deadline covers the whole set — this is the partition
        coordinator's per-round fan-in, where the round is only as done
        as its slowest subproblem.  Raises :class:`GatewayError`
        (status 0) naming the still-pending jobs on timeout.
        """
        deadline = (
            None
            if timeout_seconds is None
            else time.monotonic() + timeout_seconds
        )
        records: Dict[str, JobRecord] = {}
        pending = list(dict.fromkeys(job_ids))
        while pending:
            still_pending = []
            for job_id in pending:
                record = self.job(job_id)
                if record.state in _TERMINAL:
                    records[job_id] = record
                else:
                    still_pending.append(job_id)
            pending = still_pending
            if not pending:
                break
            if deadline is not None and time.monotonic() >= deadline:
                raise GatewayError(
                    f"timed out waiting for {len(pending)} of "
                    f"{len(set(job_ids))} jobs "
                    f"(pending: {', '.join(pending)})",
                    status=0,
                )
            self._sleep(poll_seconds)
        return [records[job_id] for job_id in job_ids]

    def workers(self) -> List[WorkerRecord]:
        """The gateway's fleet registry (every worker ever seen)."""
        data = self._request_json("GET", "/v1/workers")
        return [
            WorkerRecord.from_dict(entry) for entry in data["workers"]
        ]
