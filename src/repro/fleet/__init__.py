"""repro.fleet — the remote worker plane over the HTTP gateway.

Until this package, every worker lived inside the single ``serve``
process (threads, or supervised child processes) against one local
store — the ceiling was one box.  The fleet subsystem turns the queue
into a multi-machine plane while keeping artifacts byte-identical to
local execution:

* **Worker protocol** (``POST /v1/workers/claim|heartbeat|checkpoint|
  complete|fail`` on the gateway, :mod:`repro.fleet.protocol`): the
  existing lease/orphan-recovery semantics of the job store, exposed
  over HTTP with a long-poll claim, a separate rate-limit class, and
  idempotent completion keyed by artifact key.
* **Remote worker agent** (:class:`RemoteWorkerAgent`, CLI
  ``repro work --remote URL``): claims jobs, executes them through the
  unchanged :class:`~repro.service.worker.JobExecutor` (checkpoint
  cadence, numeric guards, and fault seams intact), and ships
  checkpoints back through the gateway so a crashed remote worker's
  job resumes bit-identically on any other worker.
* **Autoscaler** (:class:`PoolAutoscaler`, CLI ``serve
  --min-workers/--max-workers``): queue-depth-driven elasticity for
  the local pool; with ``serve --dispatch-only`` the gateway owns the
  store but runs no local workers at all — remote agents do the work.
"""

from repro.fleet.agent import AgentStats, RemoteWorkerAgent
from repro.fleet.autoscaler import PoolAutoscaler
from repro.fleet.client import FleetClient
from repro.fleet.protocol import ClaimGrant, CompletionReceipt

__all__ = [
    "AgentStats",
    "ClaimGrant",
    "CompletionReceipt",
    "FleetClient",
    "PoolAutoscaler",
    "RemoteWorkerAgent",
]
