"""Queue-depth-driven autoscaling of the local worker pool.

:class:`PoolAutoscaler` replaces the fixed ``n_workers`` of a
``serve`` process with a control loop: every tick it compares the
queue depth (queued + running jobs) against the number of live worker
*units* and scales between ``min_workers`` and ``max_workers``.

A unit is one single-thread :class:`~repro.service.worker.WorkerPool`
with a unique name (``<name>-u<counter>``), so every scale-up gets a
fresh worker identity in the store's registry and quarantine
accounting stays per-distinct-worker.  Scale-*down* is asynchronous:
the retiring unit gets :meth:`~repro.service.worker.WorkerPool.request_stop`
(finish the current job, then exit) and is reaped on a later tick —
the control loop never blocks on a solve in progress.

Scale-up is immediate when depth exceeds live units; scale-down only
fires after the queue has been at-or-below the target for
``scale_down_idle_seconds``, which keeps a bursty queue from thrashing
worker churn.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

from repro.errors import ServiceError
from repro.obs.logconfig import get_logger
from repro.obs.metrics import get_metrics
from repro.service.scheduler import Scheduler
from repro.service.worker import JobExecutor, WorkerPool

logger = get_logger("repro.fleet.autoscaler")

__all__ = ["PoolAutoscaler"]


class PoolAutoscaler:
    """Elastic pool of single-worker units over one scheduler.

    Parameters
    ----------
    scheduler, executor:
        Shared by every unit (same objects the fixed pool would use).
    min_workers, max_workers:
        Inclusive bounds on live units; ``min_workers`` may be 0
        (fully elastic — nothing runs while the queue is empty).
    interval_seconds:
        Control-loop tick.
    scale_down_idle_seconds:
        How long the queue must stay at-or-below the live-unit count
        before one unit is retired.
    name:
        Prefix of unit worker names.
    make_pool:
        Injectable unit factory (tests); defaults to a 1-thread
        :class:`WorkerPool`.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        executor: JobExecutor,
        min_workers: int = 0,
        max_workers: int = 4,
        *,
        interval_seconds: float = 0.25,
        scale_down_idle_seconds: float = 2.0,
        name: str = "svc",
        make_pool: Optional[Callable[[str], WorkerPool]] = None,
    ) -> None:
        if min_workers < 0:
            raise ServiceError(
                f"min_workers must be >= 0, got {min_workers}"
            )
        if max_workers < max(1, min_workers):
            raise ServiceError(
                f"max_workers must be >= max(1, min_workers), got "
                f"{max_workers} (min {min_workers})"
            )
        self.scheduler = scheduler
        self.executor = executor
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.interval_seconds = interval_seconds
        self.scale_down_idle_seconds = scale_down_idle_seconds
        self.name = name
        self._make_pool = (
            make_pool if make_pool is not None else self._default_pool
        )
        self._units: List[WorkerPool] = []
        self._retiring: List[WorkerPool] = []
        self._counter = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._busy_since: Optional[float] = None

    def _default_pool(self, unit_name: str) -> WorkerPool:
        return WorkerPool(
            self.scheduler, self.executor, n_workers=1, name=unit_name
        )

    # -- introspection -------------------------------------------------

    @property
    def n_live(self) -> int:
        """Units currently serving (retiring ones excluded)."""
        return len(self._units)

    def snapshot(self) -> Dict:
        """Control-loop state for status displays and tests."""
        return {
            "live": len(self._units),
            "retiring": sum(1 for u in self._retiring if u.alive),
            "min": self.min_workers,
            "max": self.max_workers,
            "spawned_total": self._counter,
        }

    # -- control loop --------------------------------------------------

    def _depth(self) -> Optional[int]:
        try:
            counts = self.scheduler.store.counts()
        except Exception as exc:  # noqa: BLE001 — store may be locked
            logger.warning("autoscaler: cannot read depth (%s)", exc)
            return None
        return counts["queued"] + counts["running"]

    def _spawn(self) -> None:
        unit_name = f"{self.name}-u{self._counter}"
        self._counter += 1
        unit = self._make_pool(unit_name)
        unit.start()
        self._units.append(unit)
        logger.info(
            "autoscaler: scaled up to %d unit(s) (+%s)",
            len(self._units), unit_name,
        )
        get_metrics().counter(
            "fleet_scale_ups_total", help="worker units started"
        ).inc()

    def _retire(self) -> None:
        unit = self._units.pop()
        unit.request_stop()
        self._retiring.append(unit)
        logger.info(
            "autoscaler: scaling down to %d unit(s)", len(self._units)
        )
        get_metrics().counter(
            "fleet_scale_downs_total", help="worker units retired"
        ).inc()

    def tick(self, now: Optional[float] = None) -> None:
        """One control-loop step (public for deterministic tests)."""
        now = time.monotonic() if now is None else now
        self._retiring = [u for u in self._retiring if u.alive]
        depth = self._depth()
        if depth is None:
            return
        target = min(self.max_workers, max(self.min_workers, depth))
        live = len(self._units)
        if target > live:
            self._busy_since = now
            for _ in range(target - live):
                self._spawn()
        elif live > target:
            if self._busy_since is None:
                self._busy_since = now
            elif now - self._busy_since >= self.scale_down_idle_seconds:
                self._retire()
                self._busy_since = now
        else:
            self._busy_since = None
        get_metrics().gauge(
            "fleet_pool_units", help="live autoscaled worker units"
        ).set(len(self._units))

    def _loop(self) -> None:
        while not self._stop.is_set():
            self.tick()
            self._stop.wait(self.interval_seconds)

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "PoolAutoscaler":
        """Start the control loop (and the minimum units) in background."""
        if self._thread is not None:
            raise ServiceError("autoscaler already started")
        for _ in range(self.min_workers):
            self._spawn()
        self._thread = threading.Thread(
            target=self._loop, name=f"{self.name}-autoscaler",
            daemon=True,
        )
        self._thread.start()
        return self

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until :meth:`stop` is requested (or ``timeout``)."""
        return self._stop.wait(timeout)

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        """Stop the loop and every unit (joins current jobs)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        for unit in self._units + self._retiring:
            unit.request_stop()
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        for unit in self._units + self._retiring:
            while unit.alive:
                if deadline is not None and time.monotonic() > deadline:
                    break
                time.sleep(0.01)
        self._units = []
        self._retiring = []
