"""The remote worker agent behind ``repro work --remote URL``.

:class:`RemoteWorkerAgent` is the worker half of the fleet protocol: a
loop that claims jobs from a gateway, executes them through the exact
same :class:`~repro.service.worker.JobExecutor` the local pool uses,
and reports back over HTTP.  The executor never learns it is remote —
it talks to a :class:`_RemoteArtifacts` proxy that routes its artifact
surface through the gateway:

===================  ================================================
executor call        remote behavior
===================  ================================================
``get``              ``GET /v1/artifacts/{key}`` (cache re-check)
``get_checkpoint``   the payload seeded by the claim grant
``put_checkpoint``   ``POST /v1/workers/checkpoint`` (renews lease)
``put``              buffered in memory, shipped with ``complete``
``delete_checkpoint``  no-op — the gateway deletes on ``complete``
===================  ================================================

Because checkpoints travel through the gateway, a job abandoned by a
crashed remote worker resumes **bit-identically** on whichever worker
(remote or local) claims it next — same determinism contract as the
local pool, now across machines.

Ownership is enforced server-side: any 409 from heartbeat/checkpoint
means this agent lost its lease, and the attempt is *abandoned* (no
``fail`` report — the job already belongs to someone else).  A gateway
that stops answering mid-attempt has the same effect via lease expiry.

``--isolated`` mode runs each attempt in a child **process** (the
remote analog of :class:`~repro.service.supervisor.WorkerSupervisor`):
a child killed by a hard fault (``worker.die``, OOM, segfault) is
observed by the agent, which reports the attempt failed so the
scheduler can route it — idempotent completion makes the report safe
even if the child actually finished first.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import GatewayError, ReproError
from repro.fleet.client import FleetClient
from repro.fleet.protocol import ClaimGrant
from repro.obs.logconfig import get_logger
from repro.obs.metrics import get_metrics
from repro.resilience import (
    FaultPlan,
    active_fault_plan,
    install_fault_plan,
)
from repro.serialization import result_to_dict
from repro.service.jobstore import JobRecord
from repro.service.worker import DEFAULT_CHECKPOINT_EVERY, JobExecutor

logger = get_logger("repro.fleet.agent")

__all__ = ["RemoteWorkerAgent", "AgentStats"]


class _LeaseLost(ReproError):
    """This agent no longer owns the job; abandon the attempt."""


class _RemoteArtifacts:
    """Gateway-backed stand-in for the executor's artifact store."""

    def __init__(self, client: FleetClient, worker_id: str) -> None:
        self._client = client
        self._worker = worker_id
        self._job: Optional[JobRecord] = None
        self._seed_checkpoint: Optional[Dict] = None
        self.envelope: Optional[Dict] = None

    def bind(self, grant: ClaimGrant) -> None:
        """Point the proxy at one claimed job."""
        self._job = grant.job
        self._seed_checkpoint = grant.checkpoint
        self.envelope = None

    def get(self, key: str) -> Optional[Dict]:
        return self._client.artifact(key)

    def get_checkpoint(self, key: str) -> Optional[Dict]:
        return self._seed_checkpoint

    def put_checkpoint(self, key: str, payload: Dict) -> None:
        assert self._job is not None
        try:
            self._client.checkpoint(
                self._worker, self._job.id, payload
            )
        except GatewayError as exc:
            if exc.status == 409:
                raise _LeaseLost(
                    f"lease on job {self._job.id} lost while shipping "
                    f"a checkpoint: {exc}"
                ) from exc
            raise

    def delete_checkpoint(self, key: str) -> bool:
        # the gateway owns checkpoint lifecycle; it deletes on complete
        return False

    def put(self, key: str, result, meta: Optional[Dict] = None) -> Dict:
        design = result if isinstance(result, dict) else (
            result_to_dict(result)
        )
        self.envelope = {"design": design, "meta": dict(meta or {})}
        return self.envelope


@dataclass
class AgentStats:
    """Counters one agent accumulates over its lifetime."""

    claims: int = 0
    completed: int = 0
    cache_hits: int = 0
    failed: int = 0
    abandoned: int = 0
    superseded: int = 0
    empty_claims: int = 0
    resumed: int = 0

    def to_dict(self) -> Dict:
        return dict(self.__dict__)


def _default_worker_id() -> str:
    return f"remote-{socket.gethostname()}-{os.getpid()}"


class RemoteWorkerAgent:
    """Claim/execute/report loop against one gateway (module docs).

    Parameters
    ----------
    url:
        Gateway base URL (ignored when ``client`` is given).
    token:
        Bearer token matching the gateway's ``auth_token``.
    worker_id:
        Stable identity for leases and the fleet registry; defaults to
        ``remote-<host>-<pid>``.
    client:
        Injectable pre-built :class:`FleetClient` (tests).
    decompose_fn:
        Pluggable decomposition function (tests); default runs the
        real framework.
    checkpoint_every:
        Checkpoint cadence in components (``None`` disables).
    heartbeat_seconds:
        Minimum interval between heartbeat requests — progress events
        fire far more often than a lease needs renewing, and every
        remote heartbeat is an HTTP round trip.
    claim_wait:
        Per-request cap on the server's claim long-poll (``None``
        uses the gateway's configured wait).
    drain:
        Exit once the queue is empty instead of parking forever.
    isolated:
        Run each attempt in a child process (hard-fault isolation).
    poll_seconds:
        Sleep between claim attempts when the gateway is unreachable
        or answered 204 without a ``Retry-After`` hint.
    """

    def __init__(
        self,
        url: str = "",
        *,
        token: Optional[str] = None,
        worker_id: Optional[str] = None,
        client: Optional[FleetClient] = None,
        decompose_fn=None,
        checkpoint_every: Optional[int] = DEFAULT_CHECKPOINT_EVERY,
        heartbeat_seconds: float = 5.0,
        claim_wait: Optional[float] = None,
        drain: bool = False,
        isolated: bool = False,
        poll_seconds: float = 0.25,
        start_method: Optional[str] = None,
    ) -> None:
        self.worker_id = (
            worker_id if worker_id else _default_worker_id()
        )
        if client is not None:
            self.client = client
        else:
            # pad the socket timeout past the long-poll so a parked
            # claim is not mistaken for a dead gateway
            timeout = 30.0 + (claim_wait if claim_wait else 30.0)
            self.client = FleetClient(
                url, token=token, timeout_seconds=timeout
            )
        self.heartbeat_seconds = heartbeat_seconds
        self.claim_wait = claim_wait
        self.drain = drain
        self.isolated = isolated
        self.poll_seconds = poll_seconds
        self.checkpoint_every = checkpoint_every
        self.stats = AgentStats()
        self._artifacts = _RemoteArtifacts(self.client, self.worker_id)
        self._executor = JobExecutor(
            self._artifacts,
            decompose_fn=decompose_fn,
            checkpoint_every=checkpoint_every,
        )
        self._stop = threading.Event()
        self._mp = multiprocessing.get_context(start_method)

    # -- lifecycle -----------------------------------------------------

    def stop(self) -> None:
        """Ask the run loop to exit after the current attempt."""
        self._stop.set()

    def run(self, max_jobs: Optional[int] = None) -> AgentStats:
        """Serve until stopped (or drained / ``max_jobs`` executed)."""
        logger.info(
            "remote worker %s serving %s%s",
            self.worker_id,
            self.client.base_url,
            " (isolated)" if self.isolated else "",
        )
        while not self._stop.is_set():
            if max_jobs is not None and self.stats.claims >= max_jobs:
                break
            try:
                grant = self.client.claim(
                    self.worker_id, wait=self.claim_wait
                )
            except GatewayError as exc:
                if self._stop.is_set():
                    break
                logger.warning(
                    "worker %s: claim failed (%s); backing off",
                    self.worker_id, exc,
                )
                self._stop.wait(max(self.poll_seconds, 0.05))
                continue
            if grant is None:
                self.stats.empty_claims += 1
                if self.drain and self._queue_empty():
                    break
                self._stop.wait(self.poll_seconds)
                continue
            self.stats.claims += 1
            if self.isolated:
                self._run_isolated(grant)
            else:
                self._run_attempt(grant)
        logger.info(
            "remote worker %s exiting: %s",
            self.worker_id, self.stats.to_dict(),
        )
        return self.stats

    def _queue_empty(self) -> bool:
        try:
            return int(self.client.healthz().get("pending", 1)) == 0
        except GatewayError:
            return False  # can't tell; keep polling

    # -- one attempt ---------------------------------------------------

    def _run_attempt(self, grant: ClaimGrant) -> None:
        job = grant.job
        self._artifacts.bind(grant)
        last_beat = time.monotonic()

        def heartbeat() -> None:
            nonlocal last_beat
            now = time.monotonic()
            if now - last_beat < self.heartbeat_seconds:
                return
            try:
                self.client.heartbeat(self.worker_id, job.id)
            except GatewayError as exc:
                if exc.status == 409:
                    raise _LeaseLost(
                        f"lease on job {job.id} lost: {exc}"
                    ) from exc
                # unreachable gateway: keep computing — the next
                # checkpoint/complete settles ownership either way
                logger.warning(
                    "worker %s: heartbeat for %s failed (%s)",
                    self.worker_id, job.id, exc,
                )
            last_beat = now

        try:
            outcome = self._executor.execute(job, heartbeat=heartbeat)
        except _LeaseLost as exc:
            self.stats.abandoned += 1
            get_metrics().counter(
                "fleet_attempts_abandoned_total",
                help="remote attempts abandoned after losing the lease",
            ).inc()
            logger.warning("worker %s: %s", self.worker_id, exc)
            return
        except Exception as exc:  # noqa: BLE001 — crash/timeout boundary
            self._report_failure(job, exc)
            return
        envelope = self._artifacts.envelope
        try:
            receipt = self.client.complete(
                self.worker_id,
                job.id,
                job.artifact_key,
                design=(
                    None if envelope is None else envelope["design"]
                ),
                meta=None if envelope is None else envelope["meta"],
                med=outcome.med,
                runtime_seconds=outcome.runtime_seconds,
                cache_hit=outcome.cache_hit,
            )
        except GatewayError as exc:
            # the gateway vanished between execute and complete; the
            # lease will expire and the job re-runs deterministically
            self.stats.abandoned += 1
            logger.warning(
                "worker %s: complete for %s failed (%s); abandoning",
                self.worker_id, job.id, exc,
            )
            return
        if receipt.accepted:
            self.stats.completed += 1
            if outcome.cache_hit:
                self.stats.cache_hits += 1
            if outcome.resumed_from_checkpoint:
                self.stats.resumed += 1
            get_metrics().counter(
                "fleet_jobs_completed_total",
                help="jobs completed by this remote agent",
            ).inc()
        else:
            self.stats.superseded += 1

    def _report_failure(self, job: JobRecord, exc: Exception) -> None:
        self.stats.failed += 1
        get_metrics().counter(
            "fleet_attempts_failed_total",
            help="remote attempts that crashed or timed out",
        ).inc()
        logger.warning(
            "worker %s: job %s attempt failed: %s",
            self.worker_id, job.id, exc,
        )
        try:
            self.client.fail(
                self.worker_id, job.id, f"{type(exc).__name__}: {exc}"
            )
        except GatewayError as report_exc:
            logger.warning(
                "worker %s: failure report for %s not delivered (%s); "
                "lease expiry will recover the job",
                self.worker_id, job.id, report_exc,
            )

    # -- isolated mode -------------------------------------------------

    def _run_isolated(self, grant: ClaimGrant) -> None:
        plan = active_fault_plan()
        process = self._mp.Process(
            target=_isolated_attempt_main,
            args=(
                self.client.base_url,
                self.client.token,
                self.worker_id,
                {
                    "job": grant.job.to_dict(),
                    "checkpoint": grant.checkpoint,
                    "lease_seconds": grant.lease_seconds,
                },
                self.checkpoint_every,
                self.heartbeat_seconds,
                None if plan is None else plan.to_spec(),
            ),
            name=f"{self.worker_id}-attempt",
            daemon=True,
        )
        process.start()
        process.join()
        if process.exitcode == 0:
            # the child reported its own outcome (complete or fail)
            return
        # hard death (worker.die, OOM, segfault): report on its behalf
        # — idempotent completion makes this safe even if the child
        # actually finished before dying
        logger.warning(
            "worker %s: isolated attempt for %s died with exit code "
            "%s; reporting failure",
            self.worker_id, grant.job.id, process.exitcode,
        )
        get_metrics().counter(
            "fleet_isolated_deaths_total",
            help="isolated attempt processes that died uncleanly",
        ).inc()
        self._report_failure(
            grant.job,
            RuntimeError(
                f"attempt process died (exit {process.exitcode})"
            ),
        )


def _isolated_attempt_main(
    url: str,
    token: Optional[str],
    worker_id: str,
    grant_payload: Dict,
    checkpoint_every: Optional[int],
    heartbeat_seconds: float,
    fault_spec: Optional[Dict],
) -> None:
    """Entry point of one isolated attempt process.

    Module-level so every multiprocessing start method can pickle it.
    Executes exactly one already-claimed grant and reports the outcome
    itself; a clean exit means the report was attempted, any other
    exit code means the parent must report.
    """
    if fault_spec is not None:
        install_fault_plan(FaultPlan.from_spec(fault_spec))
    agent = RemoteWorkerAgent(
        url,
        token=token,
        worker_id=worker_id,
        checkpoint_every=checkpoint_every,
        heartbeat_seconds=heartbeat_seconds,
    )
    agent._run_attempt(ClaimGrant.from_payload(grant_payload))
