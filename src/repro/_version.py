"""Single source of the package version string.

Kept free of any ``repro`` imports so low-level modules (logging setup,
exporters, artifact envelopes) can stamp provenance without import
cycles.  The installed distribution metadata wins when present; source
checkouts running off ``PYTHONPATH=src`` fall back to the pinned
constant (which mirrors ``pyproject.toml``).
"""

from __future__ import annotations

__all__ = ["__version__", "package_version"]

#: fallback for uninstalled source checkouts; keep in sync with pyproject
__version__ = "1.0.0"


def package_version() -> str:
    """The installed ``repro`` version, or the source fallback."""
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - py<3.8 has no stdlib metadata
        return __version__
    try:
        return version("repro")
    except PackageNotFoundError:
        return __version__
