"""Shared machinery for the row-based core COP (Theorem 1 view).

The row-based core COP fixes a partition and minimizes

    cost(V, S) = constant + sum_ij W_ij * O_hat_ij,

with ``O_hat`` row ``i`` equal to all-0s, all-1s, ``V``, or ``1 - V``
according to ``S_i`` (see
:class:`repro.boolean.decomposition.RowSetting`), and ``W`` the linear
error weights of :func:`repro.core.ising_formulation.linear_error_terms`.

Key structural fact exploited by every baseline: **given ``V``, the
optimal ``S`` is separable per row** — each row independently picks the
cheapest of the four types.  :func:`optimal_row_types` computes this in
one vectorized pass; the baselines differ only in how they search the
``2^c``-sized space of ``V``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.boolean.decomposition import RowSetting, RowType
from repro.errors import DimensionError, SolverError

__all__ = [
    "optimal_row_types",
    "row_cop_cost",
    "exhaustive_row_cop",
    "row_type_costs",
]


def row_type_costs(
    weights: np.ndarray, pattern: np.ndarray
) -> np.ndarray:
    """Per-row cost of each of the four row types, shape ``(r, 4)``.

    Column order follows :class:`RowType`: ZEROS, ONES, PATTERN,
    COMPLEMENT.
    """
    w = np.asarray(weights, dtype=float)
    v = np.asarray(pattern, dtype=float)
    if w.ndim != 2 or v.shape != (w.shape[1],):
        raise DimensionError(
            f"incompatible shapes: weights {w.shape}, pattern {v.shape}"
        )
    zeros = np.zeros(w.shape[0])
    ones = w.sum(axis=1)
    pattern_cost = w @ v
    complement_cost = ones - pattern_cost
    return np.stack([zeros, ones, pattern_cost, complement_cost], axis=1)


def optimal_row_types(
    weights: np.ndarray, pattern: np.ndarray
) -> Tuple[np.ndarray, float]:
    """Best row-type vector ``S`` for a fixed ``V`` and its variable cost.

    Ties resolve to the lowest :class:`RowType` value, making results
    deterministic.
    """
    costs = row_type_costs(weights, pattern)
    types = np.argmin(costs, axis=1).astype(np.int8)
    total = float(costs[np.arange(costs.shape[0]), types].sum())
    return types, total


def row_cop_cost(weights: np.ndarray, setting: RowSetting) -> float:
    """Variable cost ``sum_ij W_ij O_hat_ij`` of an explicit setting."""
    approx = setting.reconstruct().astype(float)
    return float((np.asarray(weights) * approx).sum())


def exhaustive_row_cop(
    weights: np.ndarray, max_cols: int = 20
) -> Tuple[RowSetting, float]:
    """Exact minimum over all ``2^c`` patterns (test oracle for tiny c).

    Raises :class:`~repro.errors.SolverError` beyond ``max_cols``
    columns.
    """
    w = np.asarray(weights, dtype=float)
    c = w.shape[1]
    if c > max_cols:
        raise SolverError(
            f"exhaustive search supports at most {max_cols} columns, got {c}"
        )
    best_setting = None
    best_cost = np.inf
    shifts = np.arange(c)
    for code in range(1 << c):
        pattern = ((code >> shifts) & 1).astype(np.uint8)
        types, cost = optimal_row_types(w, pattern)
        if cost < best_cost:
            best_cost = cost
            best_setting = RowSetting(pattern, types)
    return best_setting, best_cost


def majority_pattern(
    values: np.ndarray, probabilities: np.ndarray
) -> np.ndarray:
    """Probability-weighted per-column majority vote over matrix rows.

    A natural ``V`` candidate: the column-wise most likely bit.
    """
    v = np.asarray(values, dtype=float)
    p = np.asarray(probabilities, dtype=float)
    if v.shape != p.shape:
        raise DimensionError(
            f"values shape {v.shape} must match probabilities {p.shape}"
        )
    ones_mass = (p * v).sum(axis=0)
    total_mass = p.sum(axis=0)
    return (2.0 * ones_mass > total_mass).astype(np.uint8)
