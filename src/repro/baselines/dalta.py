"""The DALTA heuristic for the row-based core COP [Meng et al., ICCAD'21].

DALTA avoids the exponential search over the row pattern ``V`` by
drawing candidates from the structure of the instance itself.  The exact
candidate-generation procedure of the original C++ implementation is not
published; this reconstruction keeps its documented spirit — a small,
cheap pool of structurally informed candidates, each completed with the
per-row-optimal type vector:

* every *distinct row* of the exact Boolean matrix (capped at
  ``max_row_candidates``, preferring rows carrying the most probability
  mass) — a decomposable matrix's pattern rows are literal rows, so this
  pool contains the optimum whenever the instance is exactly or almost
  decomposable;
* the probability-weighted *majority-vote* row;
* the all-zeros row (with all-ones available through the complement row
  type).

Each candidate ``V`` is scored with
:func:`repro.baselines.row_core_cop.optimal_row_types` (per-row optimal
``S``), and the best pair wins.  The candidate pool is linear in the
matrix size, which is what makes DALTA fast — and suboptimal, which is
what the paper's Ising approach improves on.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.framework import RowSettingSolver, RowSolution
from repro.baselines.row_core_cop import majority_pattern, optimal_row_types
from repro.boolean.decomposition import RowSetting
from repro.errors import SolverError

__all__ = ["DaltaHeuristicSolver"]


class DaltaHeuristicSolver(RowSettingSolver):
    """Candidate-pool heuristic for the row-based core COP.

    Parameters
    ----------
    max_row_candidates:
        Cap on distinct matrix rows tried as ``V`` (highest-probability
        rows first).
    """

    def __init__(self, max_row_candidates: int = 64) -> None:
        if max_row_candidates <= 0:
            raise SolverError(
                "max_row_candidates must be positive, "
                f"got {max_row_candidates}"
            )
        self.max_row_candidates = int(max_row_candidates)

    def _candidates(self, weights: np.ndarray) -> List[np.ndarray]:
        """Build the ``V`` candidate pool from the weight matrix.

        The weights encode the exact values: in separate mode
        ``W_ij = p_ij (1 - 2 O_ij)``, so ``O_ij = (W_ij < 0)`` wherever
        ``p_ij > 0``; in joint mode the sign structure still tracks
        whether raising ``O_hat_ij`` hurts or helps.  The pool therefore
        uses the *sign rows* of ``W`` as the "matrix rows".
        """
        w = np.asarray(weights, dtype=float)
        implied = (w < 0).astype(np.uint8)
        magnitude = np.abs(w)

        # distinct implied rows, richest probability mass first
        _, first_indices = np.unique(implied, axis=0, return_index=True)
        mass = magnitude.sum(axis=1)
        order = sorted(first_indices, key=lambda i: -mass[i])
        pool = [implied[i] for i in order[: self.max_row_candidates]]

        pool.append(majority_pattern(implied, magnitude))
        pool.append(np.zeros(w.shape[1], dtype=np.uint8))
        return pool

    def solve_weights(
        self,
        weights: np.ndarray,
        constant: float,
        rng: Optional[np.random.Generator] = None,
    ) -> RowSolution:
        w = np.asarray(weights, dtype=float)
        best_setting = None
        best_cost = np.inf
        n_evaluations = 0
        for pattern in self._candidates(w):
            types, cost = optimal_row_types(w, pattern)
            n_evaluations += 1
            if cost < best_cost:
                best_cost = cost
                best_setting = RowSetting(pattern, types)
        return RowSolution(
            setting=best_setting,
            objective=best_cost + constant,
            n_evaluations=n_evaluations,
        )

    def __repr__(self) -> str:
        return (
            f"DaltaHeuristicSolver("
            f"max_row_candidates={self.max_row_candidates})"
        )
