"""Baseline approximate-decomposition methods the paper compares against.

All baselines operate on the *row-based* core COP (Theorem 1 view): for
one component under a fixed partition, choose the row pattern ``V`` and
the row-type vector ``S`` minimizing the introduced error.

* :mod:`repro.baselines.row_core_cop` — the shared machinery: given
  ``V``, the optimal ``S`` is separable per row (the row-based analogue
  of Theorem 3); plus exhaustive solving for tiny instances.
* :mod:`repro.baselines.dalta` — the DALTA heuristic [Meng et al. 2021]:
  pick ``V`` from a candidate pool built out of the matrix's own rows.
* :mod:`repro.baselines.dalta_ilp` — the exact ILP formulation solved by
  :mod:`repro.ilp` under a time budget (the paper's Gurobi setup).
* :mod:`repro.baselines.ba` — the simulated-annealing search over ``V``
  of [Qian et al., DATE 2023].
* :mod:`repro.baselines.framework` — the shared DALTA-style outer loop
  (P partitions, R rounds, MSB first) with a pluggable per-component
  solver, mirroring :class:`repro.core.framework.IsingDecomposer`.
"""

from repro.baselines.ba import BASolver
from repro.baselines.dalta import DaltaHeuristicSolver
from repro.baselines.dalta_ilp import DaltaIlpSolver, build_row_cop_ilp
from repro.baselines.framework import (
    BaselineDecomposer,
    RowComponentDecomposition,
    RowSolution,
    RowSettingSolver,
)
from repro.baselines.row_core_cop import (
    exhaustive_row_cop,
    optimal_row_types,
    row_cop_cost,
)

__all__ = [
    "BASolver",
    "BaselineDecomposer",
    "DaltaHeuristicSolver",
    "DaltaIlpSolver",
    "RowComponentDecomposition",
    "RowSettingSolver",
    "RowSolution",
    "build_row_cop_ilp",
    "exhaustive_row_cop",
    "optimal_row_types",
    "row_cop_cost",
]
