"""DALTA-ILP: the exact ILP formulation of the row-based core COP.

This is the paper's strongest accuracy baseline [Meng et al., ICCAD'21],
run through Gurobi with a 3600 s budget in the original evaluation; here
it runs through :mod:`repro.ilp`'s branch and bound with the same
anytime contract.

Formulation (0-based row types ZEROS, ONES, PATTERN, COMPLEMENT):

    min  sum_ij W_ij * O_hat_ij
    O_hat_ij = z_{i,ONES} + z_{i,PATTERN} * V_j
               + z_{i,COMPLEMENT} * (1 - V_j)
    sum_t z_{i,t} = 1                         (one type per row)
    z binary, V binary.

The bilinear terms are linearized with exact McCormick envelopes over
auxiliary continuous variables ``u2_ij = z_{i,PATTERN} V_j`` and
``u3_ij = z_{i,COMPLEMENT} (1 - V_j)`` — tight at binary vertices, so
the ILP optimum equals the true core-COP optimum.  Instance size is
``c + 4r`` binaries plus ``2rc`` continuous auxiliaries, which is why
this method scales poorly (the paper's Table 1 shows it hitting its
hour-long budget) while staying the accuracy reference.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.framework import RowSettingSolver, RowSolution
from repro.baselines.row_core_cop import optimal_row_types
from repro.boolean.decomposition import RowSetting
from repro.errors import SolverError
from repro.ilp import BranchAndBoundSolver, IlpBuilder, IntegerLinearProgram

__all__ = ["DaltaIlpSolver", "build_row_cop_ilp"]


def build_row_cop_ilp(weights: np.ndarray) -> IntegerLinearProgram:
    """Lower a row-based core COP to the ILP described above.

    Variable naming: ``V{j}``, ``z{i}_{t}`` (t in 0..3 following
    :class:`~repro.boolean.decomposition.RowType`), ``u2_{i}_{j}``,
    ``u3_{i}_{j}``.
    """
    w = np.asarray(weights, dtype=float)
    if w.ndim != 2:
        raise SolverError(f"weights must be 2-D, got ndim={w.ndim}")
    r, c = w.shape
    builder = IlpBuilder()

    for j in range(c):
        builder.add_binary(f"V{j}")
    for i in range(r):
        for t in range(4):
            builder.add_binary(f"z{i}_{t}")
        builder.add_equal({f"z{i}_{t}": 1.0 for t in range(4)}, 1.0)

    row_sums = w.sum(axis=1)
    for i in range(r):
        # O_hat contribution of the all-ones type
        builder.set_objective_term(f"z{i}_1", float(row_sums[i]))
        for j in range(c):
            coefficient = float(w[i, j])
            u2 = builder.add_variable(f"u2_{i}_{j}", 0.0, 1.0)
            u3 = builder.add_variable(f"u3_{i}_{j}", 0.0, 1.0)
            builder.set_objective_term(u2, coefficient)
            builder.set_objective_term(u3, coefficient)
            # u2 = z_{i,PATTERN} * V_j
            builder.add_less_equal({u2: 1.0, f"z{i}_2": -1.0}, 0.0)
            builder.add_less_equal({u2: 1.0, f"V{j}": -1.0}, 0.0)
            builder.add_greater_equal(
                {u2: 1.0, f"z{i}_2": -1.0, f"V{j}": -1.0}, -1.0
            )
            # u3 = z_{i,COMPLEMENT} * (1 - V_j)
            builder.add_less_equal({u3: 1.0, f"z{i}_3": -1.0}, 0.0)
            builder.add_less_equal({u3: 1.0, f"V{j}": 1.0}, 1.0)
            builder.add_greater_equal(
                {u3: 1.0, f"z{i}_3": -1.0, f"V{j}": 1.0}, 0.0
            )
    return builder.build()


class DaltaIlpSolver(RowSettingSolver):
    """Row-based core COP via branch and bound with a time budget.

    Parameters
    ----------
    time_limit:
        Per-COP wall-clock budget in seconds (the paper used 3600 s for
        Gurobi; benchmark configurations use seconds-scale budgets).
    node_limit:
        Branch-and-bound node cap.
    """

    def __init__(
        self, time_limit: float = 10.0, node_limit: int = 50_000
    ) -> None:
        self.time_limit = float(time_limit)
        self.node_limit = int(node_limit)

    def solve_weights(
        self,
        weights: np.ndarray,
        constant: float,
        rng: Optional[np.random.Generator] = None,
    ) -> RowSolution:
        w = np.asarray(weights, dtype=float)
        r, c = w.shape
        problem = build_row_cop_ilp(w)
        solver = BranchAndBoundSolver(
            time_limit=self.time_limit, node_limit=self.node_limit
        )
        result = solver.solve(problem)

        if result.x is not None:
            pattern = np.round(result.x[:c]).astype(np.uint8)
        else:  # pragma: no cover - rounding heuristic makes this unreachable
            pattern = np.zeros(c, dtype=np.uint8)
        # The per-row optimum for the decoded V is never worse than the
        # ILP incumbent's own type assignment.
        types, cost = optimal_row_types(w, pattern)
        return RowSolution(
            setting=RowSetting(pattern, types),
            objective=cost + constant,
            runtime_seconds=result.runtime_seconds,
            n_evaluations=result.n_nodes,
        )

    def __repr__(self) -> str:
        return (
            f"DaltaIlpSolver(time_limit={self.time_limit}, "
            f"node_limit={self.node_limit})"
        )
