"""The BA baseline: simulated annealing over the row pattern ``V``
[Qian et al., DATE 2023].

BA searches the ``2^c`` space of row patterns with Metropolis annealing:
a move flips one random bit of ``V``, the move cost is evaluated with
the per-row-optimal type vector (so the search space is exactly the
pattern space), and a geometric schedule cools the temperature.  The
paper reports BA as fast with accuracy between DALTA and DALTA-ILP,
which this implementation reproduces in the Table-1 benchmark.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.framework import RowSettingSolver, RowSolution
from repro.baselines.row_core_cop import optimal_row_types
from repro.boolean.decomposition import RowSetting
from repro.errors import SolverError
from repro.ising.schedules import GeometricCooling

__all__ = ["BASolver"]


class BASolver(RowSettingSolver):
    """Simulated annealing over row patterns with per-row optimal types.

    Parameters
    ----------
    n_moves:
        Total single-bit-flip proposals.
    t_initial / t_final:
        Annealing temperatures, rescaled by the mean |W| so acceptance
        behaves consistently across workloads.
    restarts:
        Independent annealing chains; the best result wins.
    """

    def __init__(
        self,
        n_moves: int = 2000,
        t_initial: float = 1.0,
        t_final: float = 1e-3,
        restarts: int = 1,
    ) -> None:
        if n_moves <= 0:
            raise SolverError(f"n_moves must be positive, got {n_moves}")
        if restarts <= 0:
            raise SolverError(f"restarts must be positive, got {restarts}")
        self.n_moves = int(n_moves)
        self.t_initial = float(t_initial)
        self.t_final = float(t_final)
        self.restarts = int(restarts)

    def solve_weights(
        self,
        weights: np.ndarray,
        constant: float,
        rng: Optional[np.random.Generator] = None,
    ) -> RowSolution:
        rng = np.random.default_rng(rng)
        w = np.asarray(weights, dtype=float)
        c = w.shape[1]
        scale = float(np.abs(w).mean()) * w.shape[0]
        if scale <= 0:
            scale = 1.0
        schedule = GeometricCooling(
            t_initial=self.t_initial * scale,
            t_final=self.t_final * scale,
            n_steps=self.n_moves,
        )

        best_setting = None
        best_cost = np.inf
        n_evaluations = 0

        for _ in range(self.restarts):
            pattern = rng.integers(0, 2, c, dtype=np.uint8)
            types, cost = optimal_row_types(w, pattern)
            n_evaluations += 1
            chain_best_pattern = pattern.copy()
            chain_best_types = types
            chain_best_cost = cost

            flip_positions = rng.integers(0, c, self.n_moves)
            thresholds = rng.random(self.n_moves)
            for move in range(self.n_moves):
                j = flip_positions[move]
                pattern[j] ^= 1
                new_types, new_cost = optimal_row_types(w, pattern)
                n_evaluations += 1
                delta = new_cost - cost
                temperature = schedule(move)
                if delta <= 0.0 or thresholds[move] < np.exp(
                    -delta / temperature
                ):
                    cost = new_cost
                    types = new_types
                    if cost < chain_best_cost:
                        chain_best_cost = cost
                        chain_best_pattern = pattern.copy()
                        chain_best_types = types
                else:
                    pattern[j] ^= 1  # reject: undo the flip

            if chain_best_cost < best_cost:
                best_cost = chain_best_cost
                best_setting = RowSetting(
                    chain_best_pattern, chain_best_types
                )

        return RowSolution(
            setting=best_setting,
            objective=best_cost + constant,
            n_evaluations=n_evaluations,
        )

    def __repr__(self) -> str:
        return (
            f"BASolver(n_moves={self.n_moves}, restarts={self.restarts})"
        )
