"""Shared DALTA-style outer loop for the row-based baselines.

Mirrors :class:`repro.core.framework.IsingDecomposer` exactly — ``P``
random candidate partitions per component, components optimized most
significant first, ``R`` rounds, identical acceptance rule — but the
per-(component, partition) inner solver is pluggable:
:class:`~repro.baselines.dalta.DaltaHeuristicSolver`,
:class:`~repro.baselines.dalta_ilp.DaltaIlpSolver`, or
:class:`~repro.baselines.ba.BASolver`.  Keeping the outer loop identical
is what makes the Table-1 / Figure-4 comparisons apples-to-apples: the
methods differ only in how they solve the core COP.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.boolean.decomposition import RowSetting
from repro.boolean.metrics import error_rate_per_output, mean_error_distance
from repro.boolean.partition import InputPartition
from repro.boolean.synthesis import apply_row_setting
from repro.boolean.truth_table import TruthTable
from repro.core.config import FrameworkConfig
from repro.core.ising_formulation import linear_error_terms
from repro.core.partitions import sample_partitions
from repro.errors import DimensionError

__all__ = [
    "RowSolution",
    "RowSettingSolver",
    "RowComponentDecomposition",
    "BaselineDecomposer",
]


@dataclass
class RowSolution:
    """Result of one row-based core-COP solve."""

    setting: RowSetting
    objective: float
    runtime_seconds: float = 0.0
    n_evaluations: int = 0


class RowSettingSolver(abc.ABC):
    """Inner solver of the row-based core COP under fixed weights."""

    @abc.abstractmethod
    def solve_weights(
        self,
        weights: np.ndarray,
        constant: float,
        rng: Optional[np.random.Generator] = None,
    ) -> RowSolution:
        """Minimize ``constant + sum W * O_hat`` over row settings.

        The returned :attr:`RowSolution.objective` must include
        ``constant`` (i.e. it is the true ER/MED value).
        """


@dataclass
class RowComponentDecomposition:
    """Accepted row-based decomposition of one output component."""

    component: int
    partition: InputPartition
    setting: RowSetting
    objective: float

    @property
    def lut_bits(self) -> int:
        """Cascade storage: ``c`` bits for phi (= V) plus ``2r`` for F."""
        return self.setting.n_cols + 2 * self.setting.n_rows


@dataclass
class BaselineDecompositionResult:
    """Mirror of :class:`repro.core.framework.DecompositionResult`."""

    exact: TruthTable
    approx: TruthTable
    components: Dict[int, RowComponentDecomposition]
    med: float
    error_rates: np.ndarray
    med_trace: List[float] = field(default_factory=list)
    rounds_used: int = 0
    runtime_seconds: float = 0.0
    n_cop_solves: int = 0

    @property
    def total_lut_bits(self) -> int:
        """Total storage of the decomposed design."""
        return sum(c.lut_bits for c in self.components.values())

    @property
    def flat_lut_bits(self) -> int:
        """Storage of the undecomposed design."""
        return self.exact.n_outputs * self.exact.size

    @property
    def compression_ratio(self) -> float:
        """``flat_lut_bits / total_lut_bits``."""
        total = self.total_lut_bits
        if total == 0:
            return float("inf")
        return self.flat_lut_bits / total


class BaselineDecomposer:
    """DALTA-style decomposition driven by a row-based inner solver.

    Parameters
    ----------
    solver:
        The inner :class:`RowSettingSolver`.
    config:
        Outer-loop parameters (``mode``, ``P``, ``R``, ``free_size``,
        ``seed``); the ``solver`` field of the config is ignored here.
    """

    def __init__(
        self,
        solver: RowSettingSolver,
        config: Optional[FrameworkConfig] = None,
    ) -> None:
        self.solver = solver
        self.config = config if config is not None else FrameworkConfig()

    def _optimize_component(
        self,
        exact: TruthTable,
        approx: TruthTable,
        component: int,
        partition_rng: np.random.Generator,
        solver_rng: np.random.Generator,
    ):
        partitions = sample_partitions(
            exact.n_inputs, self.config.free_size,
            self.config.n_partitions, partition_rng,
        )
        best_solution: Optional[RowSolution] = None
        best_partition: Optional[InputPartition] = None
        for partition in partitions:
            weights, constant = linear_error_terms(
                exact, approx, component, partition, self.config.mode
            )
            solution = self.solver.solve_weights(
                weights, constant, solver_rng
            )
            if (
                best_solution is None
                or solution.objective < best_solution.objective
            ):
                best_solution = solution
                best_partition = partition
        return best_solution, best_partition

    def _baseline_error(
        self, exact: TruthTable, approx: TruthTable, component: int
    ) -> float:
        if self.config.mode == "joint":
            return mean_error_distance(exact, approx)
        return float(error_rate_per_output(exact, approx)[component])

    def decompose(self, table: TruthTable) -> BaselineDecompositionResult:
        """Run the full ``R``-round, MSB-first baseline decomposition."""
        if table.n_inputs <= self.config.free_size:
            raise DimensionError(
                f"free_size {self.config.free_size} must be smaller than "
                f"the input count {table.n_inputs}"
            )
        start = time.perf_counter()
        # Same split as IsingDecomposer: the partition stream depends
        # only on the seed, never on solver randomness, so all methods
        # under one seed face identical candidate partitions.
        seed = self.config.seed
        partition_rng = np.random.default_rng(seed)
        solver_rng = np.random.default_rng(
            None if seed is None else seed + 0x9E3779B9
        )
        exact = table
        approx = table
        components: Dict[int, RowComponentDecomposition] = {}
        med_trace: List[float] = []
        n_solves = 0
        rounds_used = 0

        for round_index in range(self.config.n_rounds):
            rounds_used = round_index + 1
            any_accepted = False
            for component in reversed(range(exact.n_outputs)):
                solution, partition = self._optimize_component(
                    exact, approx, component, partition_rng, solver_rng
                )
                n_solves += self.config.n_partitions
                baseline = self._baseline_error(exact, approx, component)
                must_accept = component not in components
                if must_accept or solution.objective < baseline - 1e-12:
                    approx = apply_row_setting(
                        approx, component, partition, solution.setting
                    )
                    components[component] = RowComponentDecomposition(
                        component=component,
                        partition=partition,
                        setting=solution.setting,
                        objective=solution.objective,
                    )
                    any_accepted = True
            med_trace.append(mean_error_distance(exact, approx))
            if self.config.stop_when_stalled and not any_accepted:
                break

        runtime = time.perf_counter() - start
        return BaselineDecompositionResult(
            exact=exact,
            approx=approx,
            components=components,
            med=mean_error_distance(exact, approx),
            error_rates=error_rate_per_output(exact, approx),
            med_trace=med_trace,
            rounds_used=rounds_used,
            runtime_seconds=runtime,
            n_cop_solves=n_solves,
        )
