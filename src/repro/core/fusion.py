"""Cross-job sweep fusion: one device pass for many jobs' candidates.

The service may run several *batched* decomposition jobs concurrently
in one process.  Each job's component optimization prepares a handful
of candidate sweeps and advances them to completion — independently,
the jobs would issue separate kernel passes over the same hardware.
The :class:`SweepFusionGate` turns those concurrent passes into one:
every participating job registers a :class:`GateParticipant`, and when
a job reaches its sweep it *submits* the prepared sweeps and blocks.
Once every live participant has either submitted or left, one
submitter (the last to arrive) becomes the round's leader and drives
**all** submitted sweeps through a single
:func:`repro.core.batch.run_prepared_sweeps` call — schedule-compatible
sweeps across jobs are packed by the BlockBatch planner into shared
kernel windows.  Followers wake up with their sweeps fully advanced.

Correctness properties:

* **Numerics are fusion-invariant for float64** — ``run_prepared_sweeps``
  replays float64 sweeps solo inside the batch, so a fused job's result
  is bit-identical to an unfused run (float32 sweeps are packed under
  the tolerance contract).  Sweep preparation (all RNG consumption)
  happens before submission, in the owning job's thread, in the same
  order as an unfused run.
* **Graceful degradation** — fusion is opportunistic.  A participant
  that waits longer than ``wait_timeout`` detaches and runs its own
  sweeps solo (and stays detached, so one stalled partner costs each
  member at most one timeout); a participant that exits early (cache
  hit, crash, cancellation) must call :meth:`GateParticipant.leave`
  (or use the participant as a context manager), which releases anyone
  waiting on it.  Every degradation path still produces exactly the
  sweeps' correct results.
* **Leader failure containment** — if the fused run raises, the leader
  re-raises in its own job and every follower of that round receives
  the same exception (its sweeps may be partially advanced and must
  not be trusted); the gate itself stays usable.

Per-round observability: the leader opens a ``fused_sweep`` span and
bumps ``service_fused_sweeps_total`` / ``service_fused_jobs_total``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.batch import PreparedSweep, run_prepared_sweeps
from repro.obs.logconfig import get_logger
from repro.obs.metrics import get_metrics
from repro.obs.tracing import get_tracer

logger = get_logger("repro.core.fusion")

__all__ = ["SweepFusionGate", "GateParticipant"]

#: how often a waiting participant wakes to heartbeat / check timeout
_WAIT_SLICE_SECONDS = 0.25


class GateParticipant:
    """One job's handle on a :class:`SweepFusionGate`.

    Usable as a context manager (``leave`` on exit).  The optional
    ``heartbeat`` callable runs on every wait wake-up so a blocked
    participant keeps renewing its job lease.
    """

    def __init__(
        self,
        gate: "SweepFusionGate",
        token: str,
        heartbeat: Optional[Callable[[], None]] = None,
    ) -> None:
        self._gate = gate
        self.token = token
        self._heartbeat = heartbeat
        self.detached = False

    def submit(self, sweeps: Sequence[PreparedSweep]) -> None:
        """Advance ``sweeps`` to completion, fused when possible."""
        if self.detached:
            run_prepared_sweeps(list(sweeps), strategy=self._gate.strategy)
            return
        self._gate._submit(self, list(sweeps))

    def leave(self) -> None:
        """Deregister (idempotent); wakes anyone waiting on this job."""
        self._gate._leave(self.token)
        self.detached = True

    def __enter__(self) -> "GateParticipant":
        return self

    def __exit__(self, *exc_info) -> None:
        self.leave()

    def _beat(self) -> None:
        if self._heartbeat is not None:
            try:
                self._heartbeat()
            except Exception:  # a failed lease renewal must not kill
                pass           # the sweep — expiry is handled upstream


class SweepFusionGate:
    """Rendezvous barrier fusing concurrent jobs' prepared sweeps.

    Parameters
    ----------
    strategy:
        BlockBatch packing strategy forwarded to
        :func:`~repro.core.batch.run_prepared_sweeps`.
    wait_timeout:
        Seconds a submitter waits for the rest of the group before
        detaching and running solo.
    """

    def __init__(
        self, strategy: str = "auto", wait_timeout: float = 30.0
    ) -> None:
        self.strategy = strategy
        self.wait_timeout = float(wait_timeout)
        self._cond = threading.Condition()
        self._members: set = set()
        self._pending: Dict[str, List[PreparedSweep]] = {}
        self._done: set = set()
        self._errors: Dict[str, BaseException] = {}
        self._leader: Optional[str] = None

    # -- registration --------------------------------------------------

    def participant(
        self,
        token: str,
        heartbeat: Optional[Callable[[], None]] = None,
    ) -> GateParticipant:
        """Register ``token`` and return its participant handle."""
        with self._cond:
            self._members.add(token)
        return GateParticipant(self, token, heartbeat)

    def _leave(self, token: str) -> None:
        with self._cond:
            self._members.discard(token)
            self._pending.pop(token, None)
            self._cond.notify_all()

    # -- the barrier ---------------------------------------------------

    def _all_arrived(self) -> bool:
        return bool(self._members) and set(self._pending) >= self._members

    def _submit(
        self, participant: GateParticipant, sweeps: List[PreparedSweep]
    ) -> None:
        token = participant.token
        deadline = time.monotonic() + self.wait_timeout
        batch: Optional[List[PreparedSweep]] = None
        round_tokens: List[str] = []
        with self._cond:
            self._pending[token] = sweeps
            self._cond.notify_all()
            while True:
                if token in self._done:
                    # a leader already ran this round's sweeps for us
                    self._done.discard(token)
                    error = self._errors.pop(token, None)
                    if error is not None:
                        raise error
                    return
                if self._leader is None and self._all_arrived():
                    self._leader = token
                    round_tokens = sorted(self._pending)
                    batch = [
                        sweep
                        for t in round_tokens
                        for sweep in self._pending[t]
                    ]
                    self._pending.clear()
                    break
                if token in self._pending and (
                    time.monotonic() >= deadline
                ):
                    # detach: run solo now and forever after, so one
                    # stalled partner costs each member one timeout.
                    # (Once a leader has claimed our sweeps — token no
                    # longer pending — we must keep waiting: the leader
                    # is advancing them and a solo run would double-step
                    # the same state.)
                    self._pending.pop(token, None)
                    self._members.discard(token)
                    self._cond.notify_all()
                    participant.detached = True
                    break
                self._cond.wait(_WAIT_SLICE_SECONDS)
                participant._beat()

        if batch is None:  # timed out — solo, outside the lock
            logger.warning(
                "sweep fusion: %s timed out waiting for partners; "
                "detaching and running solo", token,
            )
            get_metrics().counter(
                "service_fusion_timeouts_total",
                help="participants that detached after a fusion timeout",
            ).inc()
            run_prepared_sweeps(sweeps, strategy=self.strategy)
            return

        # leader path: drive every submitted sweep in one batched run
        error: Optional[BaseException] = None
        try:
            with get_tracer().span(
                "fused_sweep",
                category="service",
                n_jobs=len(round_tokens),
                n_sweeps=len(batch),
                leader=token,
            ):
                run_prepared_sweeps(batch, strategy=self.strategy)
        except BaseException as exc:  # noqa: BLE001 — must release followers
            error = exc
        finally:
            with self._cond:
                for t in round_tokens:
                    if t != token:
                        self._done.add(t)
                        if error is not None:
                            self._errors[t] = error
                self._leader = None
                self._cond.notify_all()
        if error is not None:
            raise error
        metrics = get_metrics()
        metrics.counter(
            "service_fused_sweeps_total",
            help="fused sweep rounds led across jobs",
        ).inc()
        metrics.counter(
            "service_fused_jobs_total",
            help="job-sweeps advanced inside fused rounds",
        ).inc(len(round_tokens))
