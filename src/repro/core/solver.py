"""The bSB-based core-COP solver (formulation + search + decoding).

:class:`CoreCOPSolver` solves one instance of the column-based core COP:
given the exact function, the current approximation, a component index,
an input partition, and a mode, it

1. builds the bipartite Ising model (Eqs. 9/16),
2. runs ballistic SB with the configured stop criterion and the
   Theorem-3 intervention,
3. decodes the best spins into a :class:`ColumnSetting`, and
4. optionally polishes the setting with alternating refinement
   (an extension; off by default).

The returned objective is the *true* error value (ER in separate mode,
whole-word MED in joint mode) of the decoded setting, recomputed from
the model's exact offset — never the raw float trajectory energy.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.boolean.decomposition import ColumnSetting
from repro.boolean.partition import InputPartition
from repro.boolean.truth_table import TruthTable
from repro.core.config import CoreSolverConfig
from repro.core.ising_formulation import (
    build_core_cop_model,
    setting_from_spins,
    spins_from_setting,
)
from repro.core.theorem3 import alternating_refinement, theorem3_intervention
from repro.ising.schedules import LinearPump
from repro.ising.solvers.base import IsingSolver, SolveResult
from repro.ising.solvers.registry import make_solver
from repro.ising.stop_criteria import EnergyVarianceStop, FixedIterations
from repro.ising.structured import BipartiteDecompositionModel
from repro.obs.tracing import get_tracer

__all__ = ["CoreCOPSolver", "CoreCOPSolution", "build_bsb_solver"]


def build_bsb_solver(config: Optional[CoreSolverConfig] = None, **overrides):
    """Deprecated ad-hoc bSB constructor from before the solver registry.

    Use :meth:`CoreCOPSolver.build_solver` (the configured core path) or
    :func:`repro.ising.solvers.registry.make_solver` directly.
    """
    warnings.warn(
        "build_bsb_solver is deprecated; use CoreCOPSolver.build_solver "
        "or repro.ising.solvers.registry.make_solver('bsb', ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return CoreCOPSolver(config).build_solver(**overrides)


@dataclass
class CoreCOPSolution:
    """Result of one core-COP solve.

    Attributes
    ----------
    setting:
        Decoded (and possibly polished) column-based setting.
    objective:
        True error of the setting: component ER (separate mode) or
        whole-word MED (joint mode).
    partition:
        The partition the COP was posed under.
    solve_result:
        The underlying bSB run (iterations, stop reason, trace).
    runtime_seconds:
        Total wall-clock time including model construction.
    """

    setting: ColumnSetting
    objective: float
    partition: InputPartition
    solve_result: SolveResult
    runtime_seconds: float


class CoreCOPSolver:
    """Solves column-based core COPs with ballistic SB.

    Parameters
    ----------
    config:
        Solver parameters; see :class:`~repro.core.config.CoreSolverConfig`.
    """

    def __init__(self, config: Optional[CoreSolverConfig] = None) -> None:
        self.config = config if config is not None else CoreSolverConfig()

    def _make_stop(self):
        cfg = self.config
        if cfg.use_dynamic_stop:
            return EnergyVarianceStop(
                sample_every=cfg.sample_every,
                window=cfg.window,
                threshold=cfg.variance_threshold,
                max_iterations=cfg.max_iterations,
                # never stop mid-ramp: pre-bifurcation states are flat
                # in energy but far from converged (see config docs)
                min_iterations=cfg.resolved_ramp_iterations,
            )
        return FixedIterations(
            cfg.max_iterations, sample_every=cfg.sample_every
        )

    @staticmethod
    def _antisymmetric_initializer(n_rows: int):
        """Break the core COP's V1/V2 exchange symmetry at start-up.

        The energy is invariant under swapping the two pattern blocks
        (with ``T`` complemented), and both blocks carry identical
        biases, so a symmetric start tends to lock ``V1 == V2`` before
        the bifurcation — a poor attractor whenever the optimum needs
        two distinct column patterns.  Mirroring the ``V2`` positions
        to ``-V1`` removes that degeneracy.
        """

        def initialize(rng, n_replicas, n_spins, amplitude):
            x = rng.uniform(-amplitude, amplitude, (n_replicas, n_spins))
            y = rng.uniform(-amplitude, amplitude, (n_replicas, n_spins))
            x[:, n_rows : 2 * n_rows] = -x[:, :n_rows]
            return x, y

        return initialize

    def build_solver(self, **overrides) -> IsingSolver:
        """Construct the configured core solver via the solver registry.

        This is the single config→solver construction path (the
        per-call-site ``BallisticSBSolver(...)`` blocks it replaced are
        gone); ``overrides`` lets callers swap individual parameters —
        the model-dependent ``intervention``/``initializer`` hooks are
        passed this way by :meth:`solve_model`.
        """
        cfg = self.config
        params = {
            "stop": self._make_stop(),
            "dt": cfg.dt,
            "a0": cfg.a0,
            "n_replicas": cfg.n_replicas,
            "pump": LinearPump(cfg.a0, cfg.resolved_ramp_iterations),
            "backend": cfg.backend,
            "trace_every": cfg.trace_every,
            "numeric_guard": cfg.numeric_guard,
        }
        params.update(overrides)
        return make_solver("bsb", **params)

    def solve_model(
        self,
        model: BipartiteDecompositionModel,
        rng: Optional[np.random.Generator] = None,
    ) -> CoreCOPSolution:
        """Solve a pre-built core-COP Ising model.

        The returned :attr:`CoreCOPSolution.partition` is ``None`` at
        this level; :meth:`solve` fills it.
        """
        start = time.perf_counter()
        cfg = self.config
        intervention = (
            theorem3_intervention(model) if cfg.use_intervention else None
        )
        initializer = (
            self._antisymmetric_initializer(model.n_rows)
            if cfg.symmetry_breaking_init
            else None
        )
        sb = self.build_solver(
            intervention=intervention, initializer=initializer
        )
        tracer = get_tracer()
        with tracer.span(
            "sb_solve",
            category="stage",
            n_spins=model.n_spins,
            n_replicas=cfg.n_replicas,
        ):
            result = sb.solve(model, rng)
        with tracer.span("decode", category="stage"):
            setting = setting_from_spins(
                result.spins, model.n_rows, model.n_cols
            )
            if cfg.polish:
                setting, _, _ = alternating_refinement(
                    model.weights, setting
                )
            objective = float(
                model.objective(spins_from_setting(setting))
            )
        runtime = time.perf_counter() - start
        return CoreCOPSolution(
            setting=setting,
            objective=objective,
            partition=None,
            solve_result=result,
            runtime_seconds=runtime,
        )

    def solve(
        self,
        exact_table: TruthTable,
        approx_table: TruthTable,
        component: int,
        partition: InputPartition,
        mode: str,
        rng: Optional[np.random.Generator] = None,
    ) -> CoreCOPSolution:
        """Formulate and solve one core COP instance (see module docstring)."""
        start = time.perf_counter()
        with get_tracer().span(
            "weight_build", category="stage", component=component
        ):
            model = build_core_cop_model(
                exact_table, approx_table, component, partition, mode
            )
        solution = self.solve_model(model, rng)
        solution.partition = partition
        solution.runtime_seconds = time.perf_counter() - start
        return solution

    def __repr__(self) -> str:
        return f"CoreCOPSolver(config={self.config!r})"
