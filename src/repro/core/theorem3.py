"""Theorem 3: conditionally optimal settings and the bSB intervention.

Because the core-COP cost is linear in the approximate cell values,

    cost(V1, V2, T) = const + sum_ij W_ij * O_hat_ij,
    O_hat_ij = V1_i if T_j = 0 else V2_i,

fixing two of the three blocks makes the optimum of the third separable:

* **Theorem 3 (paper):** given ``V1, V2``, each column independently
  picks the pattern with the smaller weighted error:
  ``T_j = argmin_v  sum_i W_ij * v_i``.
* **Dual step (used by the polish/alternating heuristic):** given ``T``,
  each pattern bit independently minimizes its column-restricted weight:
  ``V1_i = 1  iff  sum_{j: T_j=0} W_ij < 0`` (and ``V2`` over the
  ``T_j = 1`` columns).

The paper's Section 3.3.2 heuristic *intervenes* in the bSB search: at
every sampling point the column-type oscillators are overwritten with
the Theorem-3 optimal assignment for the current pattern readout (and
their momenta zeroed), then the dynamics continue.
:func:`theorem3_intervention` packages this as a
:class:`~repro.ising.solvers.bsb.BallisticSBSolver` hook.

Alternating the two steps is a coordinate-descent (2-means-like)
heuristic whose cost is non-increasing and converges in finitely many
rounds; it serves as a cheap baseline and an optional polish.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.boolean.decomposition import ColumnSetting
from repro.errors import DimensionError
from repro.ising.solvers.bsb import InterventionHook, SBState
from repro.ising.structured import BipartiteDecompositionModel

__all__ = [
    "optimal_column_types",
    "optimal_patterns",
    "setting_cost",
    "alternating_refinement",
    "theorem3_intervention",
]


def setting_cost(weights: np.ndarray, setting: ColumnSetting) -> float:
    """Variable part of the COP cost: ``sum_ij W_ij * O_hat_ij``.

    Add the model's cell-constant term to get the full ER/MED value;
    for comparing settings under the same weights this suffices.
    """
    approx = setting.reconstruct().astype(float)
    return float((np.asarray(weights) * approx).sum())


def optimal_column_types(
    weights: np.ndarray,
    pattern1: np.ndarray,
    pattern2: np.ndarray,
) -> np.ndarray:
    """Theorem 3: best ``T`` for fixed patterns, shape ``(c,)``.

    Ties select ``pattern1`` (type 0) deterministically.
    """
    w = np.asarray(weights, dtype=float)
    v1 = np.asarray(pattern1, dtype=float)
    v2 = np.asarray(pattern2, dtype=float)
    if w.ndim != 2 or v1.shape != (w.shape[0],) or v2.shape != (w.shape[0],):
        raise DimensionError(
            f"incompatible shapes: weights {w.shape}, "
            f"pattern1 {v1.shape}, pattern2 {v2.shape}"
        )
    cost1 = v1 @ w  # (c,)
    cost2 = v2 @ w
    return (cost2 < cost1).astype(np.uint8)


def optimal_patterns(
    weights: np.ndarray, column_types: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Dual of Theorem 3: best ``(V1, V2)`` for a fixed ``T``.

    Each bit minimizes its restricted weight sum independently; a bit
    whose pattern covers no columns keeps value 0.
    """
    w = np.asarray(weights, dtype=float)
    t = np.asarray(column_types)
    if t.shape != (w.shape[1],):
        raise DimensionError(
            f"column_types must have shape ({w.shape[1]},), got {t.shape}"
        )
    mask2 = t.astype(bool)
    sums1 = w[:, ~mask2].sum(axis=1)
    sums2 = w[:, mask2].sum(axis=1)
    pattern1 = (sums1 < 0.0).astype(np.uint8)
    pattern2 = (sums2 < 0.0).astype(np.uint8)
    return pattern1, pattern2


def alternating_refinement(
    weights: np.ndarray,
    setting: ColumnSetting,
    max_rounds: int = 50,
) -> Tuple[ColumnSetting, float, int]:
    """Coordinate descent alternating Theorem 3 and its dual to a fixpoint.

    Returns ``(refined setting, variable cost, rounds used)``.  The cost
    is non-increasing in every step, so the loop terminates at a local
    optimum (or at ``max_rounds``).
    """
    w = np.asarray(weights, dtype=float)
    v1 = setting.pattern1.copy()
    v2 = setting.pattern2.copy()
    t = setting.column_types.copy()
    cost = setting_cost(w, ColumnSetting(v1, v2, t))
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        t_new = optimal_column_types(w, v1, v2)
        v1_new, v2_new = optimal_patterns(w, t_new)
        candidate = ColumnSetting(v1_new, v2_new, t_new)
        new_cost = setting_cost(w, candidate)
        if new_cost >= cost - 1e-15:
            break
        v1, v2, t, cost = v1_new, v2_new, t_new, new_cost
    return ColumnSetting(v1, v2, t), cost, rounds


def theorem3_intervention(
    model: BipartiteDecompositionModel,
) -> InterventionHook:
    """Build the Section-3.3.2 bSB intervention hook for ``model``.

    At each sampling point, for every replica: read the pattern spins,
    compute the Theorem-3 optimal column types, overwrite the type
    oscillators with the corresponding spins at full amplitude, and zero
    their momenta.  The modified state is fed back into the Euler
    integration.
    """
    weights = model.weights
    r = model.n_rows

    def hook(state: SBState) -> None:
        x = state.positions
        y = state.momenta
        for replica in range(x.shape[0]):
            v1_bits = (x[replica, :r] >= 0.0).astype(np.uint8)
            v2_bits = (x[replica, r : 2 * r] >= 0.0).astype(np.uint8)
            t_bits = optimal_column_types(weights, v1_bits, v2_bits)
            x[replica, 2 * r :] = 2.0 * t_bits - 1.0
            y[replica, 2 * r :] = 0.0

    return hook
