"""Non-disjoint approximate decomposition (the [10] extension).

Builds the column-based core COP over an
:class:`~repro.boolean.overlapping.OverlappingPartition`: identical
algebra to the disjoint case, except inconsistent (unreachable) cells
get zero weight, so the optimizer is free to set their ``O_hat``
arbitrarily — they are don't-cares that can only *help* the
decomposability of the reachable part.

Provides the masked weight builder, the model constructor, the
apply/synthesis path, sampling of overlapping partitions, and a
framework-level decomposer mirroring
:class:`~repro.core.framework.IsingDecomposer` with an ``overlap`` knob.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.boolean.decomposition import ColumnSetting
from repro.boolean.metrics import error_rate_per_output, mean_error_distance
from repro.boolean.overlapping import OverlappingPartition
from repro.boolean.synthesis import DecomposedComponent
from repro.boolean.truth_table import TruthTable
from repro.core.config import CoreSolverConfig, FrameworkConfig
from repro.core.ising_formulation import setting_from_spins
from repro.core.solver import CoreCOPSolver
from repro.errors import ConfigurationError, DimensionError, PartitionError
from repro.ising.structured import BipartiteDecompositionModel

__all__ = [
    "overlapping_error_terms",
    "build_overlapping_core_cop_model",
    "apply_overlapping_setting",
    "overlapping_component",
    "sample_overlapping_partitions",
    "NonDisjointDecomposer",
    "NonDisjointResult",
]


def _flat_error_terms(
    exact_table: TruthTable,
    approx_table: TruthTable,
    component: int,
    mode: str,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-input ``(q, c)`` such that the error is
    ``sum_X p_X (q_X * O_hat_X + c_X)`` — partition-free form."""
    m = exact_table.n_outputs
    if not 0 <= component < m:
        raise DimensionError(f"component {component} out of range [0, {m})")
    exact_bits = exact_table.component(component).astype(float)
    if mode == "separate":
        return 1.0 - 2.0 * exact_bits, exact_bits
    if mode != "joint":
        raise ConfigurationError(
            f"mode must be 'separate' or 'joint', got {mode!r}"
        )
    k_weight = float(1 << component)
    out_weights = (1 << np.arange(m, dtype=np.int64)).astype(np.int64)
    approx_words = approx_table.outputs.astype(np.int64) @ out_weights
    approx_without_k = approx_words - (
        approx_table.outputs[:, component].astype(np.int64) << component
    )
    deviation = (approx_without_k - exact_table.words).astype(float)
    inner = (deviation >= -k_weight) & (deviation <= 0.0)
    q = np.where(
        inner, k_weight + 2.0 * deviation, k_weight * np.sign(deviation)
    )
    c = np.where(inner, -deviation, np.abs(deviation))
    return q, c


def overlapping_error_terms(
    exact_table: TruthTable,
    approx_table: TruthTable,
    component: int,
    partition: OverlappingPartition,
    mode: str,
) -> Tuple[np.ndarray, float]:
    """Masked cell weights ``W`` and constant for an overlapping partition.

    Inconsistent cells carry weight zero; the constant matches the
    disjoint case (it is a sum over input patterns either way).
    """
    if partition.n_inputs != exact_table.n_inputs:
        raise DimensionError(
            f"partition covers {partition.n_inputs} inputs but table has "
            f"{exact_table.n_inputs}"
        )
    q, c = _flat_error_terms(exact_table, approx_table, component, mode)
    probs = exact_table.probabilities
    weights = np.zeros((partition.n_rows, partition.n_cols))
    weights[partition.row_of_index, partition.col_of_index] = probs * q
    constant = float((probs * c).sum())
    return weights, constant


def build_overlapping_core_cop_model(
    exact_table: TruthTable,
    approx_table: TruthTable,
    component: int,
    partition: OverlappingPartition,
    mode: str,
) -> BipartiteDecompositionModel:
    """The masked core-COP Ising model; objective equals the true error."""
    weights, constant = overlapping_error_terms(
        exact_table, approx_table, component, partition, mode
    )
    offset = constant + float(weights.sum()) / 2.0
    return BipartiteDecompositionModel(weights, offset)


def overlapping_component(
    partition: OverlappingPartition, setting: ColumnSetting
) -> DecomposedComponent:
    """Realize a setting over an overlapping partition as a cascade.

    :class:`DecomposedComponent` is partition-agnostic — it only uses
    the row/col index maps — so the non-disjoint cascade reuses it.
    """
    if setting.n_rows != partition.n_rows or setting.n_cols != partition.n_cols:
        raise DimensionError(
            f"setting shape ({setting.n_rows}, {setting.n_cols}) does not "
            f"match partition shape ({partition.n_rows}, "
            f"{partition.n_cols})"
        )
    f_table = np.stack([setting.pattern1, setting.pattern2])
    return DecomposedComponent(partition, setting.column_types, f_table)


def apply_overlapping_setting(
    table: TruthTable,
    component: int,
    partition: OverlappingPartition,
    setting: ColumnSetting,
) -> TruthTable:
    """Replace output ``component`` by the non-disjoint cascade's function."""
    cascade = overlapping_component(partition, setting)
    return table.with_component(component, cascade.to_truth_vector())


def sample_overlapping_partitions(
    n_inputs: int,
    free_size: int,
    overlap: int,
    count: int,
    rng: Optional[Union[int, np.random.Generator]] = None,
) -> List[OverlappingPartition]:
    """Sample distinct overlapping partitions.

    ``free_size`` counts the free set *including* the ``overlap`` shared
    variables; the bound set holds the remaining
    ``n_inputs - (free_size - overlap)`` variables plus the shared ones.
    ``overlap = 0`` reduces to disjoint sampling.
    """
    if not 0 < free_size <= n_inputs:
        raise PartitionError(
            f"free_size must be in (0, {n_inputs}], got {free_size}"
        )
    if not 0 <= overlap < free_size:
        raise PartitionError(
            f"overlap must be in [0, free_size), got {overlap}"
        )
    exclusive_free = free_size - overlap
    if exclusive_free >= n_inputs:
        raise PartitionError(
            "free set may not cover all variables exclusively"
        )
    if count <= 0:
        raise PartitionError(f"count must be positive, got {count}")
    rng = np.random.default_rng(rng)
    seen = set()
    partitions: List[OverlappingPartition] = []
    attempts = 0
    while len(partitions) < count and attempts < 200 * count:
        attempts += 1
        order = rng.permutation(n_inputs)
        free_exclusive = sorted(int(v) for v in order[:exclusive_free])
        rest = [int(v) for v in order[exclusive_free:]]
        shared = sorted(rest[:overlap])
        free = tuple(sorted(free_exclusive + shared))
        bound = tuple(
            sorted(v for v in range(n_inputs) if v not in free_exclusive)
        )
        key = (free, bound)
        if key in seen:
            continue
        seen.add(key)
        partitions.append(OverlappingPartition(free, bound, n_inputs))
    if len(partitions) < count:
        # space exhausted; return what exists (deterministic behaviour)
        return partitions
    return partitions


@dataclass
class NonDisjointComponent:
    """Accepted non-disjoint decomposition of one output."""

    component: int
    partition: OverlappingPartition
    setting: ColumnSetting
    objective: float

    @property
    def lut_bits(self) -> int:
        """Cascade storage including the overlap blow-up."""
        return self.partition.lut_bits()


@dataclass
class NonDisjointResult:
    """Outcome of :meth:`NonDisjointDecomposer.decompose`."""

    exact: TruthTable
    approx: TruthTable
    components: Dict[int, NonDisjointComponent]
    med: float
    error_rates: np.ndarray
    med_trace: List[float] = field(default_factory=list)
    runtime_seconds: float = 0.0

    @property
    def total_lut_bits(self) -> int:
        """Total cascade storage."""
        return sum(c.lut_bits for c in self.components.values())

    @property
    def flat_lut_bits(self) -> int:
        """Undecomposed storage."""
        return self.exact.n_outputs * self.exact.size

    @property
    def compression_ratio(self) -> float:
        """``flat / cascade`` storage ratio."""
        total = self.total_lut_bits
        return self.flat_lut_bits / total if total else float("inf")


class NonDisjointDecomposer:
    """DALTA-style loop over overlapping partitions.

    Parameters
    ----------
    config:
        Standard :class:`FrameworkConfig`; ``free_size`` includes the
        shared variables.
    overlap:
        Number of shared variables ``|A ∩ B|`` (0 = disjoint, matching
        :class:`~repro.core.framework.IsingDecomposer` up to sampling).
    """

    def __init__(
        self,
        config: Optional[FrameworkConfig] = None,
        overlap: int = 1,
    ) -> None:
        self.config = config if config is not None else FrameworkConfig()
        if overlap < 0:
            raise ConfigurationError(f"overlap must be >= 0, got {overlap}")
        self.overlap = int(overlap)
        self._solver = CoreCOPSolver(self.config.solver)

    def decompose(self, table: TruthTable) -> NonDisjointResult:
        """Run the MSB-first, R-round non-disjoint decomposition."""
        config = self.config
        if table.n_inputs <= config.free_size - self.overlap:
            raise DimensionError(
                "free_size minus overlap must be below the input count"
            )
        start = time.perf_counter()
        seed = config.seed
        partition_rng = np.random.default_rng(seed)
        solver_rng = np.random.default_rng(
            None if seed is None else seed + 0x9E3779B9
        )
        exact = table
        approx = table
        components: Dict[int, NonDisjointComponent] = {}
        med_trace: List[float] = []

        for _ in range(config.n_rounds):
            any_accepted = False
            for component in reversed(range(exact.n_outputs)):
                partitions = sample_overlapping_partitions(
                    exact.n_inputs, config.free_size, self.overlap,
                    config.n_partitions, partition_rng,
                )
                best_solution = None
                best_partition = None
                for partition in partitions:
                    model = build_overlapping_core_cop_model(
                        exact, approx, component, partition, config.mode
                    )
                    solution = self._solver.solve_model(model, solver_rng)
                    if (
                        best_solution is None
                        or solution.objective < best_solution.objective
                    ):
                        best_solution = solution
                        best_partition = partition
                if config.mode == "joint":
                    baseline = mean_error_distance(exact, approx)
                else:
                    baseline = float(
                        error_rate_per_output(exact, approx)[component]
                    )
                must_accept = component not in components
                if must_accept or best_solution.objective < baseline - 1e-12:
                    approx = apply_overlapping_setting(
                        approx, component, best_partition,
                        best_solution.setting,
                    )
                    components[component] = NonDisjointComponent(
                        component=component,
                        partition=best_partition,
                        setting=best_solution.setting,
                        objective=best_solution.objective,
                    )
                    any_accepted = True
            med_trace.append(mean_error_distance(exact, approx))
            if config.stop_when_stalled and not any_accepted:
                break

        return NonDisjointResult(
            exact=exact,
            approx=approx,
            components=components,
            med=mean_error_distance(exact, approx),
            error_rates=error_rate_per_output(exact, approx),
            med_trace=med_trace,
            runtime_seconds=time.perf_counter() - start,
        )
