"""The paper's primary contribution: Ising-model-based approximate
disjoint decomposition.

Pipeline, bottom to top:

1. :mod:`repro.core.ising_formulation` — rewrite the column-based core
   COP (optimize ``V1``, ``V2``, ``T`` for one output component under a
   fixed partition) as a second-order Ising model, in *separate* mode
   (per-component error rate, Eq. 9) or *joint* mode (whole-word mean
   error distance, Eq. 16), with exact offset bookkeeping.
2. :mod:`repro.core.theorem3` — the conditionally-optimal column-type
   assignment (Theorem 3) used both as an in-flight bSB intervention
   (Section 3.3.2) and as a standalone alternating-minimization
   heuristic.
3. :mod:`repro.core.solver` — :class:`~repro.core.solver.CoreCOPSolver`,
   gluing formulation + ballistic SB + dynamic stop + intervention.
4. :mod:`repro.core.framework` —
   :class:`~repro.core.framework.IsingDecomposer`, the DALTA-style outer
   loop: ``P`` candidate partitions per component, components optimized
   most-significant-first, repeated for ``R`` rounds.
"""

from repro.core.config import CoreSolverConfig, FrameworkConfig
from repro.core.framework import (
    ComponentDecomposition,
    DecompositionResult,
    IsingDecomposer,
)
from repro.core.ising_formulation import (
    build_core_cop_model,
    joint_mode_weights,
    separate_mode_weights,
    setting_from_spins,
    spins_from_setting,
)
from repro.core.nondisjoint import (
    NonDisjointDecomposer,
    build_overlapping_core_cop_model,
    sample_overlapping_partitions,
)
from repro.core.partitions import all_partitions, sample_partitions
from repro.core.row_ising_formulation import (
    build_row_cop_polynomial_model,
    row_setting_from_spins,
    spins_from_row_setting,
)
from repro.core.solver import CoreCOPSolution, CoreCOPSolver
from repro.core.theorem3 import (
    alternating_refinement,
    optimal_column_types,
    optimal_patterns,
    setting_cost,
    theorem3_intervention,
)

__all__ = [
    "ComponentDecomposition",
    "CoreCOPSolution",
    "CoreCOPSolver",
    "CoreSolverConfig",
    "DecompositionResult",
    "FrameworkConfig",
    "IsingDecomposer",
    "NonDisjointDecomposer",
    "build_overlapping_core_cop_model",
    "sample_overlapping_partitions",
    "all_partitions",
    "alternating_refinement",
    "build_core_cop_model",
    "build_row_cop_polynomial_model",
    "joint_mode_weights",
    "row_setting_from_spins",
    "spins_from_row_setting",
    "optimal_column_types",
    "optimal_patterns",
    "sample_partitions",
    "separate_mode_weights",
    "setting_cost",
    "setting_from_spins",
    "spins_from_setting",
    "theorem3_intervention",
]
