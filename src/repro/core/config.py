"""Configuration dataclasses for the core solver and framework.

The defaults follow the paper's experimental setup where one exists:
dynamic-stop parameters ``f = s = 20`` (the paper's n = 9 setting; use
:meth:`CoreSolverConfig.paper_large_scale` for the n = 16 setting
``f = s = 10``), energy-variance threshold ``eps = 1e-8``, ``P = 1000``
candidate partitions and ``R = 5`` rounds for the framework.  Benchmarks
scale ``P`` down for laptop runtimes; the dataclasses accept the paper
values unchanged.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["CoreSolverConfig", "FrameworkConfig", "SWEEP_AUTO_CHUNKS"]

_VALID_MODES = ("separate", "joint")


def _checked_fields(cls, data: dict) -> dict:
    """Validate that ``data`` holds only fields of ``cls``."""
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"{cls.__name__} payload must be a mapping, "
            f"got {type(data).__name__}"
        )
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ConfigurationError(
            f"unknown {cls.__name__} fields: {', '.join(unknown)}"
        )
    return dict(data)

#: default chunk count of the candidate sweep (``sweep_chunk_size=None``);
#: a fixed constant so the chunk structure — and with it the per-chunk
#: RNG spawn — never depends on how many workers happen to run the chunks
SWEEP_AUTO_CHUNKS = 8


@dataclass(frozen=True)
class CoreSolverConfig:
    """Parameters of the bSB-based core-COP solver.

    Attributes
    ----------
    sample_every:
        ``f`` — energy sampling period of the dynamic stop (Sec. 3.3.1).
    window:
        ``s`` — variance window of the dynamic stop.
    variance_threshold:
        ``eps`` — variance threshold (paper: 1e-8).
    max_iterations:
        Hard Euler-iteration cap.
    pump_ramp_iterations:
        Length of the linear pump ramp.  ``None`` resolves to
        ``max(100, max_iterations // 4)``.  The dynamic stop never
        fires before the ramp completes: during the ramp the system is
        non-stationary by construction, and a small energy variance
        merely reflects the pre-bifurcation plateau (stopping there
        returns the un-bifurcated state — a measurable quality loss,
        see the stop-criterion ablation benchmark).
    use_dynamic_stop:
        ``False`` reproduces the fixed-iteration baseline for ablations.
    use_intervention:
        Enable the Theorem-3 column-type reset (Sec. 3.3.2).
    n_replicas:
        Parallel oscillator networks per solve.
    dt / a0:
        bSB Euler step and detuning.
    polish:
        Run one alternating-refinement pass (Theorem 3 in both
        directions) on the decoded setting.  An extension beyond the
        paper — off by default; benchmarked in the ablations.
    symmetry_breaking_init:
        Initialize the ``V2`` oscillators as the negation of the ``V1``
        oscillators.  The core-COP energy is invariant under exchanging
        ``(V1, V2)`` together with complementing ``T``, and with
        identical biases on ``V1`` and ``V2`` the early (pre-bifurcation)
        dynamics otherwise lock the two pattern blocks together —
        anti-symmetric initialization breaks this degeneracy and
        measurably improves solution quality on near-decomposable
        instances (see the heuristic ablation benchmark).
    backend:
        Compute-kernel backend for the fused bSB step
        (:mod:`repro.ising.kernels`): ``"numpy64"`` (reference,
        bit-for-bit the historical inline loop), ``"numpy32"``
        (float32 stepping, float64 scoring), or ``"numba"`` (JIT;
        silently degrades to ``numpy64`` when numba is missing).
        ``None`` resolves through the ``REPRO_SB_BACKEND`` environment
        variable, which — when set — overrides this field too.
    trace_every:
        Keep every ``trace_every``-th sampled energy in the solver's
        ``energy_trace`` (1, the default, keeps every sample — the
        historical behavior).  Purely observational: sampling,
        interventions, and the dynamic stop are unaffected, so
        ``trace_every`` is excluded from :meth:`FrameworkConfig.
        semantic_dict` and does not change artifact keys.
    numeric_guard:
        Check the kernel state at every sampling point and escalate a
        non-finite/diverging reduced-precision (``numpy32``) run to
        the ``numpy64`` reference backend instead of returning garbage
        (see :class:`repro.ising.solvers.bsb.BallisticSBSolver`).
        Stays in :meth:`FrameworkConfig.semantic_dict`: when the guard
        fires it restarts the trajectory, so it can change results.
    """

    sample_every: int = 20
    window: int = 20
    variance_threshold: float = 1e-8
    max_iterations: int = 2000
    pump_ramp_iterations: Optional[int] = None
    use_dynamic_stop: bool = True
    use_intervention: bool = True
    n_replicas: int = 4
    dt: float = 0.25
    a0: float = 1.0
    polish: bool = False
    symmetry_breaking_init: bool = True
    backend: Optional[str] = None
    trace_every: int = 1
    numeric_guard: bool = True

    def __post_init__(self) -> None:
        if self.sample_every <= 0:
            raise ConfigurationError(
                f"sample_every must be positive, got {self.sample_every}"
            )
        if self.window < 2:
            raise ConfigurationError(
                f"window must be >= 2, got {self.window}"
            )
        if self.variance_threshold < 0:
            raise ConfigurationError(
                "variance_threshold must be non-negative, "
                f"got {self.variance_threshold}"
            )
        if self.max_iterations <= 0:
            raise ConfigurationError(
                f"max_iterations must be positive, got {self.max_iterations}"
            )
        if self.n_replicas <= 0:
            raise ConfigurationError(
                f"n_replicas must be positive, got {self.n_replicas}"
            )
        if self.dt <= 0:
            raise ConfigurationError(f"dt must be positive, got {self.dt}")
        if self.pump_ramp_iterations is not None and (
            self.pump_ramp_iterations <= 0
            or self.pump_ramp_iterations > self.max_iterations
        ):
            raise ConfigurationError(
                "pump_ramp_iterations must be in (0, max_iterations], got "
                f"{self.pump_ramp_iterations}"
            )
        if self.trace_every < 1:
            raise ConfigurationError(
                f"trace_every must be >= 1, got {self.trace_every}"
            )
        if self.backend is not None:
            from repro.ising.kernels import known_backends

            if self.backend not in known_backends():
                raise ConfigurationError(
                    f"backend must be one of {known_backends()} or None, "
                    f"got {self.backend!r}"
                )

    @property
    def resolved_ramp_iterations(self) -> int:
        """The effective pump ramp length (see ``pump_ramp_iterations``)."""
        if self.pump_ramp_iterations is not None:
            return self.pump_ramp_iterations
        return min(self.max_iterations, max(100, self.max_iterations // 4))

    def to_dict(self) -> dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CoreSolverConfig":
        """Rebuild from :meth:`to_dict` output; rejects unknown keys."""
        return cls(**_checked_fields(cls, data))

    @classmethod
    def paper_small_scale(cls) -> "CoreSolverConfig":
        """The paper's n = 9 setting: ``f = s = 20``, ``eps = 1e-8``."""
        return cls(sample_every=20, window=20, variance_threshold=1e-8)

    @classmethod
    def paper_large_scale(cls) -> "CoreSolverConfig":
        """The paper's n = 16 setting: ``f = s = 10``, ``eps = 1e-8``."""
        return cls(sample_every=10, window=10, variance_threshold=1e-8)

    def with_updates(self, **changes) -> "CoreSolverConfig":
        """Functional update (frozen dataclass)."""
        return replace(self, **changes)


#: engine-equivalent backends collapsed for artifact hashing: every
#: float32 engine shares the ``numpy32`` tolerance contract (decoded
#: settings are float64-scored), so results are interchangeable and the
#: content-addressed cache must treat them as one backend
_SEMANTIC_BACKEND_CLASS = {
    "native32": "numpy32",
    "torch": "numpy32",
    "cupy": "numpy32",
}


def semantic_backend_name(backend: "Optional[str]") -> str:
    """The resolved backend's *tolerance class* for artifact keys.

    Resolves ``backend`` (including the ``REPRO_SB_BACKEND`` override
    and unavailable-backend fallback), then maps accelerator float32
    engines onto ``numpy32`` so cache keys do not fork on which device
    happened to be plugged in.  ``numpy64`` and ``numba`` keep their
    own names (``numba``'s fused float64 pass reorders summation, so it
    was never bit-identical to ``numpy64`` — preserving its historical
    key).
    """
    from repro.ising.kernels import resolve_backend

    resolved = resolve_backend(backend)
    return _SEMANTIC_BACKEND_CLASS.get(resolved, resolved)


@dataclass(frozen=True)
class FrameworkConfig:
    """Parameters of the DALTA-style outer decomposition loop.

    Attributes
    ----------
    mode:
        ``"separate"`` (per-component ER, Eq. 9) or ``"joint"``
        (whole-word MED, Eq. 16).
    free_size:
        ``|A|`` — number of free-set variables (paper: 4 for n = 9,
        7 for n = 16).
    n_partitions:
        ``P`` — candidate partitions tried per component optimization
        (paper: 1000).
    n_rounds:
        ``R`` — sequential optimization rounds (paper: 5).
    solver:
        Core-COP solver configuration.
    seed:
        Base RNG seed for partition sampling and the stochastic solver.
    prescreen_keep:
        When set, candidate partitions are pre-scored with the cheap
        alternating heuristic and only the best ``prescreen_keep`` are
        handed to bSB.  An extension beyond the paper — ``None`` (off)
        reproduces the published procedure.
    stop_when_stalled:
        End early when a full round improves nothing.
    batched:
        Solve all ``P`` candidate partitions of a component in one
        vectorized bSB run (:mod:`repro.core.batch`).  Identical
        search semantics apart from the stop rule: the batch always
        integrates the full ``max_iterations`` budget, since a global
        dynamic stop would couple unrelated instances.
    n_workers:
        Process-level parallelism of the candidate sweep.  Each
        component's candidate partitions are split into chunks (see
        ``sweep_chunk_size``) solved as independent core-COP batches;
        with ``n_workers > 1`` the chunks fan out over a
        ``ProcessPoolExecutor``.  Chunking and per-chunk RNG spawning
        are *independent of the worker count*, so any ``n_workers``
        under one seed selects identical partitions and settings.
    sweep_chunk_size:
        Partitions per sweep chunk.  ``None`` auto-splits into
        :data:`SWEEP_AUTO_CHUNKS` equal chunks (fewer when ``P`` is
        small).  Must not depend on ``n_workers`` — it is part of the
        seeded search definition.
    """

    mode: str = "joint"
    free_size: int = 4
    n_partitions: int = 20
    n_rounds: int = 5
    solver: CoreSolverConfig = field(default_factory=CoreSolverConfig)
    seed: Optional[int] = None
    prescreen_keep: Optional[int] = None
    stop_when_stalled: bool = True
    batched: bool = False
    n_workers: int = 1
    sweep_chunk_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in _VALID_MODES:
            raise ConfigurationError(
                f"mode must be one of {_VALID_MODES}, got {self.mode!r}"
            )
        if self.free_size <= 0:
            raise ConfigurationError(
                f"free_size must be positive, got {self.free_size}"
            )
        if self.n_partitions <= 0:
            raise ConfigurationError(
                f"n_partitions must be positive, got {self.n_partitions}"
            )
        if self.n_rounds <= 0:
            raise ConfigurationError(
                f"n_rounds must be positive, got {self.n_rounds}"
            )
        if self.prescreen_keep is not None and self.prescreen_keep <= 0:
            raise ConfigurationError(
                f"prescreen_keep must be positive, got {self.prescreen_keep}"
            )
        if self.n_workers <= 0:
            raise ConfigurationError(
                f"n_workers must be positive, got {self.n_workers}"
            )
        if self.sweep_chunk_size is not None and self.sweep_chunk_size <= 0:
            raise ConfigurationError(
                "sweep_chunk_size must be positive, got "
                f"{self.sweep_chunk_size}"
            )

    def resolved_chunk_count(self, n_partitions: int) -> int:
        """Number of sweep chunks for ``n_partitions`` candidates.

        Deterministic and independent of ``n_workers`` by design (the
        chunk structure feeds the per-chunk RNG spawn, so it is part of
        the seeded search semantics, not a scheduling detail).
        """
        if n_partitions <= 0:
            return 0
        if self.sweep_chunk_size is not None:
            return -(-n_partitions // self.sweep_chunk_size)
        return min(n_partitions, SWEEP_AUTO_CHUNKS)

    def to_dict(self) -> dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        data = asdict(self)
        data["solver"] = self.solver.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FrameworkConfig":
        """Rebuild from :meth:`to_dict` output; rejects unknown keys."""
        payload = _checked_fields(cls, data)
        if "solver" in payload and not isinstance(
            payload["solver"], CoreSolverConfig
        ):
            payload["solver"] = CoreSolverConfig.from_dict(payload["solver"])
        return cls(**payload)

    def semantic_dict(self) -> dict:
        """The fields that define the *seeded search*, scheduling removed.

        Two configs with equal semantic dicts produce bit-identical
        (float64) or tolerance-equivalent (float32) decompositions of
        the same table: ``n_workers`` only schedules the deterministic
        sweep chunks, so it is dropped; the solver's ``trace_every``
        only thins the retained energy trace, so it is dropped too; and
        the solver ``backend`` is resolved (including the
        ``REPRO_SB_BACKEND`` override) and then collapsed to its
        *tolerance class* by :func:`semantic_backend_name`, because the
        dtype changes float32-path numerics but which float32 engine
        (``numpy32`` / ``native32`` / ``torch`` / ``cupy``) happened to
        run must not fork artifact keys.  This is the payload the
        service's content-addressed artifact store hashes.
        """
        data = self.to_dict()
        data.pop("n_workers")
        data["solver"].pop("trace_every")
        data["solver"]["backend"] = semantic_backend_name(
            self.solver.backend
        )
        return data

    @classmethod
    def paper_small_scale(cls, mode: str = "joint") -> "FrameworkConfig":
        """Paper setup for n = 9: ``|A| = 4``, ``P = 1000``, ``R = 5``."""
        return cls(
            mode=mode,
            free_size=4,
            n_partitions=1000,
            n_rounds=5,
            solver=CoreSolverConfig.paper_small_scale(),
        )

    @classmethod
    def paper_large_scale(cls, mode: str = "joint") -> "FrameworkConfig":
        """Paper setup for n = 16: ``|A| = 7``, ``P = 1000``, ``R = 5``."""
        return cls(
            mode=mode,
            free_size=7,
            n_partitions=1000,
            n_rounds=5,
            solver=CoreSolverConfig.paper_large_scale(),
        )

    def with_updates(self, **changes) -> "FrameworkConfig":
        """Functional update (frozen dataclass)."""
        return replace(self, **changes)
