"""The row-based core COP as a THIRD-order Ising model.

Section 3.1 of the paper motivates the column-based view with the claim
that mapping the *row-based* core COP onto the Ising model "requires a
third-order Ising model".  This module proves that claim constructively
and makes it benchmarkable.

Encode each row's type ``S_i`` with two binary variables ``(a_i, b_i)``:

    (a, b) = (0, 0) -> ZEROS,   (1, 0) -> ONES,
    (0, 1) -> PATTERN (V_j),    (1, 1) -> COMPLEMENT (1 - V_j)

Then the approximate cell value is the *cubic* binary polynomial

    O_hat_ij = a_i + b_i V_j - 2 a_i b_i V_j,

(check all four cases), and with the spin substitution
``a = (1 + abar)/2`` etc. each cell contributes

    O_hat_ij = 1/2 + abar_i/4 - abar_i*bbar_i/4 - abar_i*vbar_j/4
               - abar_i*bbar_i*vbar_j/4

— the irreducible three-spin monomial ``abar*bbar*vbar`` is exactly why
a second-order Ising machine cannot host this formulation, and why the
paper switches to the column-based view.  The resulting
:class:`~repro.ising.polynomial.PolynomialIsingModel` is solvable with
the higher-order SB of Kanao & Goto (bSB runs unchanged on polynomial
fields), which the row-vs-column benchmark compares against the
second-order route.

Spin layout: ``sigma = [a (r), b (r), V (c)]``, ``N = 2r + c`` — the
same spin count as the column-based model.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.boolean.decomposition import RowSetting, RowType
from repro.errors import DimensionError
from repro.ising.polynomial import PolynomialIsingModel
from repro.ising.solvers.base import spins_to_binary

__all__ = [
    "build_row_cop_polynomial_model",
    "row_setting_from_spins",
    "spins_from_row_setting",
]

# RowType -> (a, b) encoding
_TYPE_TO_BITS = {
    RowType.ZEROS: (0, 0),
    RowType.ONES: (1, 0),
    RowType.PATTERN: (0, 1),
    RowType.COMPLEMENT: (1, 1),
}
_BITS_TO_TYPE = {bits: t for t, bits in _TYPE_TO_BITS.items()}


def build_row_cop_polynomial_model(
    weights: np.ndarray, constant: float = 0.0
) -> PolynomialIsingModel:
    """Lower a row-based core COP to a third-order polynomial Ising model.

    ``weights``/``constant`` are the linear error terms of
    :func:`repro.core.ising_formulation.linear_error_terms`; the model's
    :meth:`objective` equals ``constant + sum W * O_hat`` exactly for
    every decoded :class:`RowSetting` (property-tested).
    """
    w = np.asarray(weights, dtype=float)
    if w.ndim != 2:
        raise DimensionError(f"weights must be 2-D, got ndim={w.ndim}")
    r, c = w.shape

    def a_index(i: int) -> int:
        return i

    def b_index(i: int) -> int:
        return r + i

    def v_index(j: int) -> int:
        return 2 * r + j

    terms: Dict[Tuple[int, ...], float] = {}
    row_sums = w.sum(axis=1)
    offset = float(constant) + float(w.sum()) / 2.0

    for i in range(r):
        # + W_i. * abar_i / 4   and  - W_i. * abar_i bbar_i / 4
        terms[(a_index(i),)] = row_sums[i] / 4.0
        terms[(a_index(i), b_index(i))] = -row_sums[i] / 4.0
        for j in range(c):
            coefficient = w[i, j] / 4.0
            if coefficient == 0.0:
                continue
            # - W_ij * abar_i vbar_j / 4
            terms[(a_index(i), v_index(j))] = -coefficient
            # - W_ij * abar_i bbar_i vbar_j / 4  (the cubic term)
            terms[(a_index(i), b_index(i), v_index(j))] = -coefficient
    return PolynomialIsingModel(2 * r + c, terms, offset)


def row_setting_from_spins(
    spins: np.ndarray, n_rows: int, n_cols: int
) -> RowSetting:
    """Decode ``[a, b, V]`` spins into a :class:`RowSetting`."""
    arr = np.asarray(spins)
    if arr.shape != (2 * n_rows + n_cols,):
        raise DimensionError(
            f"spins must have shape ({2 * n_rows + n_cols},), "
            f"got {arr.shape}"
        )
    bits = spins_to_binary(arr)
    a = bits[:n_rows]
    b = bits[n_rows : 2 * n_rows]
    pattern = bits[2 * n_rows :]
    types = np.array(
        [_BITS_TO_TYPE[(int(a[i]), int(b[i]))] for i in range(n_rows)],
        dtype=np.int8,
    )
    return RowSetting(pattern, types)


def spins_from_row_setting(setting: RowSetting) -> np.ndarray:
    """Encode a :class:`RowSetting` as ``[a, b, V]`` spins."""
    r = setting.n_rows
    a = np.empty(r, dtype=np.int8)
    b = np.empty(r, dtype=np.int8)
    for i, row_type in enumerate(setting.row_types):
        a[i], b[i] = _TYPE_TO_BITS[RowType(int(row_type))]
    bits = np.concatenate([a, b, setting.pattern.astype(np.int8)])
    return (2.0 * bits - 1.0).astype(float)
