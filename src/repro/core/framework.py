"""The DALTA-style outer loop driven by the Ising core-COP solver.

:class:`IsingDecomposer` approximately decomposes every component of a
multi-output function.  Following DALTA's framework (which the paper
adopts), components are optimized *individually and sequentially*, most
significant first, and the pass is repeated for ``R`` rounds; each
component optimization tries ``P`` random candidate partitions and keeps
the best setting found.

Mode semantics (Section 2.4):

* **separate** — each component minimizes its own error rate; a new
  setting is accepted when it lowers that component's ER.
* **joint** — each component minimizes the whole-word MED with all other
  components frozen at their latest approximations (their exact versions
  in round one, before they are first optimized); a new setting is
  accepted when it lowers the global MED, which makes the MED trace
  monotone non-increasing across accepted updates.

Every component ends up with a recorded setting after round one, so the
result always describes a fully decomposed (LUT-cascade realizable)
approximation.

Candidate sweep parallelism
---------------------------

Candidate solves within one component share no state, so the sweep is
embarrassingly parallel.  The partitions are split into a deterministic
number of chunks (:meth:`FrameworkConfig.resolved_chunk_count`), each
chunk receives its own child generator via ``Generator.spawn``, and the
chunks run either inline or — with ``FrameworkConfig.n_workers > 1`` —
across a ``ProcessPoolExecutor``.  Because neither the chunk structure
nor the spawned seeds depend on the worker count, every ``n_workers``
value selects bit-identical partitions and settings under one seed.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.boolean.decomposition import ColumnSetting
from repro.boolean.metrics import (
    error_rate_per_output,
    mean_error_distance,
)
from repro.boolean.partition import InputPartition
from repro.boolean.synthesis import (
    apply_column_setting,
    component_from_column_setting,
)
from repro.boolean.truth_table import TruthTable
from repro.core.batch import (
    BatchedCoreCOPSolver,
    prepare_sweep,
    run_prepared_sweeps,
)
from repro.core.checkpoint import DecomposeCheckpoint
from repro.core.config import CoreSolverConfig, FrameworkConfig
from repro.core.ising_formulation import WeightCache
from repro.resilience.rng import restore_rng
from repro.core.partitions import sample_partitions
from repro.core.solver import CoreCOPSolution, CoreCOPSolver
from repro.ising.kernels import resolve_backend
from repro.ising.solvers.base import SolveResult
from repro.core.theorem3 import alternating_refinement
from repro.boolean.random_functions import random_column_setting
from repro.errors import DimensionError, OperationCancelled
from repro.obs.metrics import get_metrics
from repro.obs.tracing import get_tracer

__all__ = [
    "IsingDecomposer",
    "DecompositionResult",
    "ComponentDecomposition",
    "ProgressHook",
    "CancelHook",
    "CheckpointHook",
]

#: Called with a progress-event dict after every component optimization
#: and completed round; return value ignored.  Events never perturb the
#: RNG streams, so observed runs stay bit-identical to unobserved ones.
ProgressHook = Callable[[Dict], None]

#: Polled between component optimizations; returning ``True`` aborts the
#: run by raising :class:`~repro.errors.OperationCancelled`.
CancelHook = Callable[[], bool]

#: Called with a :class:`~repro.core.checkpoint.DecomposeCheckpoint`
#: after every component optimization.  The hook owns persistence and
#: cadence (e.g. "write every k-th"); exceptions propagate — an attempt
#: that cannot checkpoint should fail loudly, not silently lose its
#: crash safety.  Checkpointing never perturbs the RNG streams.
CheckpointHook = Callable[[DecomposeCheckpoint], None]


def _solve_partition_chunk(
    payload: Tuple[
        TruthTable,
        TruthTable,
        int,
        Tuple[InputPartition, ...],
        str,
        CoreSolverConfig,
        bool,
        np.random.Generator,
    ],
    cache: Optional[WeightCache] = None,
) -> Tuple[float, InputPartition, ColumnSetting, int]:
    """Best (objective, partition, setting, iterations) of one chunk.

    Module-level so it pickles into pool workers; the same function runs
    inline when ``n_workers == 1``, guaranteeing identical numerics.
    ``cache`` only ever short-cuts term construction (bitwise invisible,
    see :class:`WeightCache`), so inline callers may pass the run cache
    while pool workers run cold.
    """
    exact, approx, component, partitions, mode, solver_cfg, batched, rng = (
        payload
    )
    if batched:
        solutions = BatchedCoreCOPSolver(solver_cfg).solve_candidates(
            exact, approx, component, partitions, mode, rng, cache=cache
        )
        best = min(solutions, key=lambda s: s.objective)
        return (
            best.objective,
            best.partition,
            best.setting,
            solver_cfg.max_iterations,
        )
    solver = CoreCOPSolver(solver_cfg)
    best: Optional[CoreCOPSolution] = None
    for partition in partitions:
        if cache is not None:
            model = cache.model(exact, approx, component, partition, mode)
            solution = solver.solve_model(model, rng)
            solution.partition = partition
        else:
            solution = solver.solve(
                exact, approx, component, partition, mode, rng
            )
        if best is None or solution.objective < best.objective:
            best = solution
    return (
        best.objective,
        best.partition,
        best.setting,
        best.solve_result.n_iterations,
    )


def _split_chunks(
    partitions: Sequence[InputPartition], n_chunks: int
) -> List[Tuple[InputPartition, ...]]:
    """Split candidates into ``n_chunks`` contiguous, size-balanced runs."""
    n = len(partitions)
    n_chunks = max(1, min(n_chunks, n))
    bounds = [n * i // n_chunks for i in range(n_chunks + 1)]
    return [
        tuple(partitions[bounds[i] : bounds[i + 1]])
        for i in range(n_chunks)
    ]


@dataclass
class ComponentDecomposition:
    """The accepted decomposition of one output component.

    Attributes
    ----------
    component:
        0-based output index.
    partition:
        Input partition of the accepted setting.
    setting:
        The accepted column-based setting.
    objective:
        Error value the setting was accepted at (component ER in
        separate mode, global MED in joint mode, at acceptance time).
    n_solver_iterations:
        Euler iterations of the accepting bSB run.
    """

    component: int
    partition: InputPartition
    setting: ColumnSetting
    objective: float
    n_solver_iterations: int

    @property
    def lut_bits(self) -> int:
        """Bit cost of this component as a two-LUT cascade."""
        return component_from_column_setting(
            self.partition, self.setting
        ).lut_bits


@dataclass
class DecompositionResult:
    """Full outcome of :meth:`IsingDecomposer.decompose`.

    Attributes
    ----------
    exact / approx:
        The original function and its decomposable approximation.
    components:
        Accepted per-component decompositions, keyed by output index.
    med:
        Final mean error distance (Eq. 2).
    error_rates:
        Final per-component error rates.
    med_trace:
        Global MED after each completed round.
    rounds_used:
        Rounds executed (may stop early on stall).
    runtime_seconds:
        Total wall clock.
    n_cop_solves:
        Number of core-COP instances solved.
    """

    exact: TruthTable
    approx: TruthTable
    components: Dict[int, ComponentDecomposition]
    med: float
    error_rates: np.ndarray
    med_trace: List[float] = field(default_factory=list)
    rounds_used: int = 0
    runtime_seconds: float = 0.0
    n_cop_solves: int = 0

    @property
    def total_lut_bits(self) -> int:
        """Total storage of the decomposed design (sum of cascades)."""
        return sum(c.lut_bits for c in self.components.values())

    @property
    def flat_lut_bits(self) -> int:
        """Storage of the undecomposed design, ``m * 2**n`` bits."""
        return self.exact.n_outputs * self.exact.size

    @property
    def compression_ratio(self) -> float:
        """``flat_lut_bits / total_lut_bits`` (> 1 means smaller LUTs)."""
        total = self.total_lut_bits
        if total == 0:
            return float("inf")
        return self.flat_lut_bits / total


class IsingDecomposer:
    """Approximate disjoint decomposition of multi-output functions.

    Parameters
    ----------
    config:
        Framework parameters (mode, ``P``, ``R``, free-set size, solver
        configuration, seed);
        see :class:`~repro.core.config.FrameworkConfig`.

    Examples
    --------
    >>> from repro.boolean import TruthTable
    >>> from repro.core import FrameworkConfig, IsingDecomposer
    >>> table = TruthTable.from_integer_function(
    ...     lambda x: (x * 3) % 16, n_inputs=5, n_outputs=4)
    >>> config = FrameworkConfig(mode="joint", free_size=2,
    ...                          n_partitions=4, n_rounds=2, seed=0)
    >>> result = IsingDecomposer(config).decompose(table)
    >>> sorted(result.components) == [0, 1, 2, 3]
    True
    """

    def __init__(
        self,
        config: Optional[FrameworkConfig] = None,
        sweep_gate=None,
    ) -> None:
        self.config = config if config is not None else FrameworkConfig()
        self._solver = CoreCOPSolver(self.config.solver)
        # run-level weight-term memoization; refreshed per decompose()
        self._cache = WeightCache()
        self._executor: Optional[ProcessPoolExecutor] = None
        # optional cross-job fusion handle (a GateParticipant from
        # repro.core.fusion, or anything with ``submit(sweeps)``); used
        # only by the inline batched path — pool chunks run in separate
        # processes and cannot share kernel passes
        self._sweep_gate = sweep_gate

    # ------------------------------------------------------------------

    def _candidate_partitions(
        self, n_inputs: int, rng: np.random.Generator
    ) -> List[InputPartition]:
        return sample_partitions(
            n_inputs, self.config.free_size, self.config.n_partitions, rng
        )

    def _prescreen(
        self,
        exact: TruthTable,
        approx: TruthTable,
        component: int,
        partitions: List[InputPartition],
        rng: np.random.Generator,
    ) -> List[InputPartition]:
        """Keep the most promising partitions via the cheap alternating
        heuristic (extension; active only when ``prescreen_keep`` is set).
        """
        keep = self.config.prescreen_keep
        if keep is None or keep >= len(partitions):
            return partitions
        scored = []
        for partition in partitions:
            model = self._cache.model(
                exact, approx, component, partition, self.config.mode
            )
            seed_setting = random_column_setting(
                model.n_rows, model.n_cols, rng
            )
            _, cost, _ = alternating_refinement(model.weights, seed_setting)
            scored.append((cost, partition))
        scored.sort(key=lambda pair: pair[0])
        return [partition for _, partition in scored[:keep]]

    def _optimize_component(
        self,
        exact: TruthTable,
        approx: TruthTable,
        component: int,
        partition_rng: np.random.Generator,
        solver_rng: np.random.Generator,
    ) -> CoreCOPSolution:
        """Best setting for one component over fresh candidate partitions.

        The candidates are split into deterministic chunks, each chunk
        solved by :func:`_solve_partition_chunk` with its own spawned
        child generator — inline, or across the process pool when the
        framework runs with ``n_workers > 1``.  The chunk structure and
        the spawn sequence never depend on the worker count, so the
        selected setting is identical for any ``n_workers``.
        """
        start = time.perf_counter()
        cfg = self.config
        tracer = get_tracer()
        with tracer.span(
            "partition_enumeration", category="stage", component=component
        ):
            partitions = self._candidate_partitions(
                exact.n_inputs, partition_rng
            )
        with tracer.span(
            "prescreen",
            category="stage",
            component=component,
            n_candidates=len(partitions),
        ):
            partitions = self._prescreen(
                exact, approx, component, partitions, solver_rng
            )
        chunks = _split_chunks(
            partitions, cfg.resolved_chunk_count(len(partitions))
        )
        chunk_rngs = solver_rng.spawn(len(chunks))
        payloads = [
            (
                exact,
                approx,
                component,
                chunk,
                cfg.mode,
                cfg.solver,
                cfg.batched,
                chunk_rng,
            )
            for chunk, chunk_rng in zip(chunks, chunk_rngs)
        ]
        with tracer.span(
            "candidate_sweep",
            category="stage",
            component=component,
            n_partitions=len(partitions),
            n_chunks=len(chunks),
            # pool workers are separate processes with the default
            # (null) tracer, so kernel-level spans cover the inline path
            parallel=self._executor is not None and len(chunks) > 1,
        ):
            if self._executor is not None and len(chunks) > 1:
                results = list(
                    self._executor.map(_solve_partition_chunk, payloads)
                )
            elif cfg.batched:
                # inline batched path: prepare every chunk's sweep
                # (consuming each chunk RNG exactly as a chunk-by-chunk
                # run would), then advance the whole component in one
                # fused pass — optionally rendezvousing with other
                # jobs' sweeps through the fusion gate.  Chunk results
                # are bit-identical to sequential chunk solves (float64
                # sweeps replay solo inside the batch; float32 packing
                # is tolerance-contract).
                sweeps = [
                    prepare_sweep(
                        cfg.solver, exact, approx, component, chunk,
                        cfg.mode, rng=chunk_rng, cache=self._cache,
                    )
                    for chunk, chunk_rng in zip(chunks, chunk_rngs)
                ]
                if self._sweep_gate is not None:
                    self._sweep_gate.submit(sweeps)
                else:
                    run_prepared_sweeps(sweeps)
                results = []
                for sweep in sweeps:
                    solutions = sweep.finalize()
                    chunk_best = min(
                        solutions, key=lambda s: s.objective
                    )
                    results.append(
                        (
                            chunk_best.objective,
                            chunk_best.partition,
                            chunk_best.setting,
                            cfg.solver.max_iterations,
                        )
                    )
            else:
                results = [
                    _solve_partition_chunk(payload, cache=self._cache)
                    for payload in payloads
                ]
        best = min(results, key=lambda item: item[0])
        objective, partition, setting, n_iterations = best
        return CoreCOPSolution(
            setting=setting,
            objective=objective,
            partition=partition,
            solve_result=SolveResult(
                spins=np.empty(0),
                energy=objective,
                objective=objective,
                n_iterations=n_iterations,
                stop_reason=(
                    "batched_fixed_budget" if cfg.batched else "chunk_best"
                ),
                runtime_seconds=time.perf_counter() - start,
                metadata={
                    "solver": "bsb",
                    "backend": resolve_backend(cfg.solver.backend),
                    "dtype": (
                        "float32"
                        if resolve_backend(cfg.solver.backend) == "numpy32"
                        else "float64"
                    ),
                    "n_replicas": cfg.solver.n_replicas,
                },
            ),
            runtime_seconds=time.perf_counter() - start,
        )

    def _baseline_error(
        self, exact: TruthTable, approx: TruthTable, component: int
    ) -> float:
        if self.config.mode == "joint":
            return mean_error_distance(exact, approx)
        return float(error_rate_per_output(exact, approx)[component])

    # ------------------------------------------------------------------

    def decompose(
        self,
        table: TruthTable,
        *,
        progress: Optional[ProgressHook] = None,
        should_cancel: Optional[CancelHook] = None,
        resume: Optional[DecomposeCheckpoint] = None,
        checkpoint_hook: Optional[CheckpointHook] = None,
    ) -> DecompositionResult:
        """Run the full ``R``-round, MSB-first decomposition of ``table``.

        Parameters
        ----------
        table:
            The exact function to decompose.
        resume:
            Continue from a :class:`~repro.core.checkpoint.
            DecomposeCheckpoint` instead of starting fresh.  The
            checkpoint must belong to the same exact table (validated
            by content hash); completed components and both RNG streams
            are restored, so the finished run is bit-identical to an
            uninterrupted one under the same config.
        checkpoint_hook:
            Optional :data:`CheckpointHook` receiving a snapshot after
            every component optimization (the hook owns persistence
            cadence).
        progress:
            Optional :data:`ProgressHook`; receives
            ``{"event": "component", "round", "component", "accepted",
            "objective"}`` after every component optimization and
            ``{"event": "round", "round", "med"}`` after every completed
            round.  The service layer uses this for heartbeats/lease
            renewal.  Hooks observe only — they cannot perturb the
            seeded search, so results are identical with or without one.
        should_cancel:
            Optional :data:`CancelHook`, polled before every component
            optimization.  Returning ``True`` raises
            :class:`~repro.errors.OperationCancelled` (cooperative
            cancellation: in-flight solver chunks finish, nothing is
            left running).  Because each run starts from its seed, a
            cancelled run can simply be re-executed — determinism makes
            resume-from-scratch exact.
        """
        if table.n_inputs <= self.config.free_size:
            raise DimensionError(
                f"free_size {self.config.free_size} must be smaller than "
                f"the input count {table.n_inputs}"
            )
        start = time.perf_counter()
        # Separate streams: partition sampling must not be perturbed by
        # how many random numbers the inner solver consumes, so that
        # different methods under the same seed explore the *same*
        # candidate partitions (apples-to-apples benchmarking).
        seed = self.config.seed
        partition_rng = np.random.default_rng(seed)
        solver_rng = np.random.default_rng(
            None if seed is None else seed + 0x9E3779B9
        )
        exact = table
        approx = table
        components: Dict[int, ComponentDecomposition] = {}
        med_trace: List[float] = []
        n_solves = 0
        rounds_used = 0
        start_round = 0
        start_position = 0
        if resume is not None:
            resume.validate_for(exact)
            approx = resume.restore_approx()
            components = {
                index: ComponentDecomposition(
                    component=index,
                    partition=entry["partition"],
                    setting=entry["setting"],
                    objective=entry["objective"],
                    n_solver_iterations=entry["n_solver_iterations"],
                )
                for index, entry in resume.components.items()
            }
            med_trace = list(resume.med_trace)
            n_solves = int(resume.n_solves)
            rounds_used = resume.round_index
            start_round = resume.round_index
            start_position = resume.position
            # the restored streams sit exactly where the interrupted
            # run left them — skipped rounds/components consume nothing
            if resume.partition_rng:
                partition_rng = restore_rng(resume.partition_rng)
            if resume.solver_rng:
                solver_rng = restore_rng(resume.solver_rng)
        # fresh memoization per run: separate-mode terms stay valid
        # throughout; joint-mode entries are dropped whenever the
        # approximation changes (below)
        self._cache = WeightCache()
        executor: Optional[ProcessPoolExecutor] = None
        if self.config.n_workers > 1:
            executor = ProcessPoolExecutor(
                max_workers=self.config.n_workers
            )
        self._executor = executor
        tracer = get_tracer()
        metrics = get_metrics()

        try:
            with tracer.span(
                "decompose",
                category="framework",
                n_inputs=exact.n_inputs,
                n_outputs=exact.n_outputs,
                mode=self.config.mode,
                n_partitions=self.config.n_partitions,
                n_rounds=self.config.n_rounds,
            ):
                for round_index in range(start_round, self.config.n_rounds):
                    rounds_used = round_index + 1
                    resuming_round = (
                        resume is not None and round_index == start_round
                    )
                    any_accepted = (
                        resume.any_accepted if resuming_round else False
                    )
                    with tracer.span(
                        "round", category="framework",
                        round=round_index + 1,
                    ):
                        # most significant output first (weight 2**k)
                        order = list(reversed(range(exact.n_outputs)))
                        for position, component in enumerate(order):
                            if (
                                resuming_round
                                and position < start_position
                            ):
                                continue
                            if should_cancel is not None and should_cancel():
                                raise OperationCancelled(
                                    f"decomposition cancelled in round "
                                    f"{round_index + 1} before component "
                                    f"{component}"
                                )
                            with tracer.span(
                                "component", category="framework",
                                round=round_index + 1, component=component,
                            ):
                                solution = self._optimize_component(
                                    exact, approx, component,
                                    partition_rng, solver_rng,
                                )
                                n_solves += self.config.n_partitions
                                baseline = self._baseline_error(
                                    exact, approx, component
                                )
                                must_accept = component not in components
                                accepted = (
                                    must_accept
                                    or solution.objective
                                    < baseline - 1e-12
                                )
                                if accepted:
                                    with tracer.span(
                                        "synthesis_verify",
                                        category="stage",
                                        component=component,
                                    ):
                                        approx = apply_column_setting(
                                            approx, component,
                                            solution.partition,
                                            solution.setting,
                                        )
                                        # joint-mode weight terms bake in
                                        # the current approximation; the
                                        # accepted setting changed it
                                        self._cache.invalidate_joint()
                                    components[component] = (
                                        ComponentDecomposition(
                                            component=component,
                                            partition=solution.partition,
                                            setting=solution.setting,
                                            objective=solution.objective,
                                            n_solver_iterations=(
                                                solution.solve_result
                                                .n_iterations
                                            ),
                                        )
                                    )
                                    any_accepted = True
                                metrics.counter(
                                    "framework_component_optimizations"
                                    "_total",
                                    help="component optimizations run",
                                ).inc()
                                if accepted:
                                    metrics.counter(
                                        "framework_settings_accepted"
                                        "_total",
                                        help="accepted column settings",
                                    ).inc()
                            if progress is not None:
                                progress(
                                    {
                                        "event": "component",
                                        "round": round_index + 1,
                                        "component": component,
                                        "accepted": accepted,
                                        "objective": float(
                                            solution.objective
                                        ),
                                    }
                                )
                            if checkpoint_hook is not None:
                                checkpoint_hook(
                                    DecomposeCheckpoint.capture(
                                        round_index=round_index,
                                        position=position + 1,
                                        exact=exact,
                                        approx=approx,
                                        components=components,
                                        med_trace=med_trace,
                                        n_solves=n_solves,
                                        any_accepted=any_accepted,
                                        partition_rng=partition_rng,
                                        solver_rng=solver_rng,
                                    )
                                )
                        med_trace.append(
                            mean_error_distance(exact, approx)
                        )
                    if progress is not None:
                        progress(
                            {
                                "event": "round",
                                "round": round_index + 1,
                                "med": float(med_trace[-1]),
                            }
                        )
                    if self.config.stop_when_stalled and not any_accepted:
                        break
        finally:
            self._executor = None
            if executor is not None:
                executor.shutdown()

        runtime = time.perf_counter() - start
        return DecompositionResult(
            exact=exact,
            approx=approx,
            components=components,
            med=mean_error_distance(exact, approx),
            error_rates=error_rate_per_output(exact, approx),
            med_trace=med_trace,
            rounds_used=rounds_used,
            runtime_seconds=runtime,
            n_cop_solves=n_solves,
        )
