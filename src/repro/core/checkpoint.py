"""Crash-safe checkpoints of the outer decomposition loop.

A decomposition is a seeded, deterministic search, so a crashed run
*could* always restart from scratch — but paper-scale jobs spend
minutes per component, and the service's retry loop would pay that
cost again on every attempt.  A :class:`DecomposeCheckpoint` snapshots
the outer loop at a component boundary:

* the current approximation (the only mutable table),
* every accepted component decomposition,
* the round/position cursor in the MSB-first iteration order,
* the per-round bookkeeping (``med_trace``, solve count, the
  current round's accepted flag), and
* **both RNG streams**, captured seed-sequence-aware
  (:mod:`repro.resilience.rng`) so the resumed run draws the same
  candidate partitions *and* spawns the same per-chunk child
  generators as the uninterrupted one.

Resuming replays nothing and re-rolls nothing: the restored state is
byte-identical to the live state at capture time, which makes the
final design of an interrupted-and-resumed job bit-identical to an
uninterrupted run of the same spec (asserted by the chaos suite).

A checkpoint is bound to its problem by the SHA-256 of the exact
table; resuming against a different table raises
:class:`~repro.errors.ConfigurationError` instead of silently mixing
two searches.  The payload is plain JSON — it travels through the
artifact store's checkpoint area and is human-inspectable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.boolean.truth_table import TruthTable
from repro.errors import ConfigurationError
from repro.resilience.rng import capture_rng
from repro.serialization import (
    _partition_from_dict,
    _partition_to_dict,
    _setting_from_dict,
    _setting_to_dict,
)

__all__ = ["DecomposeCheckpoint", "table_sha256"]

#: wire-format discriminator of a serialized checkpoint
CHECKPOINT_FORMAT = "repro-decompose-checkpoint"
CHECKPOINT_SCHEMA_VERSION = 1


def table_sha256(table: TruthTable) -> str:
    """Content hash binding a checkpoint to its exact problem table."""
    outputs = np.packbits(table.outputs.astype(np.uint8).ravel())
    probabilities = np.ascontiguousarray(table.probabilities, dtype="<f8")
    digest = hashlib.sha256()
    digest.update(outputs.tobytes())
    digest.update(probabilities.tobytes())
    digest.update(f"{table.n_inputs}x{table.n_outputs}".encode())
    return digest.hexdigest()


def _table_to_dict(table: TruthTable) -> Dict:
    packed = np.packbits(table.outputs.astype(np.uint8).ravel())
    return {
        "n_inputs": table.n_inputs,
        "n_outputs": table.n_outputs,
        "outputs_hex": packed.tobytes().hex(),
        "probabilities": [float(p) for p in table.probabilities],
    }


def _table_from_dict(data: Dict) -> TruthTable:
    n_inputs = int(data["n_inputs"])
    n_outputs = int(data["n_outputs"])
    packed = np.frombuffer(
        bytes.fromhex(data["outputs_hex"]), dtype=np.uint8
    )
    outputs = np.unpackbits(
        packed, count=(1 << n_inputs) * n_outputs
    ).reshape(1 << n_inputs, n_outputs)
    return TruthTable(outputs, data.get("probabilities"))


@dataclass
class DecomposeCheckpoint:
    """Outer-loop snapshot at a component boundary (see module docs).

    Attributes
    ----------
    round_index:
        0-based index of the round the cursor is in.
    position:
        Components already completed in that round, counted along the
        MSB-first order; ``position == n_outputs`` means the round's
        component loop finished but its round-end bookkeeping has not
        run yet (the resume path recomputes it).
    exact_sha256:
        Binds the checkpoint to its problem (validated on resume).
    approx:
        Serialized current approximation table.
    components:
        ``component -> {"partition", "setting", "objective",
        "n_solver_iterations"}`` with live partition/setting objects.
    any_accepted:
        Whether the current (partial) round accepted any setting yet.
    partition_rng / solver_rng:
        Seed-sequence-aware RNG snapshots.
    """

    round_index: int
    position: int
    exact_sha256: str
    approx: Dict
    components: Dict[int, Dict]
    med_trace: List[float] = field(default_factory=list)
    n_solves: int = 0
    any_accepted: bool = False
    partition_rng: Dict = field(default_factory=dict)
    solver_rng: Dict = field(default_factory=dict)

    # ------------------------------------------------------------------

    @classmethod
    def capture(
        cls,
        *,
        round_index: int,
        position: int,
        exact: TruthTable,
        approx: TruthTable,
        components: Dict[int, object],
        med_trace: List[float],
        n_solves: int,
        any_accepted: bool,
        partition_rng: np.random.Generator,
        solver_rng: np.random.Generator,
    ) -> "DecomposeCheckpoint":
        """Snapshot the live loop state (components are duck-typed:
        anything with partition/setting/objective/n_solver_iterations).
        """
        return cls(
            round_index=int(round_index),
            position=int(position),
            exact_sha256=table_sha256(exact),
            approx=_table_to_dict(approx),
            components={
                int(index): {
                    "partition": comp.partition,
                    "setting": comp.setting,
                    "objective": float(comp.objective),
                    "n_solver_iterations": int(comp.n_solver_iterations),
                }
                for index, comp in components.items()
            },
            med_trace=[float(m) for m in med_trace],
            n_solves=int(n_solves),
            any_accepted=bool(any_accepted),
            partition_rng=capture_rng(partition_rng),
            solver_rng=capture_rng(solver_rng),
        )

    def restore_approx(self) -> TruthTable:
        """Rebuild the approximation table at capture time."""
        return _table_from_dict(self.approx)

    def validate_for(self, exact: TruthTable) -> None:
        """Refuse to resume a checkpoint against a different problem."""
        actual = table_sha256(exact)
        if actual != self.exact_sha256:
            raise ConfigurationError(
                "checkpoint does not belong to this problem: exact-table "
                f"hash {actual[:12]}… != checkpoint {self.exact_sha256[:12]}…"
            )

    # -- JSON round trip -----------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "format": CHECKPOINT_FORMAT,
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "round_index": self.round_index,
            "position": self.position,
            "exact_sha256": self.exact_sha256,
            "approx": dict(self.approx),
            "components": {
                str(index): {
                    "partition": _partition_to_dict(entry["partition"]),
                    "setting": _setting_to_dict(entry["setting"]),
                    "objective": entry["objective"],
                    "n_solver_iterations": entry["n_solver_iterations"],
                }
                for index, entry in self.components.items()
            },
            "med_trace": list(self.med_trace),
            "n_solves": self.n_solves,
            "any_accepted": self.any_accepted,
            "partition_rng": dict(self.partition_rng),
            "solver_rng": dict(self.solver_rng),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "DecomposeCheckpoint":
        if data.get("format") != CHECKPOINT_FORMAT:
            raise ConfigurationError(
                f"not a {CHECKPOINT_FORMAT} document "
                f"(format={data.get('format')!r})"
            )
        if data.get("schema_version") != CHECKPOINT_SCHEMA_VERSION:
            raise ConfigurationError(
                "unsupported checkpoint schema_version "
                f"{data.get('schema_version')!r}"
            )
        return cls(
            round_index=int(data["round_index"]),
            position=int(data["position"]),
            exact_sha256=str(data["exact_sha256"]),
            approx=dict(data["approx"]),
            components={
                int(index): {
                    "partition": _partition_from_dict(entry["partition"]),
                    "setting": _setting_from_dict(entry["setting"]),
                    "objective": float(entry["objective"]),
                    "n_solver_iterations": int(
                        entry["n_solver_iterations"]
                    ),
                }
                for index, entry in data["components"].items()
            },
            med_trace=[float(m) for m in data.get("med_trace", ())],
            n_solves=int(data.get("n_solves", 0)),
            any_accepted=bool(data.get("any_accepted", False)),
            partition_rng=dict(data.get("partition_rng", {})),
            solver_rng=dict(data.get("solver_rng", {})),
        )
