"""Candidate input-partition generation for the framework.

DALTA (and this reproduction) explores the partition dimension by random
sampling: ``P`` candidate partitions per component optimization.
Partitions are sampled uniformly *without replacement* over the
``C(n, |A|)`` possible free sets; when ``P`` meets or exceeds the total
count the full enumeration is returned instead.  Variables inside each
set are kept in ascending order (the canonical form), since variable
order inside a set only permutes matrix rows/columns and never changes
the achievable error.
"""

from __future__ import annotations

import itertools
from math import comb
from typing import Iterator, List, Optional, Union

import numpy as np

from repro.boolean.partition import InputPartition
from repro.errors import PartitionError

__all__ = ["all_partitions", "sample_partitions"]


def all_partitions(n_inputs: int, free_size: int) -> Iterator[InputPartition]:
    """Enumerate every canonical partition with ``|A| = free_size``."""
    if not 0 < free_size < n_inputs:
        raise PartitionError(
            f"free_size must be in (0, {n_inputs}), got {free_size}"
        )
    variables = range(n_inputs)
    for free in itertools.combinations(variables, free_size):
        bound = tuple(v for v in variables if v not in free)
        yield InputPartition(free, bound, n_inputs)


def sample_partitions(
    n_inputs: int,
    free_size: int,
    count: int,
    rng: Optional[Union[int, np.random.Generator]] = None,
) -> List[InputPartition]:
    """Sample ``count`` distinct canonical partitions uniformly.

    Returns all ``C(n_inputs, free_size)`` partitions when ``count``
    covers them (in that case the result is deterministic and sorted).
    """
    if not 0 < free_size < n_inputs:
        raise PartitionError(
            f"free_size must be in (0, {n_inputs}), got {free_size}"
        )
    if count <= 0:
        raise PartitionError(f"count must be positive, got {count}")
    total = comb(n_inputs, free_size)
    if count >= total:
        return list(all_partitions(n_inputs, free_size))

    rng = np.random.default_rng(rng)
    chosen = set()
    partitions: List[InputPartition] = []
    # Rejection sampling stays cheap because count < total by construction;
    # the expected number of draws is count * total / (total - count + 1).
    while len(partitions) < count:
        free = tuple(
            sorted(int(v) for v in rng.choice(n_inputs, free_size,
                                              replace=False))
        )
        if free in chosen:
            continue
        chosen.add(free)
        bound = tuple(v for v in range(n_inputs) if v not in free)
        partitions.append(InputPartition(free, bound, n_inputs))
    return partitions
