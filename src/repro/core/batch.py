"""Batched bSB over many candidate partitions at once.

The framework's hot loop solves ``P`` core COPs per component — one per
candidate partition.  All of them share one shape (``r x c`` follows
from ``|A|``/``|B|``, not from the particular partition), so their bSB
dynamics vectorize perfectly: stack the weight matrices into a
``(P, r, c)`` tensor and evolve a ``(P, n_replicas, 2r + c)`` oscillator
state with one fused kernel step (:mod:`repro.ising.kernels`).  One
backend call then advances *every* candidate's every replica — the
software analogue of the massive parallelism the paper cites as SB's
hardware advantage.  The stepping backend follows
:attr:`~repro.core.config.CoreSolverConfig.backend` (``numpy64`` /
``numpy32`` / ``numba``); decoded spins are always scored in float64.

:class:`BatchedCoreCOPSolver` exposes ``solve_candidates`` returning
the per-partition best settings; :class:`repro.core.framework
.IsingDecomposer` uses it when ``FrameworkConfig.batched`` is set.
The batched path integrates for a fixed number of iterations (a global
dynamic stop across a batch would couple unrelated instances), applies
the Theorem-3 intervention vectorized across the whole stack, and uses
the same symmetry-breaking initialization as the sequential solver.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.boolean.decomposition import ColumnSetting
from repro.boolean.partition import InputPartition
from repro.boolean.truth_table import TruthTable
from repro.core.config import CoreSolverConfig
from repro.core.ising_formulation import WeightCache, linear_error_terms
from repro.errors import DimensionError
from repro.ising.kernels import make_kernel
from repro.ising.schedules import LinearPump
from repro.obs.tracing import get_tracer

__all__ = ["BatchedCoreCOPSolver", "BatchedSolution"]


@dataclass
class BatchedSolution:
    """Best decoded setting for one candidate partition of the batch."""

    partition: InputPartition
    setting: ColumnSetting
    objective: float
    runtime_seconds: float = 0.0


class _StackedBipartiteDynamics:
    """Vectorized energies/fields for a stack of bipartite core COPs.

    Weight stack ``W`` has shape ``(P, r, c)``; states have shape
    ``(P, R, N)`` with ``N = 2r + c``.  The arithmetic is owned by a
    backend kernel; energies are always evaluated by the float64
    reference kernel so objective bookkeeping is dtype-independent.
    """

    def __init__(
        self,
        weights: np.ndarray,
        offsets: np.ndarray,
        backend: Optional[str] = None,
    ) -> None:
        w = np.asarray(weights, dtype=float)
        if w.ndim != 3:
            raise DimensionError(
                f"weight stack must be 3-D (P, r, c), got ndim={w.ndim}"
            )
        self.kernel = make_kernel(w, backend=backend)
        self._scorer = (
            self.kernel
            if self.kernel.dtype == np.float64
            else make_kernel(w, backend="numpy64")
        )
        self.k = w / 4.0
        self.a = self.k.sum(axis=2)  # (P, r)
        self.offsets = np.asarray(offsets, dtype=float)
        self.n_problems, self.n_rows, self.n_cols = w.shape
        self.n_spins = 2 * self.n_rows + self.n_cols

    def split(self, x: np.ndarray):
        r = self.n_rows
        return x[..., :r], x[..., r : 2 * r], x[..., 2 * r :]

    def energy(self, spins: np.ndarray) -> np.ndarray:
        """Energies of a ``(P, R, N)`` spin stack, shape ``(P, R)``."""
        return self._scorer.energy(np.asarray(spins, dtype=float))

    def fields(self, x: np.ndarray) -> np.ndarray:
        """Local fields of a ``(P, R, N)`` position stack."""
        return self._scorer.fields(np.asarray(x, dtype=float))

    def coupling_rms(self) -> float:
        # closed form over the stacked bipartite blocks — never builds
        # the dense J of any instance
        return self.kernel.coupling_rms()

    def optimal_types(self, v1_bits: np.ndarray,
                      v2_bits: np.ndarray) -> np.ndarray:
        """Vectorized Theorem 3 across the whole stack.

        ``v1_bits``/``v2_bits`` have shape ``(P, R, r)``; returns
        ``(P, R, c)`` 0/1 types.
        """
        weights = 4.0 * self.k
        cost1 = np.einsum("pRr,prc->pRc", v1_bits.astype(float), weights)
        cost2 = np.einsum("pRr,prc->pRc", v2_bits.astype(float), weights)
        return (cost2 < cost1).astype(np.uint8)


class BatchedCoreCOPSolver:
    """Solve all candidate partitions of one component in one bSB run.

    Parameters
    ----------
    config:
        Same knobs as :class:`~repro.core.solver.CoreCOPSolver`; the
        dynamic stop is replaced by the fixed ``max_iterations`` budget
        (see module docstring).  ``config.backend`` selects the
        stepping kernel.
    """

    def __init__(self, config: Optional[CoreSolverConfig] = None) -> None:
        self.config = config if config is not None else CoreSolverConfig()

    def solve_candidates(
        self,
        exact_table: TruthTable,
        approx_table: TruthTable,
        component: int,
        partitions: Sequence[InputPartition],
        mode: str,
        rng: Optional[np.random.Generator] = None,
        cache: Optional[WeightCache] = None,
    ) -> List[BatchedSolution]:
        """Solve the core COP for every partition; one entry each.

        ``cache`` optionally memoizes the per-partition weight terms
        (see :class:`~repro.core.ising_formulation.WeightCache`); it
        never changes the numerics, only skips rebuilding terms another
        caller (e.g. prescreening) already produced this run.
        """
        if not partitions:
            raise DimensionError("need at least one candidate partition")
        free_sizes = {len(p.free) for p in partitions}
        if len(free_sizes) != 1:
            raise DimensionError(
                "batched solving needs one common free-set size, got "
                f"{sorted(free_sizes)}"
            )
        start = time.perf_counter()
        rng = np.random.default_rng(rng)
        cfg = self.config
        tracer = get_tracer()

        with tracer.span(
            "weight_build",
            category="stage",
            component=component,
            n_partitions=len(partitions),
        ):
            weight_stack = []
            offsets = []
            for partition in partitions:
                if cache is not None:
                    weights, constant = cache.terms(
                        exact_table, approx_table, component, partition,
                        mode,
                    )
                else:
                    weights, constant = linear_error_terms(
                        exact_table, approx_table, component, partition,
                        mode,
                    )
                weight_stack.append(weights)
                offsets.append(constant + weights.sum() / 2.0)
            dynamics = _StackedBipartiteDynamics(
                np.stack(weight_stack), np.array(offsets),
                backend=cfg.backend,
            )
        kernel = dynamics.kernel

        p = dynamics.n_problems
        reps = cfg.n_replicas
        n = dynamics.n_spins
        r = dynamics.n_rows

        rms = dynamics.coupling_rms()
        c0 = 1.0 if rms <= 0 else 0.5 / (rms * np.sqrt(n))
        ramp = cfg.resolved_ramp_iterations
        pump = LinearPump(cfg.a0, ramp)
        dt, a0 = cfg.dt, cfg.a0

        amplitude = 0.1
        x = rng.uniform(-amplitude, amplitude, (p, reps, n))
        y = rng.uniform(-amplitude, amplitude, (p, reps, n))
        if cfg.symmetry_breaking_init:
            x[..., r : 2 * r] = -x[..., :r]
        x, y = kernel.prepare_state(x, y)

        best_energy = np.full(p, np.inf)
        best_spins = np.where(x[:, 0, :] >= 0, 1.0, -1.0).astype(float)

        def sample(iteration_spins):
            nonlocal best_energy, best_spins
            energies = dynamics.energy(iteration_spins)  # (P, R)
            replica = np.argmin(energies, axis=1)
            current = energies[np.arange(p), replica]
            improved = current < best_energy
            if improved.any():
                best_energy = np.where(improved, current, best_energy)
                picked = iteration_spins[np.arange(p), replica]
                best_spins = np.where(
                    improved[:, np.newaxis], picked, best_spins
                )

        def decode(positions):
            return np.where(positions >= 0, 1.0, -1.0)

        sample_every = cfg.sample_every
        with tracer.span(
            "sb_solve",
            category="stage",
            component=component,
            n_problems=p,
            n_replicas=reps,
            n_spins=n,
            backend=kernel.name,
            batched=True,
        ):
            for iteration in range(1, cfg.max_iterations + 1):
                a_t = pump(iteration)
                kernel.step(x, y, a_t, dt, a0, c0)

                if iteration % sample_every == 0:
                    spins = decode(x)
                    sample(spins)
                    if cfg.use_intervention:
                        v1_bits = (x[..., :r] >= 0).astype(np.uint8)
                        v2_bits = (
                            x[..., r : 2 * r] >= 0
                        ).astype(np.uint8)
                        types = dynamics.optimal_types(v1_bits, v2_bits)
                        x[..., 2 * r :] = 2.0 * types - 1.0
                        y[..., 2 * r :] = 0.0
                        spins_after = decode(x)
                        # skip the stack-wide re-score when the
                        # overwrite did not flip any decoded type spin
                        if not np.array_equal(spins_after, spins):
                            sample(spins_after)

            sample(decode(x))

        elapsed = time.perf_counter() - start
        solutions = []
        with tracer.span(
            "decode", category="stage", component=component, batched=True
        ):
            for index, partition in enumerate(partitions):
                spins = best_spins[index]
                bits = ((spins + 1) // 2).astype(np.uint8)
                setting = ColumnSetting(
                    bits[:r], bits[r : 2 * r], bits[2 * r :]
                )
                objective = float(
                    best_energy[index] + dynamics.offsets[index]
                )
                solutions.append(
                    BatchedSolution(
                        partition=partition,
                        setting=setting,
                        objective=objective,
                    )
                )
        # annotate the shared wall clock so callers can report it
        for solution in solutions:
            solution.runtime_seconds = elapsed / len(solutions)
        return solutions

    def __repr__(self) -> str:
        return f"BatchedCoreCOPSolver(config={self.config!r})"
