"""Batched bSB over many candidate partitions at once.

The framework's hot loop solves ``P`` core COPs per component — one per
candidate partition.  All of them share one shape (``r x c`` follows
from ``|A|``/``|B|``, not from the particular partition), so their bSB
dynamics vectorize perfectly: stack the weight matrices into a
``(P, r, c)`` tensor and evolve a ``(P, n_replicas, 2r + c)`` oscillator
state with one fused kernel step (:mod:`repro.ising.kernels`).  One
backend call then advances *every* candidate's every replica — the
software analogue of the massive parallelism the paper cites as SB's
hardware advantage.  The stepping backend follows
:attr:`~repro.core.config.CoreSolverConfig.backend` (``numpy64`` /
``numpy32`` / ``numba`` / ``native32`` / ``torch`` / ``cupy``); decoded
spins are always scored in float64.

The solve is split into *prepare* and *run* so independent sweeps can
be fused: :func:`prepare_sweep` builds a :class:`PreparedSweep` (weight
stack, kernel state, RNG-consumed initialization, objective
bookkeeping) without advancing it, and :func:`run_prepared_sweeps`
drives any number of prepared sweeps together — schedule-compatible
sweeps are packed by the :class:`~repro.ising.kernels.blockbatch
.BlockBatch` planner into batched kernel windows that break exactly at
each ``sample_every`` boundary, so every sweep sees the same
step/sample/intervention sequence it would have seen alone.  Float64
sweeps are replayed solo inside the batch (bit-identical by
construction); float32 sweeps are stacked under the tolerance contract.
:class:`BatchedCoreCOPSolver.solve_candidates` is exactly
``prepare → run → finalize`` for a single sweep, and the framework and
the service batch scheduler feed multiple prepared sweeps to one
:func:`run_prepared_sweeps` call.

The batched path integrates for a fixed number of iterations (a global
dynamic stop across a batch would couple unrelated instances), applies
the Theorem-3 intervention vectorized across the whole stack, and uses
the same symmetry-breaking initialization as the sequential solver.
Each sweep drives its own :class:`~repro.obs.probe.SolverProbe` (when a
factory is installed): probes observe sampling points, interventions,
and per-window kernel time, and never change the numerics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.boolean.decomposition import ColumnSetting
from repro.boolean.partition import InputPartition
from repro.boolean.truth_table import TruthTable
from repro.core.config import CoreSolverConfig
from repro.core.ising_formulation import WeightCache, linear_error_terms
from repro.errors import DimensionError
from repro.ising.kernels import BlockBatch, BlockMember, make_kernel
from repro.ising.schedules import LinearPump
from repro.obs.probe import make_probe
from repro.obs.tracing import get_tracer

__all__ = [
    "BatchedCoreCOPSolver",
    "BatchedSolution",
    "PreparedSweep",
    "prepare_sweep",
    "run_prepared_sweeps",
]


@dataclass
class BatchedSolution:
    """Best decoded setting for one candidate partition of the batch."""

    partition: InputPartition
    setting: ColumnSetting
    objective: float
    runtime_seconds: float = 0.0


class _StackedBipartiteDynamics:
    """Vectorized energies/fields for a stack of bipartite core COPs.

    Weight stack ``W`` has shape ``(P, r, c)``; states have shape
    ``(P, R, N)`` with ``N = 2r + c``.  The arithmetic is owned by a
    backend kernel; energies are always evaluated by the float64
    reference kernel so objective bookkeeping is dtype-independent.
    """

    def __init__(
        self,
        weights: np.ndarray,
        offsets: np.ndarray,
        backend: Optional[str] = None,
    ) -> None:
        w = np.asarray(weights, dtype=float)
        if w.ndim != 3:
            raise DimensionError(
                f"weight stack must be 3-D (P, r, c), got ndim={w.ndim}"
            )
        self.weights = w
        self.kernel = make_kernel(w, backend=backend)
        self._scorer = (
            self.kernel
            if self.kernel.dtype == np.float64
            else make_kernel(w, backend="numpy64")
        )
        self.k = w / 4.0
        self.a = self.k.sum(axis=2)  # (P, r)
        self.offsets = np.asarray(offsets, dtype=float)
        self.n_problems, self.n_rows, self.n_cols = w.shape
        self.n_spins = 2 * self.n_rows + self.n_cols

    def split(self, x: np.ndarray):
        r = self.n_rows
        return x[..., :r], x[..., r : 2 * r], x[..., 2 * r :]

    def energy(self, spins: np.ndarray) -> np.ndarray:
        """Energies of a ``(P, R, N)`` spin stack, shape ``(P, R)``."""
        return self._scorer.energy(np.asarray(spins, dtype=float))

    def fields(self, x: np.ndarray) -> np.ndarray:
        """Local fields of a ``(P, R, N)`` position stack."""
        return self._scorer.fields(np.asarray(x, dtype=float))

    def coupling_rms(self) -> float:
        # closed form over the stacked bipartite blocks — never builds
        # the dense J of any instance
        return self.kernel.coupling_rms()

    def optimal_types(self, v1_bits: np.ndarray,
                      v2_bits: np.ndarray) -> np.ndarray:
        """Vectorized Theorem 3 across the whole stack.

        ``v1_bits``/``v2_bits`` have shape ``(P, R, r)``; returns
        ``(P, R, c)`` 0/1 types.
        """
        weights = 4.0 * self.k
        cost1 = np.einsum("pRr,prc->pRc", v1_bits.astype(float), weights)
        cost2 = np.einsum("pRr,prc->pRc", v2_bits.astype(float), weights)
        return (cost2 < cost1).astype(np.uint8)


class PreparedSweep:
    """One candidate sweep, initialized but not yet advanced.

    Construction (via :func:`prepare_sweep`) consumes the sweep's RNG
    exactly as the monolithic solve did — weight build, ``c0`` choice,
    uniform ``x`` then ``y`` draws, symmetry-breaking overwrite, kernel
    ``prepare_state`` — so preparing a sweep early (to fuse it with
    others) is invisible to the search semantics.  After
    :func:`run_prepared_sweeps` returns, :meth:`finalize` decodes the
    per-partition best settings.
    """

    def __init__(
        self,
        config: CoreSolverConfig,
        component: int,
        partitions: Sequence[InputPartition],
        dynamics: _StackedBipartiteDynamics,
        x,
        y,
        c0: float,
    ) -> None:
        self.config = config
        self.component = component
        self.partitions = list(partitions)
        self.dynamics = dynamics
        self.kernel = dynamics.kernel
        self.x = x
        self.y = y
        self.c0 = float(c0)
        self.start_time = time.perf_counter()
        self.n_problems = dynamics.n_problems
        self.n_rows = dynamics.n_rows
        self.best_energy = np.full(self.n_problems, np.inf)
        host_x = self.kernel.state_to_host(x)
        self.best_spins = np.where(
            host_x[:, 0, :] >= 0, 1.0, -1.0
        ).astype(float)
        self.probe = make_probe()
        if self.probe is not None:
            self.probe.on_begin(
                n_spins=dynamics.n_spins,
                n_replicas=host_x.shape[-2],
                max_iterations=config.max_iterations,
                backend=self.kernel.name,
                dtype=str(np.dtype(self.kernel.dtype)),
            )

    # -- fusion compatibility ------------------------------------------

    @property
    def schedule_key(self) -> Tuple:
        """Sweeps sharing this key may be advanced in lockstep."""
        cfg = self.config
        return (
            cfg.max_iterations,
            cfg.sample_every,
            cfg.dt,
            cfg.a0,
            cfg.resolved_ramp_iterations,
        )

    def block_member(self) -> BlockMember:
        return BlockMember(
            self.kernel, self.dynamics.weights, self.x, self.y, self.c0
        )

    # -- sampling ------------------------------------------------------

    def _record(self, spins: np.ndarray) -> float:
        """Score a decoded spin stack; returns the stack-best energy."""
        energies = self.dynamics.energy(spins)  # (P, R)
        replica = np.argmin(energies, axis=1)
        current = energies[np.arange(self.n_problems), replica]
        improved = current < self.best_energy
        if improved.any():
            self.best_energy = np.where(
                improved, current, self.best_energy
            )
            picked = spins[np.arange(self.n_problems), replica]
            self.best_spins = np.where(
                improved[:, np.newaxis], picked, self.best_spins
            )
        return float(current.min())

    def sample_point(self, iteration: int) -> None:
        """Sampling + Theorem-3 intervention at one schedule boundary."""
        host_x = self.kernel.state_to_host(self.x)
        spins = np.where(host_x >= 0, 1.0, -1.0)
        current = self._record(spins)
        if self.probe is not None:
            self.probe.on_sample(
                iteration, current, float(self.best_energy.min())
            )
        if self.config.use_intervention:
            r = self.n_rows
            v1_bits = (host_x[..., :r] >= 0).astype(np.uint8)
            v2_bits = (host_x[..., r : 2 * r] >= 0).astype(np.uint8)
            types = self.dynamics.optimal_types(v1_bits, v2_bits)
            self.kernel.assign_types(self.x, self.y, types)
            host_x = self.kernel.state_to_host(self.x)
            spins_after = np.where(host_x >= 0, 1.0, -1.0)
            changed = not np.array_equal(spins_after, spins)
            # skip the stack-wide re-score when the overwrite did not
            # flip any decoded type spin
            if changed:
                self._record(spins_after)
            if self.probe is not None:
                self.probe.on_intervention(iteration, changed)

    def final_sample(self) -> None:
        host_x = self.kernel.state_to_host(self.x)
        self._record(np.where(host_x >= 0, 1.0, -1.0))
        if self.probe is not None:
            self.probe.on_end(
                n_iterations=self.config.max_iterations,
                stop_reason="max_iterations",
                best_energy=float(self.best_energy.min()),
            )

    # -- results -------------------------------------------------------

    def finalize(self) -> List[BatchedSolution]:
        """Decode per-partition best settings (after the run)."""
        elapsed = time.perf_counter() - self.start_time
        tracer = get_tracer()
        r = self.n_rows
        solutions = []
        with tracer.span(
            "decode",
            category="stage",
            component=self.component,
            batched=True,
        ):
            for index, partition in enumerate(self.partitions):
                spins = self.best_spins[index]
                bits = ((spins + 1) // 2).astype(np.uint8)
                setting = ColumnSetting(
                    bits[:r], bits[r : 2 * r], bits[2 * r :]
                )
                objective = float(
                    self.best_energy[index] + self.dynamics.offsets[index]
                )
                solutions.append(
                    BatchedSolution(
                        partition=partition,
                        setting=setting,
                        objective=objective,
                    )
                )
        # annotate the shared wall clock so callers can report it
        for solution in solutions:
            solution.runtime_seconds = elapsed / len(solutions)
        return solutions


def prepare_sweep(
    config: CoreSolverConfig,
    exact_table: TruthTable,
    approx_table: TruthTable,
    component: int,
    partitions: Sequence[InputPartition],
    mode: str,
    rng: Optional[np.random.Generator] = None,
    cache: Optional[WeightCache] = None,
) -> PreparedSweep:
    """Build one sweep's weight stack and initialized kernel state.

    Consumes ``rng`` exactly as the historical monolithic solve did;
    ``cache`` optionally memoizes the per-partition weight terms (see
    :class:`~repro.core.ising_formulation.WeightCache`) and never
    changes the numerics.
    """
    if not partitions:
        raise DimensionError("need at least one candidate partition")
    free_sizes = {len(p.free) for p in partitions}
    if len(free_sizes) != 1:
        raise DimensionError(
            "batched solving needs one common free-set size, got "
            f"{sorted(free_sizes)}"
        )
    rng = np.random.default_rng(rng)
    tracer = get_tracer()

    with tracer.span(
        "weight_build",
        category="stage",
        component=component,
        n_partitions=len(partitions),
    ):
        weight_stack = []
        offsets = []
        for partition in partitions:
            if cache is not None:
                weights, constant = cache.terms(
                    exact_table, approx_table, component, partition, mode
                )
            else:
                weights, constant = linear_error_terms(
                    exact_table, approx_table, component, partition, mode
                )
            weight_stack.append(weights)
            offsets.append(constant + weights.sum() / 2.0)
        dynamics = _StackedBipartiteDynamics(
            np.stack(weight_stack), np.array(offsets),
            backend=config.backend,
        )
    kernel = dynamics.kernel

    p = dynamics.n_problems
    reps = config.n_replicas
    n = dynamics.n_spins
    r = dynamics.n_rows

    rms = dynamics.coupling_rms()
    c0 = 1.0 if rms <= 0 else 0.5 / (rms * np.sqrt(n))

    amplitude = 0.1
    x = rng.uniform(-amplitude, amplitude, (p, reps, n))
    y = rng.uniform(-amplitude, amplitude, (p, reps, n))
    if config.symmetry_breaking_init:
        x[..., r : 2 * r] = -x[..., :r]
    x, y = kernel.prepare_state(x, y)

    return PreparedSweep(config, component, partitions, dynamics, x, y, c0)


def run_prepared_sweeps(
    sweeps: Sequence[PreparedSweep],
    strategy: str = "auto",
) -> None:
    """Advance prepared sweeps to completion, batching where compatible.

    Sweeps are grouped by :attr:`PreparedSweep.schedule_key`; each
    group becomes one :class:`~repro.ising.kernels.blockbatch
    .BlockBatch` advanced in iteration windows that break exactly at
    ``sample_every`` multiples, with every sweep's sampling and
    intervention hooks firing at the same iterations as a solo run.
    Float64 sweeps replay their exact solo operation sequence inside
    the batch (bit-identical end to end); float32 sweeps are packed
    under the tolerance contract.  Groups run sequentially in the order
    of first appearance — determinism does not depend on the grouping.
    """
    tracer = get_tracer()
    groups: Dict[Tuple, List[PreparedSweep]] = {}
    for sweep in sweeps:
        groups.setdefault(sweep.schedule_key, []).append(sweep)

    for key, group in groups.items():
        max_iterations, sample_every, dt, a0, ramp = key
        pump = LinearPump(a0, ramp)
        members = [sweep.block_member() for sweep in group]
        batch = BlockBatch(members, strategy=strategy)
        # packing may have replaced member states with packed views
        for sweep, member in zip(group, members):
            sweep.x, sweep.y = member.x, member.y
        stats = batch.describe()
        lead = group[0]
        with tracer.span(
            "sb_solve",
            category="stage",
            component=(
                lead.component if len(group) == 1 else None
            ),
            n_sweeps=len(group),
            n_problems=stats["n_problems"],
            n_replicas=lead.x.shape[-2],
            n_spins=lead.dynamics.n_spins,
            backend=lead.kernel.name,
            batched=True,
            batch_strategy=stats["strategy"],
            n_blocks=stats["n_blocks"],
        ):
            iteration = 0
            while iteration < max_iterations:
                width = min(
                    sample_every - iteration % sample_every,
                    max_iterations - iteration,
                )
                a_ts = [
                    pump(iteration + 1 + j) for j in range(width)
                ]
                window_start = time.perf_counter()
                batch.advance(a_ts, dt, a0)
                window_seconds = time.perf_counter() - window_start
                iteration += width
                share = window_seconds / len(group)
                for sweep in group:
                    if sweep.probe is not None:
                        sweep.probe.on_step(share)
                if iteration % sample_every == 0:
                    batch.pull()
                    for sweep in group:
                        sweep.sample_point(iteration)
                    batch.push()
            batch.pull()
            for sweep in group:
                sweep.final_sample()


class BatchedCoreCOPSolver:
    """Solve all candidate partitions of one component in one bSB run.

    Parameters
    ----------
    config:
        Same knobs as :class:`~repro.core.solver.CoreCOPSolver`; the
        dynamic stop is replaced by the fixed ``max_iterations`` budget
        (see module docstring).  ``config.backend`` selects the
        stepping kernel.
    """

    def __init__(self, config: Optional[CoreSolverConfig] = None) -> None:
        self.config = config if config is not None else CoreSolverConfig()

    def solve_candidates(
        self,
        exact_table: TruthTable,
        approx_table: TruthTable,
        component: int,
        partitions: Sequence[InputPartition],
        mode: str,
        rng: Optional[np.random.Generator] = None,
        cache: Optional[WeightCache] = None,
    ) -> List[BatchedSolution]:
        """Solve the core COP for every partition; one entry each.

        ``cache`` optionally memoizes the per-partition weight terms
        (see :class:`~repro.core.ising_formulation.WeightCache`); it
        never changes the numerics, only skips rebuilding terms another
        caller (e.g. prescreening) already produced this run.
        """
        sweep = prepare_sweep(
            self.config, exact_table, approx_table, component, partitions,
            mode, rng=rng, cache=cache,
        )
        run_prepared_sweeps([sweep])
        return sweep.finalize()

    def __repr__(self) -> str:
        return f"BatchedCoreCOPSolver(config={self.config!r})"
