"""Ising formulations of the column-based core COP (Section 3.2).

Both decomposition modes reduce to the same algebraic skeleton.  With
``O`` the exact Boolean matrix of the component being optimized,
``p`` the cell probabilities, and ``O_hat`` the approximate cell value
of Eq. (3), the objective is a *linear* function of ``O_hat``:

    cost = sum_ij p_ij * (q_ij * O_hat_ij + c_ij)

* separate mode (Eq. 7): ``q = 1 - 2 O`` and ``c = O``;
* joint mode (Eqs. 13/15): with ``D_kij`` the signed deviation
  contributed by the other components,
  ``q = 2^k + 2 D`` and ``c = -D``        when ``-2^k <= D <= 0``,
  ``q = 2^k sgn(D)`` and ``c = |D|``      otherwise

  (weights are ``2^k`` for 0-based component index ``k``; the paper's
  1-based ``2^(k-1)``).

Substituting the spin expansion of Eq. (8),
``O_hat = 1/2 + (V1 + V2 - T V1 + T V2) / 4`` (spins in {-1,+1}),
yields the bipartite second-order Ising energy of Eqs. (9)/(16) with
weight matrix ``W = p * q`` and the additive offset
``sum_ij p_ij c_ij + sum_ij W_ij / 2``.  The offset is kept on the model
so ``model.objective(spins)`` equals the *true* ER / MED contribution —
the property tests check this against direct metric evaluation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.boolean.boolean_matrix import BooleanMatrix
from repro.boolean.decomposition import ColumnSetting
from repro.boolean.partition import InputPartition
from repro.boolean.truth_table import TruthTable
from repro.errors import ConfigurationError, DimensionError
from repro.ising.solvers.base import binary_to_spins, spins_to_binary
from repro.ising.structured import BipartiteDecompositionModel

__all__ = [
    "separate_mode_weights",
    "joint_mode_weights",
    "linear_error_terms",
    "build_core_cop_model",
    "setting_from_spins",
    "spins_from_setting",
    "WeightCache",
]


def separate_mode_weights(
    matrix: BooleanMatrix,
) -> Tuple[np.ndarray, float]:
    """Weight matrix ``W`` and offset for the separate mode (Eq. 9).

    The resulting model objective equals the component's error rate
    ``sum_ij p_ij |O_hat_ij - O_ij|`` exactly.
    """
    exact = matrix.values.astype(float)
    probs = matrix.probabilities
    weights = probs * (1.0 - 2.0 * exact)
    constant = float((probs * exact).sum())
    offset = constant + float(weights.sum()) / 2.0
    return weights, offset


def joint_mode_weights(
    exact_table: TruthTable,
    approx_table: TruthTable,
    component: int,
    partition: InputPartition,
) -> Tuple[np.ndarray, float]:
    """Weight matrix ``W`` and offset for the joint mode (Eq. 16).

    Parameters
    ----------
    exact_table:
        The exact multi-output function ``G``.
    approx_table:
        The current approximation ``G_hat``.  Components not yet
        optimized should simply still hold their exact values (this is
        the paper's first-round convention).
    component:
        0-based index ``k`` of the component being (re-)optimized.
    partition:
        The candidate input partition for component ``k``.

    Returns
    -------
    weights, offset:
        Such that ``BipartiteDecompositionModel(weights, offset)
        .objective(spins)`` equals the whole-word MED of
        ``approx_table`` with component ``k`` replaced by the setting
        the spins encode.
    """
    if exact_table.n_inputs != approx_table.n_inputs or (
        exact_table.n_outputs != approx_table.n_outputs
    ):
        raise DimensionError("exact and approximate tables differ in shape")
    m = exact_table.n_outputs
    if not 0 <= component < m:
        raise DimensionError(
            f"component {component} out of range [0, {m})"
        )
    k_weight = float(1 << component)

    out_weights = (1 << np.arange(m, dtype=np.int64)).astype(np.int64)
    approx_words = approx_table.outputs.astype(np.int64) @ out_weights
    approx_without_k = approx_words - (
        approx_table.outputs[:, component].astype(np.int64) << component
    )
    exact_words = exact_table.words
    deviation_flat = (approx_without_k - exact_words).astype(float)

    cells = partition.index_of_cell
    deviation = deviation_flat[cells]  # (r, c)
    probs = np.empty(cells.shape)
    probs[:] = exact_table.probabilities[cells]

    inner = (deviation >= -k_weight) & (deviation <= 0.0)
    q = np.where(
        inner,
        k_weight + 2.0 * deviation,
        k_weight * np.sign(deviation),
    )
    cell_constant = np.where(inner, -deviation, np.abs(deviation))

    weights = probs * q
    offset = float((probs * cell_constant).sum()) + float(weights.sum()) / 2.0
    return weights, offset


def _mode_terms(
    exact_table: TruthTable,
    approx_table: TruthTable,
    component: int,
    partition: InputPartition,
    mode: str,
) -> Tuple[np.ndarray, float]:
    """Shared dispatch: weight matrix ``W`` and *spin* offset per mode."""
    if mode == "separate":
        matrix = BooleanMatrix.from_function(exact_table, component, partition)
        return separate_mode_weights(matrix)
    if mode == "joint":
        return joint_mode_weights(
            exact_table, approx_table, component, partition
        )
    raise ConfigurationError(
        f"mode must be 'separate' or 'joint', got {mode!r}"
    )


def build_core_cop_model(
    exact_table: TruthTable,
    approx_table: TruthTable,
    component: int,
    partition: InputPartition,
    mode: str,
) -> BipartiteDecompositionModel:
    """Build the Ising model of one core COP instance.

    ``mode`` is ``"separate"`` (Eq. 9, objective = component ER) or
    ``"joint"`` (Eq. 16, objective = whole-word MED with the other
    components frozen at ``approx_table``).
    """
    weights, offset = _mode_terms(
        exact_table, approx_table, component, partition, mode
    )
    return BipartiteDecompositionModel(weights, offset)


def linear_error_terms(
    exact_table: TruthTable,
    approx_table: TruthTable,
    component: int,
    partition: InputPartition,
    mode: str,
) -> Tuple[np.ndarray, float]:
    """Cell weights ``W`` and constant of the *linear* error form.

    Every mode's objective is ``constant + sum_ij W_ij * O_hat_ij`` for
    any 0/1 approximate matrix ``O_hat`` — regardless of whether
    ``O_hat`` comes from a column-based or a row-based setting.  The
    row-based baselines (DALTA, DALTA-ILP, BA) therefore share these
    exact terms with the Ising formulation; only the parameterization of
    ``O_hat`` differs.

    Note the constant (and ``W``'s total) is partition-independent: it
    is a sum over all input patterns, merely laid out differently.
    """
    weights, spin_offset = _mode_terms(
        exact_table, approx_table, component, partition, mode
    )
    constant = spin_offset - float(weights.sum()) / 2.0
    return weights, constant


class WeightCache:
    """Per-run memoization of the core-COP weight terms.

    Inside one framework run, :meth:`~repro.core.framework
    .IsingDecomposer.decompose`-driven code rebuilds the Boolean matrix
    and probability terms for the *same* ``(component, partition,
    mode)`` several times — prescreening then solving, and re-visits of
    a partition across rounds.  The cache keys the truth-table-derived
    terms on exactly that triple.

    Validity rules (enforced by the owner, not the cache):

    * ``separate``-mode terms depend only on the immutable exact table,
      so they stay valid for the whole run;
    * ``joint``-mode terms also depend on the current approximation —
      call :meth:`invalidate_joint` whenever the approximation changes
      (the framework does so after every accepted setting).

    Cached entries are the exact ``(weights, spin_offset)`` pair the
    uncached builders produce, so memoization is bitwise invisible:
    cached and cold paths yield identical models and objectives.  The
    cache is process-local; parallel sweep workers simply run cold.
    """

    def __init__(self) -> None:
        self._store = {}
        self.hits = 0
        self.misses = 0

    def _lookup(
        self,
        exact_table: TruthTable,
        approx_table: TruthTable,
        component: int,
        partition: InputPartition,
        mode: str,
    ) -> Tuple[np.ndarray, float]:
        key = (mode, component, partition)
        cached = self._store.get(key)
        if cached is None:
            self.misses += 1
            cached = _mode_terms(
                exact_table, approx_table, component, partition, mode
            )
            cached[0].setflags(write=False)
            self._store[key] = cached
        else:
            self.hits += 1
        return cached

    def model(
        self,
        exact_table: TruthTable,
        approx_table: TruthTable,
        component: int,
        partition: InputPartition,
        mode: str,
    ) -> BipartiteDecompositionModel:
        """Memoized :func:`build_core_cop_model`."""
        weights, spin_offset = self._lookup(
            exact_table, approx_table, component, partition, mode
        )
        return BipartiteDecompositionModel(weights, spin_offset)

    def terms(
        self,
        exact_table: TruthTable,
        approx_table: TruthTable,
        component: int,
        partition: InputPartition,
        mode: str,
    ) -> Tuple[np.ndarray, float]:
        """Memoized :func:`linear_error_terms`."""
        weights, spin_offset = self._lookup(
            exact_table, approx_table, component, partition, mode
        )
        constant = spin_offset - float(weights.sum()) / 2.0
        return weights, constant

    def invalidate_joint(self) -> None:
        """Drop every joint-mode entry (the approximation changed)."""
        self._store = {
            key: value
            for key, value in self._store.items()
            if key[0] != "joint"
        }

    def __len__(self) -> int:
        return len(self._store)


def setting_from_spins(
    spins: np.ndarray, n_rows: int, n_cols: int
) -> ColumnSetting:
    """Decode a spin vector ``[V1, V2, T]`` into a :class:`ColumnSetting`."""
    arr = np.asarray(spins)
    if arr.shape != (2 * n_rows + n_cols,):
        raise DimensionError(
            f"spins must have shape ({2 * n_rows + n_cols},), "
            f"got {arr.shape}"
        )
    bits = spins_to_binary(arr)
    return ColumnSetting(
        pattern1=bits[:n_rows],
        pattern2=bits[n_rows : 2 * n_rows],
        column_types=bits[2 * n_rows :],
    )


def spins_from_setting(setting: ColumnSetting) -> np.ndarray:
    """Encode a :class:`ColumnSetting` as a spin vector ``[V1, V2, T]``."""
    bits = np.concatenate(
        [setting.pattern1, setting.pattern2, setting.column_types]
    )
    return binary_to_spins(bits)
