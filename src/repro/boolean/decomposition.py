"""Exact disjoint decomposition: Theorems 1 and 2 and their settings.

Shen & McKellar's classic result gives two equivalent characterizations of
when a Boolean function has a disjoint decomposition
``g(X) = F(phi(B), A)`` over a partition ``{A, B}``:

* **Theorem 1 (row-based):** the Boolean matrix has at most four distinct
  row types — all-0s, all-1s, a fixed pattern ``V``, and its complement.
* **Theorem 2 (column-based):** the Boolean matrix has at most two
  distinct column types.

The paper's key observation is that the column-based view yields a COP
that is *quadratic* in binary variables (so a second-order Ising model
suffices), while the row-based view would need a third-order model.

This module implements both exact checks and the corresponding setting
objects: :class:`RowSetting` ``(V, S)`` and :class:`ColumnSetting`
``(V1, V2, T)``.  Both settings can reconstruct the (possibly
approximate) Boolean matrix they describe, which is the bridge between
the optimization layer and the function-synthesis layer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.boolean.boolean_matrix import BooleanMatrix
from repro.errors import DecompositionError

__all__ = [
    "RowType",
    "RowSetting",
    "ColumnSetting",
    "has_row_decomposition",
    "has_column_decomposition",
    "row_setting_from_matrix",
    "column_setting_from_matrix",
    "row_setting_to_column_setting",
    "column_setting_to_row_setting",
]


class RowType(enum.IntEnum):
    """The four admissible row types of Theorem 1.

    Values follow the paper's enumeration (1..4) shifted to 0-based:
    ``ZEROS`` is a row of all 0s, ``ONES`` all 1s, ``PATTERN`` the fixed
    pattern ``V``, and ``COMPLEMENT`` its bitwise complement.
    """

    ZEROS = 0
    ONES = 1
    PATTERN = 2
    COMPLEMENT = 3


def _as_bit_vector(vec: np.ndarray, length: int, name: str) -> np.ndarray:
    arr = np.asarray(vec)
    if arr.shape != (length,):
        raise DecompositionError(
            f"{name} must have shape ({length},), got {arr.shape}"
        )
    if not np.isin(np.unique(arr), (0, 1)).all():
        raise DecompositionError(f"{name} entries must be 0/1")
    out = np.ascontiguousarray(arr, dtype=np.uint8)
    out.setflags(write=False)
    return out


@dataclass(frozen=True)
class RowSetting:
    """A row-based decomposition setting ``(V, S)`` (Theorem 1).

    Attributes
    ----------
    pattern:
        The fixed row pattern ``V``, shape ``(c,)`` with 0/1 entries.
    row_types:
        The row type vector ``S``, shape ``(r,)`` with
        :class:`RowType` values.
    """

    pattern: np.ndarray
    row_types: np.ndarray

    def __post_init__(self) -> None:
        pattern = _as_bit_vector(
            self.pattern, np.asarray(self.pattern).shape[0], "pattern V"
        )
        types = np.asarray(self.row_types, dtype=np.int8)
        if types.ndim != 1:
            raise DecompositionError("row_types S must be 1-D")
        if not np.isin(np.unique(types), (0, 1, 2, 3)).all():
            raise DecompositionError(
                "row_types entries must be RowType values in {0, 1, 2, 3}"
            )
        types = np.ascontiguousarray(types)
        types.setflags(write=False)
        object.__setattr__(self, "pattern", pattern)
        object.__setattr__(self, "row_types", types)

    @property
    def n_rows(self) -> int:
        """Number of rows ``r``."""
        return int(self.row_types.shape[0])

    @property
    def n_cols(self) -> int:
        """Number of columns ``c``."""
        return int(self.pattern.shape[0])

    def reconstruct(self) -> np.ndarray:
        """Build the ``(r, c)`` 0/1 matrix this setting describes."""
        rows = np.empty((self.n_rows, self.n_cols), dtype=np.uint8)
        pattern = self.pattern
        complement = (1 - pattern).astype(np.uint8)
        lookup = np.stack(
            [
                np.zeros(self.n_cols, dtype=np.uint8),
                np.ones(self.n_cols, dtype=np.uint8),
                pattern,
                complement,
            ]
        )
        rows[:] = lookup[self.row_types]
        return rows


@dataclass(frozen=True)
class ColumnSetting:
    """A column-based decomposition setting ``(V1, V2, T)`` (Theorem 2).

    Attributes
    ----------
    pattern1 / pattern2:
        Column patterns ``V_k1`` and ``V_k2``, shape ``(r,)``.
    column_types:
        The column type vector ``T``, shape ``(c,)``; ``T_j = 0`` selects
        ``pattern1`` for column ``j``, ``T_j = 1`` selects ``pattern2``
        (Eq. 3 of the paper).
    """

    pattern1: np.ndarray
    pattern2: np.ndarray
    column_types: np.ndarray

    def __post_init__(self) -> None:
        r = np.asarray(self.pattern1).shape[0]
        c = np.asarray(self.column_types).shape[0]
        object.__setattr__(
            self, "pattern1", _as_bit_vector(self.pattern1, r, "pattern1 V1")
        )
        object.__setattr__(
            self, "pattern2", _as_bit_vector(self.pattern2, r, "pattern2 V2")
        )
        object.__setattr__(
            self,
            "column_types",
            _as_bit_vector(self.column_types, c, "column_types T"),
        )

    @property
    def n_rows(self) -> int:
        """Number of rows ``r``."""
        return int(self.pattern1.shape[0])

    @property
    def n_cols(self) -> int:
        """Number of columns ``c``."""
        return int(self.column_types.shape[0])

    def reconstruct(self) -> np.ndarray:
        """Build the ``(r, c)`` matrix of Eq. (3):
        ``O_hat[i, j] = (1 - T_j) V1_i + T_j V2_i``.
        """
        patterns = np.stack([self.pattern1, self.pattern2])  # (2, r)
        return patterns[self.column_types.astype(np.intp)].T.copy()

    def error(self, matrix: Union[BooleanMatrix, np.ndarray]) -> float:
        """Probability-weighted error vs. an exact matrix (Eq. 4 form).

        With a plain array, cells are weighted uniformly by ``1/(r*c)``.
        """
        approx = self.reconstruct()
        if isinstance(matrix, BooleanMatrix):
            exact, probs = matrix.values, matrix.probabilities
        else:
            exact = np.asarray(matrix)
            probs = np.full(exact.shape, 1.0 / exact.size)
        if exact.shape != approx.shape:
            raise DecompositionError(
                f"matrix shape {exact.shape} does not match setting shape "
                f"{approx.shape}"
            )
        return float((probs * (approx != exact)).sum())


# ----------------------------------------------------------------------
# Exact decomposability checks
# ----------------------------------------------------------------------


def _matrix_values(matrix: Union[BooleanMatrix, np.ndarray]) -> np.ndarray:
    if isinstance(matrix, BooleanMatrix):
        return matrix.values
    return np.asarray(matrix, dtype=np.uint8)


def has_row_decomposition(matrix: Union[BooleanMatrix, np.ndarray]) -> bool:
    """Theorem 1: do the rows fall into at most {0s, 1s, V, ~V}?"""
    return row_setting_from_matrix(matrix) is not None


def has_column_decomposition(matrix: Union[BooleanMatrix, np.ndarray]) -> bool:
    """Theorem 2: are there at most two distinct column types?"""
    values = _matrix_values(matrix)
    return int(np.unique(values, axis=1).shape[1]) <= 2


def row_setting_from_matrix(
    matrix: Union[BooleanMatrix, np.ndarray],
) -> Optional[RowSetting]:
    """Extract an exact :class:`RowSetting`, or ``None`` if Theorem 1 fails.

    When several settings fit (e.g. a constant matrix), a deterministic
    canonical one is returned: ``V`` is the first non-constant row in row
    order, or all-zeros when every row is constant.
    """
    values = _matrix_values(matrix)
    r, c = values.shape
    row_sums = values.sum(axis=1)
    is_zeros = row_sums == 0
    is_ones = row_sums == c

    nonconstant = values[~(is_zeros | is_ones)]
    if nonconstant.shape[0] == 0:
        pattern = np.zeros(c, dtype=np.uint8)
    else:
        distinct = np.unique(nonconstant, axis=0)
        if distinct.shape[0] > 2:
            return None
        if distinct.shape[0] == 2 and not np.array_equal(
            distinct[0], 1 - distinct[1]
        ):
            return None
        # deterministic: first non-constant row in matrix order
        pattern = nonconstant[0]

    types = np.empty(r, dtype=np.int8)
    types[is_zeros] = RowType.ZEROS
    types[is_ones] = RowType.ONES
    matches_pattern = (values == pattern).all(axis=1)
    matches_complement = (values == 1 - pattern).all(axis=1)
    remaining = ~(is_zeros | is_ones)
    types[remaining & matches_pattern] = RowType.PATTERN
    types[remaining & matches_complement] = RowType.COMPLEMENT
    if not (
        is_zeros | is_ones | matches_pattern | matches_complement
    ).all():
        return None
    return RowSetting(pattern, types)


def column_setting_from_matrix(
    matrix: Union[BooleanMatrix, np.ndarray],
) -> Optional[ColumnSetting]:
    """Extract an exact :class:`ColumnSetting`, or ``None`` if Theorem 2 fails.

    Canonical choice: ``V1`` is the first column; ``V2`` is the first
    column differing from it (or a copy of ``V1`` when all columns agree).
    """
    values = _matrix_values(matrix)
    r, c = values.shape
    pattern1 = values[:, 0]
    differs = (values != pattern1[:, np.newaxis]).any(axis=0)
    if not differs.any():
        return ColumnSetting(pattern1, pattern1.copy(), np.zeros(c, dtype=np.uint8))
    first_diff = int(np.argmax(differs))
    pattern2 = values[:, first_diff]
    matches1 = (values == pattern1[:, np.newaxis]).all(axis=0)
    matches2 = (values == pattern2[:, np.newaxis]).all(axis=0)
    if not (matches1 | matches2).all():
        return None
    column_types = matches2.astype(np.uint8)
    return ColumnSetting(pattern1, pattern2, column_types)


# ----------------------------------------------------------------------
# Conversions between the two views
# ----------------------------------------------------------------------


def row_setting_to_column_setting(setting: RowSetting) -> ColumnSetting:
    """Convert a row-based setting to the equivalent column-based one.

    The reconstructed matrices of the input and output are identical;
    this realizes the Theorem 1 <-> Theorem 2 equivalence constructively.
    """
    result = column_setting_from_matrix(setting.reconstruct())
    if result is None:  # pragma: no cover - impossible by Theorem 2
        raise DecompositionError(
            "row setting reconstruction unexpectedly violates Theorem 2"
        )
    return result


def column_setting_to_row_setting(setting: ColumnSetting) -> RowSetting:
    """Convert a column-based setting to the equivalent row-based one."""
    result = row_setting_from_matrix(setting.reconstruct())
    if result is None:  # pragma: no cover - impossible by Theorem 1
        raise DecompositionError(
            "column setting reconstruction unexpectedly violates Theorem 1"
        )
    return result
