"""The Boolean-matrix view of one output component under a partition.

Given a component function ``g_k`` and an input partition ``w = {A, B}``,
the *Boolean matrix* (Shen & McKellar 1970) lays the ``2**n`` truth-table
entries out as an ``r x c`` grid, ``r = 2**|A|`` rows (free-set patterns)
by ``c = 2**|B|`` columns (bound-set patterns).  Both decomposability
conditions — at most four row types (Theorem 1) or at most two column
types (Theorem 2) — are stated on this matrix, and the column-based core
COP of the paper optimizes directly over its columns.

The class also carries the per-cell probability matrix ``p_kij`` used by
the error objectives (Eqs. 4 and 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.boolean.partition import InputPartition
from repro.boolean.truth_table import TruthTable
from repro.errors import DimensionError

__all__ = ["BooleanMatrix", "CellIndexMap"]


@dataclass(frozen=True)
class CellIndexMap:
    """Index bookkeeping between a truth table and a Boolean matrix.

    Attributes
    ----------
    row_of_index / col_of_index:
        ``(2**n,)`` arrays mapping each global input index to its cell.
    index_of_cell:
        ``(r, c)`` array mapping each cell back to the global input index.
    """

    row_of_index: np.ndarray
    col_of_index: np.ndarray
    index_of_cell: np.ndarray


class BooleanMatrix:
    """An ``r x c`` matrix view of one output component under a partition.

    Parameters
    ----------
    values:
        ``(r, c)`` array of 0/1 entries, ``O_kij`` in the paper.
    probabilities:
        ``(r, c)`` array of non-negative cell probabilities ``p_kij``.
        They need not sum to one: the framework passes the slice of the
        global input distribution belonging to this component.
    partition:
        Optional :class:`InputPartition` this matrix was derived from.
        Present whenever the matrix came from :meth:`from_function`.

    Examples
    --------
    >>> import numpy as np
    >>> m = BooleanMatrix(np.array([[1, 0], [0, 1]]))
    >>> m.n_rows, m.n_cols
    (2, 2)
    >>> m.distinct_column_count()
    2
    """

    __slots__ = ("_values", "_probabilities", "_partition")

    def __init__(
        self,
        values: np.ndarray,
        probabilities: Optional[np.ndarray] = None,
        partition: Optional[InputPartition] = None,
    ) -> None:
        vals = np.asarray(values)
        if vals.ndim != 2:
            raise DimensionError(
                f"Boolean matrix must be 2-D, got ndim={vals.ndim}"
            )
        if not np.isin(np.unique(vals), (0, 1)).all():
            raise DimensionError("Boolean matrix entries must be 0/1")
        self._values = np.ascontiguousarray(vals, dtype=np.uint8)
        self._values.setflags(write=False)
        if probabilities is None:
            probs = np.full(vals.shape, 1.0 / vals.size)
        else:
            probs = np.asarray(probabilities, dtype=float)
            if probs.shape != vals.shape:
                raise DimensionError(
                    f"probability matrix shape {probs.shape} must match "
                    f"value matrix shape {vals.shape}"
                )
            if np.any(probs < 0.0):
                raise DimensionError("cell probabilities must be non-negative")
        self._probabilities = np.ascontiguousarray(probs)
        self._probabilities.setflags(write=False)
        self._partition = partition

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_function(
        cls,
        table: TruthTable,
        component: int,
        partition: InputPartition,
    ) -> "BooleanMatrix":
        """Lay output component ``component`` of ``table`` out as a matrix."""
        if partition.n_inputs != table.n_inputs:
            raise DimensionError(
                f"partition covers {partition.n_inputs} inputs but table "
                f"has {table.n_inputs}"
            )
        values = np.empty((partition.n_rows, partition.n_cols), dtype=np.uint8)
        probs = np.empty((partition.n_rows, partition.n_cols))
        rows = partition.row_of_index
        cols = partition.col_of_index
        values[rows, cols] = table.component(component)
        probs[rows, cols] = table.probabilities
        return cls(values, probs, partition)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """Read-only ``(r, c)`` 0/1 entries (``O_kij``)."""
        return self._values

    @property
    def probabilities(self) -> np.ndarray:
        """Read-only ``(r, c)`` cell probabilities (``p_kij``)."""
        return self._probabilities

    @property
    def partition(self) -> Optional[InputPartition]:
        """The partition this matrix was derived from, if any."""
        return self._partition

    @property
    def n_rows(self) -> int:
        """Number of rows ``r``."""
        return int(self._values.shape[0])

    @property
    def n_cols(self) -> int:
        """Number of columns ``c``."""
        return int(self._values.shape[1])

    @property
    def index_map(self) -> Optional[CellIndexMap]:
        """Cell/index bookkeeping, available when a partition is attached."""
        if self._partition is None:
            return None
        return CellIndexMap(
            self._partition.row_of_index,
            self._partition.col_of_index,
            self._partition.index_of_cell,
        )

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    def distinct_rows(self) -> np.ndarray:
        """Unique rows, shape ``(n_distinct, c)``."""
        return np.unique(self._values, axis=0)

    def distinct_columns(self) -> np.ndarray:
        """Unique columns, shape ``(r, n_distinct)``."""
        return np.unique(self._values, axis=1)

    def distinct_row_count(self) -> int:
        """Number of distinct rows."""
        return int(self.distinct_rows().shape[0])

    def distinct_column_count(self) -> int:
        """Number of distinct columns."""
        return int(self.distinct_columns().shape[1])

    def column_weights(self) -> np.ndarray:
        """Per-column total probability, shape ``(c,)``."""
        return self._probabilities.sum(axis=0)

    def row_weights(self) -> np.ndarray:
        """Per-row total probability, shape ``(r,)``."""
        return self._probabilities.sum(axis=1)

    def to_component(self) -> np.ndarray:
        """Flatten back to a truth vector over global input indices.

        Requires an attached partition.  Inverse of :meth:`from_function`.
        """
        if self._partition is None:
            raise DimensionError(
                "to_component() needs a matrix built from a partition"
            )
        flat = np.empty(1 << self._partition.n_inputs, dtype=np.uint8)
        flat[self._partition.index_of_cell] = self._values
        return flat

    def with_values(self, values: np.ndarray) -> "BooleanMatrix":
        """Same probabilities/partition, different 0/1 entries."""
        return BooleanMatrix(values, self._probabilities, self._partition)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BooleanMatrix):
            return NotImplemented
        return (
            np.array_equal(self._values, other._values)
            and np.allclose(self._probabilities, other._probabilities)
            and self._partition == other._partition
        )

    def __hash__(self) -> int:
        return hash(
            (self._values.tobytes(), self._probabilities.tobytes(),
             self._partition)
        )

    def __repr__(self) -> str:
        return (
            f"BooleanMatrix(r={self.n_rows}, c={self.n_cols}, "
            f"partition={self._partition!r})"
        )
