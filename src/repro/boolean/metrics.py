"""Error metrics between exact and approximate multi-output functions.

The paper evaluates approximations with two metrics:

* **Error rate (ER)** — probability that an input pattern produces a
  wrong output word (used by the separate-mode objective per component).
* **Mean error distance (MED)** — Eq. (2),
  ``MED(G, G_hat) = sum_X p_X |Bin(G(X)) - Bin(G_hat(X))|``
  (the joint-mode objective).

We also provide the common companions from the approximate-computing
literature (maximum ED, mean relative ED) used by the analysis layer.
All metrics weight input patterns by the *exact* table's distribution.
"""

from __future__ import annotations

import numpy as np

from repro.boolean.truth_table import TruthTable
from repro.errors import DimensionError

__all__ = [
    "error_rate",
    "error_rate_per_output",
    "mean_error_distance",
    "max_error_distance",
    "mean_relative_error_distance",
    "error_distance_profile",
]


def _check_pair(exact: TruthTable, approx: TruthTable) -> None:
    if exact.n_inputs != approx.n_inputs or exact.n_outputs != approx.n_outputs:
        raise DimensionError(
            f"table shapes differ: exact ({exact.n_inputs} in, "
            f"{exact.n_outputs} out) vs approx ({approx.n_inputs} in, "
            f"{approx.n_outputs} out)"
        )


def error_rate(exact: TruthTable, approx: TruthTable) -> float:
    """Probability that any output bit differs (whole-word error rate)."""
    _check_pair(exact, approx)
    wrong = (exact.outputs != approx.outputs).any(axis=1)
    return float(exact.probabilities[wrong].sum())


def error_rate_per_output(exact: TruthTable, approx: TruthTable) -> np.ndarray:
    """Per-component error rates, shape ``(m,)``.

    Component ``k``'s entry is the separate-mode objective of Eq. (4) for
    that component.
    """
    _check_pair(exact, approx)
    wrong = exact.outputs != approx.outputs  # (2**n, m)
    return exact.probabilities @ wrong


def error_distance_profile(exact: TruthTable, approx: TruthTable) -> np.ndarray:
    """``|Bin(G(X)) - Bin(G_hat(X))|`` per input index, shape ``(2**n,)``."""
    _check_pair(exact, approx)
    return np.abs(exact.words - approx.words)


def mean_error_distance(exact: TruthTable, approx: TruthTable) -> float:
    """Eq. (2): probability-weighted mean absolute output deviation."""
    return float(
        exact.probabilities @ error_distance_profile(exact, approx)
    )


def max_error_distance(exact: TruthTable, approx: TruthTable) -> int:
    """Worst-case error distance over inputs with non-zero probability."""
    profile = error_distance_profile(exact, approx)
    support = exact.probabilities > 0
    if not support.any():
        return 0
    return int(profile[support].max())


def mean_relative_error_distance(
    exact: TruthTable, approx: TruthTable
) -> float:
    """Mean of ``ED / max(Bin(G(X)), 1)`` — scale-free companion to MED."""
    profile = error_distance_profile(exact, approx)
    denom = np.maximum(exact.words, 1)
    return float(exact.probabilities @ (profile / denom))
