"""Input partitions ``w = {A, B}`` splitting inputs into free and bound sets.

A disjoint decomposition ``g(X) = F(phi(B), A)`` is defined relative to a
partition of the input variables into the *free set* ``A`` (which indexes
the rows of the Boolean matrix) and the *bound set* ``B`` (which indexes
the columns).  :class:`InputPartition` is an immutable value object that
captures the split and provides the vectorized index arithmetic mapping
global input indices to (row, column) cells and back.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.errors import PartitionError

__all__ = ["InputPartition"]


class InputPartition:
    """An ordered partition of ``n`` input variables into free/bound sets.

    Parameters
    ----------
    free:
        0-based variable positions forming the free set ``A``.  The first
        listed variable is the most significant bit of the row index.
    bound:
        0-based variable positions forming the bound set ``B``.  The first
        listed variable is the most significant bit of the column index.
    n_inputs:
        Total number of input variables ``n``.  ``free`` and ``bound``
        must partition ``range(n_inputs)`` exactly.

    Examples
    --------
    >>> w = InputPartition(free=(0, 1), bound=(2, 3), n_inputs=4)
    >>> w.n_rows, w.n_cols
    (4, 4)
    >>> int(w.row_of_index[0b1010]), int(w.col_of_index[0b1010])
    (2, 2)
    """

    __slots__ = (
        "_free",
        "_bound",
        "_n_inputs",
        "_row_of_index",
        "_col_of_index",
        "_index_of_cell",
    )

    def __init__(
        self, free: Sequence[int], bound: Sequence[int], n_inputs: int
    ) -> None:
        free_t = tuple(int(v) for v in free)
        bound_t = tuple(int(v) for v in bound)
        if n_inputs <= 0:
            raise PartitionError(f"n_inputs must be positive, got {n_inputs}")
        if not free_t or not bound_t:
            raise PartitionError("both free and bound sets must be non-empty")
        union = sorted(free_t + bound_t)
        if union != list(range(n_inputs)):
            raise PartitionError(
                f"free={free_t} and bound={bound_t} must partition "
                f"range({n_inputs}) with no overlap or gap"
            )
        self._free = free_t
        self._bound = bound_t
        self._n_inputs = n_inputs
        self._row_of_index, self._col_of_index, self._index_of_cell = (
            self._build_maps()
        )

    def _build_maps(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        n = self._n_inputs
        size = 1 << n
        indices = np.arange(size, dtype=np.int64)
        # bit of variable v (0-based, x_1 = MSB) in each global index
        shifts = np.array([n - 1 - v for v in range(n)], dtype=np.int64)
        bits = (indices[:, np.newaxis] >> shifts) & 1  # (size, n)

        free_weights = 1 << np.arange(
            len(self._free) - 1, -1, -1, dtype=np.int64
        )
        bound_weights = 1 << np.arange(
            len(self._bound) - 1, -1, -1, dtype=np.int64
        )
        row_of_index = bits[:, list(self._free)] @ free_weights
        col_of_index = bits[:, list(self._bound)] @ bound_weights

        index_of_cell = np.empty((self.n_rows, self.n_cols), dtype=np.int64)
        index_of_cell[row_of_index, col_of_index] = indices
        row_of_index.setflags(write=False)
        col_of_index.setflags(write=False)
        index_of_cell.setflags(write=False)
        return row_of_index, col_of_index, index_of_cell

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    @property
    def free(self) -> Tuple[int, ...]:
        """Free-set variable positions ``A`` (row-defining)."""
        return self._free

    @property
    def bound(self) -> Tuple[int, ...]:
        """Bound-set variable positions ``B`` (column-defining)."""
        return self._bound

    @property
    def n_inputs(self) -> int:
        """Total number of input variables ``n``."""
        return self._n_inputs

    @property
    def n_rows(self) -> int:
        """Number of Boolean-matrix rows, ``r = 2**|A|``."""
        return 1 << len(self._free)

    @property
    def n_cols(self) -> int:
        """Number of Boolean-matrix columns, ``c = 2**|B|``."""
        return 1 << len(self._bound)

    @property
    def row_of_index(self) -> np.ndarray:
        """``(2**n,)`` map from global input index to row index."""
        return self._row_of_index

    @property
    def col_of_index(self) -> np.ndarray:
        """``(2**n,)`` map from global input index to column index."""
        return self._col_of_index

    @property
    def index_of_cell(self) -> np.ndarray:
        """``(r, c)`` map from matrix cell back to the global input index."""
        return self._index_of_cell

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def swapped(self) -> "InputPartition":
        """Return the partition with free and bound sets exchanged."""
        return InputPartition(self._bound, self._free, self._n_inputs)

    def canonical(self) -> "InputPartition":
        """Return the same split with both sets sorted ascending.

        Two partitions with the same *sets* but different variable orders
        describe the same decomposition up to a permutation of rows and
        columns; the canonical form is useful for deduplication.
        """
        return InputPartition(
            sorted(self._free), sorted(self._bound), self._n_inputs
        )

    def cell_of_index(self, index: int) -> Tuple[int, int]:
        """(row, column) of one global input index."""
        return (
            int(self._row_of_index[index]),
            int(self._col_of_index[index]),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InputPartition):
            return NotImplemented
        return (
            self._free == other._free
            and self._bound == other._bound
            and self._n_inputs == other._n_inputs
        )

    def __hash__(self) -> int:
        return hash((self._free, self._bound, self._n_inputs))

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        return iter((self._free, self._bound))

    def __repr__(self) -> str:
        return (
            f"InputPartition(free={self._free}, bound={self._bound}, "
            f"n_inputs={self._n_inputs})"
        )
