"""Bit-exact multi-output Boolean functions represented as truth tables.

A :class:`TruthTable` stores the full output matrix of an ``n``-input,
``m``-output Boolean function ``G(X) = (g_1(X), ..., g_m(X))`` together
with the occurrence probability of each input pattern (``p_X`` in Eq. (2)
of the paper).  The table is the exact, enumerable object every other
subsystem (Boolean matrices, decomposition checks, error metrics, LUT
cascades) is defined against.

Conventions
-----------
* Input pattern ``X = (x_1, ..., x_n)`` maps to the integer row index
  ``idx = sum_i x_i * 2**(n - i)`` — i.e. ``x_1`` is the most significant
  bit.  Variables are referred to by 0-based position ``v`` in code, so
  variable ``v`` corresponds to the paper's ``x_{v+1}`` and contributes
  bit ``2**(n - 1 - v)``.
* Output components are 0-based in code: component ``k`` carries weight
  ``2**k`` in the binary encoding ``Bin(W) = sum_k 2**k * g_k`` (the
  paper's 1-based ``2**(k-1)``).  Component ``m - 1`` is therefore the
  most significant output bit.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.errors import DimensionError

__all__ = ["TruthTable", "uniform_distribution"]

ArrayLike = Union[np.ndarray, Sequence[int], Sequence[Sequence[int]]]


def uniform_distribution(n_inputs: int) -> np.ndarray:
    """Return the uniform input distribution over ``2**n_inputs`` patterns."""
    if n_inputs < 0:
        raise DimensionError(f"n_inputs must be non-negative, got {n_inputs}")
    size = 1 << n_inputs
    return np.full(size, 1.0 / size)


def _validate_probabilities(probabilities: np.ndarray, size: int) -> np.ndarray:
    probs = np.asarray(probabilities, dtype=float)
    if probs.shape != (size,):
        raise DimensionError(
            f"input probabilities must have shape ({size},), got {probs.shape}"
        )
    if np.any(probs < 0.0):
        raise DimensionError("input probabilities must be non-negative")
    total = probs.sum()
    if total <= 0.0:
        raise DimensionError("input probabilities must not all be zero")
    if not np.isclose(total, 1.0):
        probs = probs / total
    return probs


class TruthTable:
    """An ``n``-input, ``m``-output Boolean function with input distribution.

    Parameters
    ----------
    outputs:
        Array of shape ``(2**n, m)`` with entries in ``{0, 1}``.  Row
        ``idx`` holds the output word for the input pattern whose integer
        encoding is ``idx`` (``x_1`` = MSB).  Column ``k`` is component
        ``g_{k+1}`` in the paper's notation and has weight ``2**k`` in the
        output's binary encoding.
    probabilities:
        Optional occurrence probability per input pattern, shape
        ``(2**n,)``.  Defaults to the uniform distribution.  Probabilities
        are normalized to sum to one.

    Examples
    --------
    >>> import numpy as np
    >>> tt = TruthTable.from_integer_function(lambda x: (x * x) & 0xF,
    ...                                       n_inputs=3, n_outputs=4)
    >>> tt.n_inputs, tt.n_outputs
    (3, 4)
    >>> int(tt.words[3])  # 3*3 = 9
    9
    """

    __slots__ = ("_outputs", "_probabilities")

    def __init__(
        self, outputs: ArrayLike, probabilities: Optional[ArrayLike] = None
    ) -> None:
        out = np.asarray(outputs)
        if out.ndim == 1:
            out = out[:, np.newaxis]
        if out.ndim != 2:
            raise DimensionError(
                f"outputs must be a 2-D array (rows, components), got ndim={out.ndim}"
            )
        n_rows = out.shape[0]
        if n_rows == 0 or (n_rows & (n_rows - 1)) != 0:
            raise DimensionError(
                f"number of rows must be a power of two, got {n_rows}"
            )
        if out.shape[1] == 0:
            raise DimensionError("a truth table needs at least one output")
        values = np.unique(out)
        if not np.isin(values, (0, 1)).all():
            raise DimensionError("outputs must contain only 0/1 entries")
        self._outputs = np.ascontiguousarray(out, dtype=np.uint8)
        self._outputs.setflags(write=False)
        if probabilities is None:
            probs = uniform_distribution(self.n_inputs)
        else:
            probs = _validate_probabilities(np.asarray(probabilities), n_rows)
        self._probabilities = np.ascontiguousarray(probs)
        self._probabilities.setflags(write=False)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_integer_function(
        cls,
        func: Callable[[int], int],
        n_inputs: int,
        n_outputs: int,
        probabilities: Optional[ArrayLike] = None,
    ) -> "TruthTable":
        """Build a table from an integer map ``idx -> output word``.

        ``func`` receives each input index in ``[0, 2**n_inputs)`` and
        must return an integer in ``[0, 2**n_outputs)``.
        """
        size = 1 << n_inputs
        words = np.fromiter(
            (func(i) for i in range(size)), dtype=np.int64, count=size
        )
        return cls.from_words(words, n_inputs, n_outputs, probabilities)

    @classmethod
    def from_words(
        cls,
        words: ArrayLike,
        n_inputs: int,
        n_outputs: int,
        probabilities: Optional[ArrayLike] = None,
    ) -> "TruthTable":
        """Build a table from an array of output words (one per input index)."""
        word_arr = np.asarray(words, dtype=np.int64)
        size = 1 << n_inputs
        if word_arr.shape != (size,):
            raise DimensionError(
                f"words must have shape ({size},), got {word_arr.shape}"
            )
        if word_arr.min() < 0 or word_arr.max() >= (1 << n_outputs):
            raise DimensionError(
                f"words must fit in {n_outputs} bits; "
                f"range is [{word_arr.min()}, {word_arr.max()}]"
            )
        shifts = np.arange(n_outputs, dtype=np.int64)
        outputs = (word_arr[:, np.newaxis] >> shifts) & 1
        return cls(outputs, probabilities)

    @classmethod
    def from_vector_function(
        cls,
        func: Callable[[np.ndarray], Sequence[int]],
        n_inputs: int,
        probabilities: Optional[ArrayLike] = None,
    ) -> "TruthTable":
        """Build a table from a map ``bit-vector -> output bit-vector``.

        ``func`` receives the input pattern as an array ``(x_1, ..., x_n)``
        and returns the output components ``(g_1, ..., g_m)``.
        """
        size = 1 << n_inputs
        rows = []
        for idx in range(size):
            bits = index_to_bits(idx, n_inputs)
            rows.append(np.asarray(func(bits), dtype=np.uint8))
        return cls(np.vstack(rows), probabilities)

    @classmethod
    def random(
        cls,
        n_inputs: int,
        n_outputs: int,
        rng: Optional[np.random.Generator] = None,
        probabilities: Optional[ArrayLike] = None,
    ) -> "TruthTable":
        """Draw a uniformly random truth table (handy for tests)."""
        rng = np.random.default_rng(rng)
        outputs = rng.integers(0, 2, size=(1 << n_inputs, n_outputs))
        return cls(outputs, probabilities)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def n_inputs(self) -> int:
        """Number of input bits ``n``."""
        return int(self._outputs.shape[0]).bit_length() - 1

    @property
    def n_outputs(self) -> int:
        """Number of output components ``m``."""
        return int(self._outputs.shape[1])

    @property
    def size(self) -> int:
        """Number of input patterns, ``2**n``."""
        return int(self._outputs.shape[0])

    @property
    def outputs(self) -> np.ndarray:
        """Read-only ``(2**n, m)`` 0/1 output matrix."""
        return self._outputs

    @property
    def probabilities(self) -> np.ndarray:
        """Read-only ``(2**n,)`` input-pattern probabilities (sum to 1)."""
        return self._probabilities

    @property
    def words(self) -> np.ndarray:
        """Output words ``Bin(G(X))`` for every input index, shape ``(2**n,)``."""
        weights = (1 << np.arange(self.n_outputs, dtype=np.int64))
        return self._outputs.astype(np.int64) @ weights

    # ------------------------------------------------------------------
    # Access and derivation
    # ------------------------------------------------------------------

    def component(self, k: int) -> np.ndarray:
        """Truth vector of output component ``k`` (0-based), shape ``(2**n,)``."""
        if not 0 <= k < self.n_outputs:
            raise DimensionError(
                f"component index {k} out of range [0, {self.n_outputs})"
            )
        return self._outputs[:, k]

    def evaluate(self, index: Union[int, np.ndarray]) -> np.ndarray:
        """Output bits for one input index or an array of indices."""
        return self._outputs[index]

    def evaluate_word(self, index: Union[int, np.ndarray]) -> np.ndarray:
        """Output word(s) ``Bin(G(X))`` for the given input index/indices."""
        return self.words[index]

    def with_component(self, k: int, values: ArrayLike) -> "TruthTable":
        """Return a copy with component ``k`` replaced by ``values``."""
        vals = np.asarray(values, dtype=np.uint8)
        if vals.shape != (self.size,):
            raise DimensionError(
                f"replacement component must have shape ({self.size},), "
                f"got {vals.shape}"
            )
        outputs = self._outputs.copy()
        outputs[:, k] = vals
        return TruthTable(outputs, self._probabilities)

    def with_probabilities(self, probabilities: ArrayLike) -> "TruthTable":
        """Return a copy with a different input distribution."""
        return TruthTable(self._outputs, probabilities)

    def restrict(self, components: Sequence[int]) -> "TruthTable":
        """Return a table keeping only the given output components (in order)."""
        idx = list(components)
        if not idx:
            raise DimensionError("restrict() needs at least one component")
        return TruthTable(self._outputs[:, idx], self._probabilities)

    def copy(self) -> "TruthTable":
        """Return an independent (still immutable) copy."""
        return TruthTable(self._outputs.copy(), self._probabilities.copy())

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TruthTable):
            return NotImplemented
        return (
            self._outputs.shape == other._outputs.shape
            and np.array_equal(self._outputs, other._outputs)
            and np.allclose(self._probabilities, other._probabilities)
        )

    def __hash__(self) -> int:
        return hash((self._outputs.tobytes(), self._probabilities.tobytes()))

    def __repr__(self) -> str:
        return (
            f"TruthTable(n_inputs={self.n_inputs}, n_outputs={self.n_outputs})"
        )


def index_to_bits(index: int, n_bits: int) -> np.ndarray:
    """Expand an integer input index into its pattern ``(x_1, ..., x_n)``.

    ``x_1`` is the most significant bit, matching the library convention.
    """
    if index < 0 or index >= (1 << n_bits):
        raise DimensionError(f"index {index} out of range for {n_bits} bits")
    shifts = np.arange(n_bits - 1, -1, -1, dtype=np.int64)
    return ((index >> shifts) & 1).astype(np.uint8)


def bits_to_index(bits: Sequence[int]) -> int:
    """Inverse of :func:`index_to_bits`."""
    value = 0
    for bit in bits:
        if bit not in (0, 1):
            raise DimensionError(f"bits must be 0/1, got {bit!r}")
        value = (value << 1) | int(bit)
    return value
