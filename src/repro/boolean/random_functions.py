"""Random Boolean-function generators with controllable structure.

Tests and ablations need three kinds of oracles:

* arbitrary random functions (:func:`random_function`),
* functions *known* to be exactly decomposable over a given partition
  (:func:`random_decomposable_function`) — built by sampling a setting
  and reconstructing, so the generator certifies the ground truth, and
* raw column-decomposable matrices (:func:`random_column_decomposable_matrix`).

The generators also support "noisy" variants: flip a few cells of a
decomposable function so the minimum achievable approximate-decomposition
error is known by construction (upper-bounded by the flipped mass).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.boolean.boolean_matrix import BooleanMatrix
from repro.boolean.decomposition import ColumnSetting
from repro.boolean.partition import InputPartition
from repro.boolean.synthesis import apply_column_setting
from repro.boolean.truth_table import TruthTable
from repro.errors import DimensionError

__all__ = [
    "random_function",
    "random_partition",
    "random_column_setting",
    "random_column_decomposable_matrix",
    "random_decomposable_function",
    "flip_cells",
]


def random_function(
    n_inputs: int,
    n_outputs: int,
    rng: Optional[np.random.Generator] = None,
    random_distribution: bool = False,
) -> TruthTable:
    """A uniformly random truth table, optionally with a random distribution."""
    rng = np.random.default_rng(rng)
    probabilities = None
    if random_distribution:
        probabilities = rng.random(1 << n_inputs)
        probabilities /= probabilities.sum()
    return TruthTable.random(n_inputs, n_outputs, rng, probabilities)


def random_partition(
    n_inputs: int,
    free_size: int,
    rng: Optional[np.random.Generator] = None,
) -> InputPartition:
    """A uniformly random partition with ``|A| = free_size``."""
    if not 0 < free_size < n_inputs:
        raise DimensionError(
            f"free_size must be in (0, {n_inputs}), got {free_size}"
        )
    rng = np.random.default_rng(rng)
    order = rng.permutation(n_inputs)
    free = sorted(int(v) for v in order[:free_size])
    bound = sorted(int(v) for v in order[free_size:])
    return InputPartition(free, bound, n_inputs)


def random_column_setting(
    n_rows: int,
    n_cols: int,
    rng: Optional[np.random.Generator] = None,
) -> ColumnSetting:
    """A random column-based setting ``(V1, V2, T)``."""
    rng = np.random.default_rng(rng)
    pattern1 = rng.integers(0, 2, n_rows, dtype=np.uint8)
    pattern2 = rng.integers(0, 2, n_rows, dtype=np.uint8)
    column_types = rng.integers(0, 2, n_cols, dtype=np.uint8)
    return ColumnSetting(pattern1, pattern2, column_types)


def random_column_decomposable_matrix(
    n_rows: int,
    n_cols: int,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[BooleanMatrix, ColumnSetting]:
    """A matrix satisfying Theorem 2 along with the setting that built it."""
    rng = np.random.default_rng(rng)
    setting = random_column_setting(n_rows, n_cols, rng)
    return BooleanMatrix(setting.reconstruct()), setting


def random_decomposable_function(
    n_inputs: int,
    n_outputs: int,
    free_size: int,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[TruthTable, Tuple[InputPartition, ...]]:
    """A multi-output function where every component is exactly decomposable.

    Each component gets its own random partition and random column setting
    — mirroring the paper's per-component settings.  Returns the table and
    the per-component partitions (ground truth for decomposability tests).
    """
    rng = np.random.default_rng(rng)
    table = TruthTable.random(n_inputs, n_outputs, rng)
    partitions = []
    for k in range(n_outputs):
        partition = random_partition(n_inputs, free_size, rng)
        setting = random_column_setting(
            partition.n_rows, partition.n_cols, rng
        )
        table = apply_column_setting(table, k, partition, setting)
        partitions.append(partition)
    return table, tuple(partitions)


def flip_cells(
    table: TruthTable,
    component: int,
    n_flips: int,
    rng: Optional[np.random.Generator] = None,
) -> TruthTable:
    """Flip ``n_flips`` distinct truth-vector entries of one component.

    Used to manufacture *almost*-decomposable functions whose best
    approximate decomposition error is bounded by the flipped probability
    mass.
    """
    rng = np.random.default_rng(rng)
    if n_flips < 0 or n_flips > table.size:
        raise DimensionError(
            f"n_flips must be in [0, {table.size}], got {n_flips}"
        )
    positions = rng.choice(table.size, size=n_flips, replace=False)
    vector = table.component(component).copy()
    vector[positions] ^= 1
    return table.with_component(component, vector)
