"""Non-disjoint (overlapping) input partitions.

Qian et al. [10] extend DALTA's framework to *non-disjoint*
decomposition: ``g(X) = F(phi(B), A)`` where the free and bound sets
may share variables (``A ∪ B = X``, ``A ∩ B = C`` possibly non-empty).
Sharing variables enlarges the representable function class — ``F`` can
re-read the shared bits directly instead of only through ``phi`` — at
the price of larger LUTs (``|A| + |B| = n + |C|``).

The Boolean-matrix picture changes in one way: a (row, column) cell is
*consistent* only when its free- and bound-patterns agree on the shared
variables.  Consistent cells biject with the ``2^n`` input patterns;
inconsistent cells are unreachable don't-cares, which the error
objectives encode as zero weight.  Everything downstream of the weight
matrix — the bipartite Ising model, Theorem 3, bSB, the setting decode
— is untouched, which is precisely why this extension slots into the
paper's machinery so cleanly.

:class:`OverlappingPartition` mirrors the
:class:`~repro.boolean.partition.InputPartition` interface
(``row_of_index``, ``col_of_index``, ``n_rows``, ``n_cols``,
``n_inputs``), so :class:`~repro.boolean.synthesis.DecomposedComponent`
cascades evaluate unchanged.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import PartitionError

__all__ = ["OverlappingPartition"]


class OverlappingPartition:
    """A possibly-overlapping split of ``n`` inputs into free/bound sets.

    Parameters
    ----------
    free / bound:
        0-based variable positions.  Together they must cover
        ``range(n_inputs)``; they may overlap.  The first listed
        variable of each set is the MSB of the respective index.
    n_inputs:
        Total number of input variables.

    Examples
    --------
    >>> w = OverlappingPartition(free=(0, 1), bound=(1, 2), n_inputs=3)
    >>> w.shared
    (1,)
    >>> int(w.consistent_mask.sum())  # 2^3 reachable cells
    8
    """

    __slots__ = (
        "_free",
        "_bound",
        "_n_inputs",
        "_row_of_index",
        "_col_of_index",
        "_index_of_cell",
        "_consistent_mask",
    )

    def __init__(
        self, free: Sequence[int], bound: Sequence[int], n_inputs: int
    ) -> None:
        free_t = tuple(int(v) for v in free)
        bound_t = tuple(int(v) for v in bound)
        if n_inputs <= 0:
            raise PartitionError(f"n_inputs must be positive, got {n_inputs}")
        if not free_t or not bound_t:
            raise PartitionError("both free and bound sets must be non-empty")
        if len(set(free_t)) != len(free_t) or len(set(bound_t)) != len(
            bound_t
        ):
            raise PartitionError("variables may not repeat within a set")
        union = set(free_t) | set(bound_t)
        if union != set(range(n_inputs)):
            raise PartitionError(
                f"free={free_t} and bound={bound_t} must cover "
                f"range({n_inputs})"
            )
        self._free = free_t
        self._bound = bound_t
        self._n_inputs = n_inputs
        self._build_maps()

    def _build_maps(self) -> None:
        n = self._n_inputs
        size = 1 << n
        indices = np.arange(size, dtype=np.int64)
        shifts = np.array([n - 1 - v for v in range(n)], dtype=np.int64)
        bits = (indices[:, np.newaxis] >> shifts) & 1

        free_weights = 1 << np.arange(
            len(self._free) - 1, -1, -1, dtype=np.int64
        )
        bound_weights = 1 << np.arange(
            len(self._bound) - 1, -1, -1, dtype=np.int64
        )
        row_of_index = bits[:, list(self._free)] @ free_weights
        col_of_index = bits[:, list(self._bound)] @ bound_weights

        index_of_cell = np.full(
            (self.n_rows, self.n_cols), -1, dtype=np.int64
        )
        index_of_cell[row_of_index, col_of_index] = indices
        consistent = index_of_cell >= 0

        row_of_index.setflags(write=False)
        col_of_index.setflags(write=False)
        index_of_cell.setflags(write=False)
        consistent.setflags(write=False)
        self._row_of_index = row_of_index
        self._col_of_index = col_of_index
        self._index_of_cell = index_of_cell
        self._consistent_mask = consistent

    # ------------------------------------------------------------------

    @property
    def free(self) -> Tuple[int, ...]:
        """Free-set variable positions (row-defining)."""
        return self._free

    @property
    def bound(self) -> Tuple[int, ...]:
        """Bound-set variable positions (column-defining)."""
        return self._bound

    @property
    def shared(self) -> Tuple[int, ...]:
        """Variables appearing in both sets, ascending."""
        return tuple(sorted(set(self._free) & set(self._bound)))

    @property
    def n_inputs(self) -> int:
        """Total number of input variables."""
        return self._n_inputs

    @property
    def n_rows(self) -> int:
        """``2^|free|``."""
        return 1 << len(self._free)

    @property
    def n_cols(self) -> int:
        """``2^|bound|``."""
        return 1 << len(self._bound)

    @property
    def row_of_index(self) -> np.ndarray:
        """``(2^n,)`` map from input index to row."""
        return self._row_of_index

    @property
    def col_of_index(self) -> np.ndarray:
        """``(2^n,)`` map from input index to column."""
        return self._col_of_index

    @property
    def index_of_cell(self) -> np.ndarray:
        """``(r, c)`` inverse map; ``-1`` marks inconsistent cells."""
        return self._index_of_cell

    @property
    def consistent_mask(self) -> np.ndarray:
        """``(r, c)`` boolean mask of reachable cells."""
        return self._consistent_mask

    @property
    def is_disjoint(self) -> bool:
        """Whether this is actually a disjoint partition."""
        return not self.shared

    def cell_of_index(self, index: int) -> Tuple[int, int]:
        """(row, column) of one global input index."""
        return (
            int(self._row_of_index[index]),
            int(self._col_of_index[index]),
        )

    def lut_bits(self) -> int:
        """Cascade storage: ``2^|bound|`` for phi plus ``2^(|free|+1)``."""
        return self.n_cols + 2 * self.n_rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OverlappingPartition):
            return NotImplemented
        return (
            self._free == other._free
            and self._bound == other._bound
            and self._n_inputs == other._n_inputs
        )

    def __hash__(self) -> int:
        return hash((self._free, self._bound, self._n_inputs))

    def __repr__(self) -> str:
        return (
            f"OverlappingPartition(free={self._free}, bound={self._bound}, "
            f"n_inputs={self._n_inputs}, shared={self.shared})"
        )
