"""Synthesis: turn decomposition settings into the functions ``phi`` and ``F``.

A column-based setting ``(V1, V2, T)`` over a partition ``{A, B}``
describes the decomposition ``g_hat(X) = F(phi(B), A)`` with

* ``phi`` the single-output function of the bound variables whose truth
  vector *is* the column type vector ``T`` (column ``j`` of the Boolean
  matrix corresponds to bound pattern ``j``), and
* ``F`` the function of ``(phi, A)`` whose truth vector is ``V1`` when
  ``phi = 0`` and ``V2`` when ``phi = 1``.

:class:`DecomposedComponent` packages the pair and evaluates it exactly;
it is the object the LUT layer turns into a two-level LUT cascade.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.boolean.decomposition import ColumnSetting, RowSetting
from repro.boolean.partition import InputPartition
from repro.boolean.truth_table import TruthTable
from repro.errors import DecompositionError

__all__ = [
    "DecomposedComponent",
    "apply_column_setting",
    "apply_row_setting",
    "component_from_column_setting",
]


@dataclass(frozen=True)
class DecomposedComponent:
    """One output component realized as ``F(phi(B), A)``.

    Attributes
    ----------
    partition:
        The input partition ``{A, B}``.
    phi:
        Truth vector of ``phi`` over bound-set patterns, shape ``(c,)``.
    f_table:
        Truth table of ``F`` indexed ``[phi_value, row]``, shape ``(2, r)``.
    """

    partition: InputPartition
    phi: np.ndarray
    f_table: np.ndarray

    def __post_init__(self) -> None:
        phi = np.ascontiguousarray(np.asarray(self.phi), dtype=np.uint8)
        f_table = np.ascontiguousarray(np.asarray(self.f_table), dtype=np.uint8)
        if phi.shape != (self.partition.n_cols,):
            raise DecompositionError(
                f"phi must have shape ({self.partition.n_cols},), "
                f"got {phi.shape}"
            )
        if f_table.shape != (2, self.partition.n_rows):
            raise DecompositionError(
                f"f_table must have shape (2, {self.partition.n_rows}), "
                f"got {f_table.shape}"
            )
        phi.setflags(write=False)
        f_table.setflags(write=False)
        object.__setattr__(self, "phi", phi)
        object.__setattr__(self, "f_table", f_table)

    @property
    def lut_bits(self) -> int:
        """Storage in bits for the two LUTs: ``c`` for phi plus ``2r`` for F."""
        return self.partition.n_cols + 2 * self.partition.n_rows

    @property
    def flat_lut_bits(self) -> int:
        """Storage in bits for the undecomposed LUT, ``2**n = r * c``."""
        return self.partition.n_rows * self.partition.n_cols

    def evaluate(self, index):
        """Evaluate the cascade on one input index or an array of indices."""
        rows = self.partition.row_of_index[index]
        cols = self.partition.col_of_index[index]
        phi_values = self.phi[cols]
        return self.f_table[phi_values.astype(np.intp), rows]

    def to_truth_vector(self) -> np.ndarray:
        """Full truth vector over all ``2**n`` inputs."""
        return self.evaluate(np.arange(1 << self.partition.n_inputs))


def component_from_column_setting(
    partition: InputPartition, setting: ColumnSetting
) -> DecomposedComponent:
    """Build the ``(phi, F)`` pair a column setting describes.

    ``phi``'s truth vector is ``T`` itself; ``F(0, i) = V1_i`` and
    ``F(1, i) = V2_i``.
    """
    if setting.n_rows != partition.n_rows or setting.n_cols != partition.n_cols:
        raise DecompositionError(
            f"setting shape ({setting.n_rows}, {setting.n_cols}) does not "
            f"match partition shape ({partition.n_rows}, {partition.n_cols})"
        )
    f_table = np.stack([setting.pattern1, setting.pattern2])
    return DecomposedComponent(partition, setting.column_types, f_table)


def apply_column_setting(
    table: TruthTable,
    component: int,
    partition: InputPartition,
    setting: ColumnSetting,
) -> TruthTable:
    """Replace output ``component`` of ``table`` by the setting's function.

    Returns a new table whose component ``component`` equals the cascade
    ``F(phi(B), A)`` exactly; the other components are untouched.
    """
    decomposed = component_from_column_setting(partition, setting)
    return table.with_component(component, decomposed.to_truth_vector())


def apply_row_setting(
    table: TruthTable,
    component: int,
    partition: InputPartition,
    setting: RowSetting,
) -> TruthTable:
    """Row-based analogue of :func:`apply_column_setting` (Theorem 1 view)."""
    if setting.n_rows != partition.n_rows or setting.n_cols != partition.n_cols:
        raise DecompositionError(
            f"setting shape ({setting.n_rows}, {setting.n_cols}) does not "
            f"match partition shape ({partition.n_rows}, {partition.n_cols})"
        )
    matrix = setting.reconstruct()
    flat = np.empty(1 << partition.n_inputs, dtype=np.uint8)
    flat[partition.index_of_cell] = matrix
    return table.with_component(component, flat)
