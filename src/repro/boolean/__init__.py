"""Boolean-function substrate: truth tables, partitions, Boolean matrices,
exact disjoint decomposition (Theorems 1 and 2), synthesis, and error
metrics.

This package is the foundation the decomposition solvers build on.  The
central data structure is :class:`~repro.boolean.truth_table.TruthTable`,
a bit-exact multi-output Boolean function with an attached input
distribution.  :class:`~repro.boolean.partition.InputPartition` splits the
inputs into a free set ``A`` and a bound set ``B``;
:class:`~repro.boolean.boolean_matrix.BooleanMatrix` is the (row, column)
view of one output component under a partition, which is where both the
row-based (Theorem 1) and column-based (Theorem 2) decomposability
conditions live.
"""

from repro.boolean.boolean_matrix import BooleanMatrix, CellIndexMap
from repro.boolean.decomposition import (
    ColumnSetting,
    RowSetting,
    column_setting_from_matrix,
    has_column_decomposition,
    has_row_decomposition,
    row_setting_from_matrix,
)
from repro.boolean.metrics import (
    error_rate,
    error_rate_per_output,
    max_error_distance,
    mean_error_distance,
    mean_relative_error_distance,
)
from repro.boolean.overlapping import OverlappingPartition
from repro.boolean.partition import InputPartition
from repro.boolean.random_functions import (
    random_column_decomposable_matrix,
    random_decomposable_function,
    random_function,
)
from repro.boolean.synthesis import (
    DecomposedComponent,
    apply_column_setting,
    apply_row_setting,
    component_from_column_setting,
)
from repro.boolean.truth_table import TruthTable, uniform_distribution

__all__ = [
    "BooleanMatrix",
    "CellIndexMap",
    "ColumnSetting",
    "DecomposedComponent",
    "InputPartition",
    "OverlappingPartition",
    "RowSetting",
    "TruthTable",
    "apply_column_setting",
    "apply_row_setting",
    "column_setting_from_matrix",
    "component_from_column_setting",
    "error_rate",
    "error_rate_per_output",
    "has_column_decomposition",
    "has_row_decomposition",
    "max_error_distance",
    "mean_error_distance",
    "mean_relative_error_distance",
    "random_column_decomposable_matrix",
    "random_decomposable_function",
    "random_function",
    "row_setting_from_matrix",
    "uniform_distribution",
]
