"""Exception hierarchy for :mod:`repro`.

All library-raised exceptions derive from :class:`ReproError`, so callers
can catch a single base class.  More specific subclasses mark which
subsystem rejected the input; they deliberately stay thin — the message
carries the detail.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class DimensionError(ReproError, ValueError):
    """An array, truth table, or vector has an incompatible shape."""


class PartitionError(ReproError, ValueError):
    """An input partition is malformed (overlap, gap, or bad indices)."""


class DecompositionError(ReproError, ValueError):
    """A decomposition setting is inconsistent with its Boolean matrix."""


class SolverError(ReproError, RuntimeError):
    """An optimization solver failed or was configured inconsistently."""


class InfeasibleError(SolverError):
    """An ILP/LP instance has no feasible point."""


class ConfigurationError(ReproError, ValueError):
    """A configuration dataclass holds an invalid combination of values."""


class UnknownBackendError(ConfigurationError):
    """A kernel-backend name is not in the registry at all.

    Raised by :func:`repro.ising.kernels.base.resolve_backend` for names
    that are neither available nor known-but-unavailable — including
    values arriving through the ``REPRO_SB_BACKEND`` environment
    variable, which must fail loudly rather than silently fall back.
    Carries the offending name and the valid choices.
    """

    def __init__(self, requested: str, known: "tuple[str, ...]") -> None:
        super().__init__(
            f"unknown SB backend {requested!r}; valid backends: "
            f"{', '.join(known)}"
        )
        self.requested = requested
        self.known = tuple(known)


class OperationCancelled(ReproError, RuntimeError):
    """A cooperative cancellation hook asked a running operation to stop.

    Raised by long-running entry points (e.g.
    :meth:`repro.core.framework.IsingDecomposer.decompose`) when the
    caller-supplied ``should_cancel`` callback returns true; the service
    layer maps it to a job timeout/cancellation rather than a crash.
    """


class ServiceError(ReproError, RuntimeError):
    """The decomposition service rejected a request or job transition."""


class JobStoreCorruptError(ServiceError):
    """The job store's SQLite file failed its startup integrity check.

    Raised by :class:`repro.service.jobstore.JobStore` when
    ``PRAGMA quick_check`` reports damage (or the file is not a SQLite
    database at all), so corruption surfaces as one typed error at open
    time instead of an arbitrary ``sqlite3`` exception mid-claim.
    """


class ShardUnavailableError(ServiceError):
    """One shard of a sharded job store is degraded (circuit open).

    Raised by :class:`repro.service.shards.ShardedJobStore` when an
    operation is *scoped* to a shard whose circuit breaker is open —
    a submit or dedup lookup whose artifact key hashes onto the
    degraded shard, or a transition on a job homed there.  Operations
    that can be served by the surviving shards (claims, pagination,
    counts, the fleet registry) do not raise; they skip the degraded
    shard instead.  Carries the shard index and the suggested
    ``Retry-After`` delay, which the gateway maps onto a scoped 503
    ``store_unavailable`` response.
    """

    def __init__(
        self,
        message: str,
        shard: int = 0,
        retry_after: "float | None" = None,
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.retry_after = retry_after


class GatewayError(ReproError, RuntimeError):
    """An HTTP gateway request failed (client side or server side).

    Carries the HTTP status code (0 when the failure happened before a
    response existed, e.g. connection refused), the machine-readable
    error ``code`` slug from the canonical gateway envelope
    (``{"error": {"code", "message", "retry_after"?}}``; ``None`` for
    legacy bodies or connection-level failures), and, when the server
    suggested one, the ``Retry-After`` delay in seconds.
    """

    def __init__(
        self,
        message: str,
        status: int = 0,
        retry_after: "float | None" = None,
        code: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after
        self.code = code


class JobNotFound(ServiceError, KeyError):
    """A job id does not exist in the service's job store."""

    def __str__(self) -> str:
        # KeyError.__str__ repr-quotes its argument; keep the plain
        # "no such job: <id>" message readable at the CLI boundary.
        return "no such job: " + "".join(str(arg) for arg in self.args)
