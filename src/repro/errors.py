"""Exception hierarchy for :mod:`repro`.

All library-raised exceptions derive from :class:`ReproError`, so callers
can catch a single base class.  More specific subclasses mark which
subsystem rejected the input; they deliberately stay thin — the message
carries the detail.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class DimensionError(ReproError, ValueError):
    """An array, truth table, or vector has an incompatible shape."""


class PartitionError(ReproError, ValueError):
    """An input partition is malformed (overlap, gap, or bad indices)."""


class DecompositionError(ReproError, ValueError):
    """A decomposition setting is inconsistent with its Boolean matrix."""


class SolverError(ReproError, RuntimeError):
    """An optimization solver failed or was configured inconsistently."""


class InfeasibleError(SolverError):
    """An ILP/LP instance has no feasible point."""


class ConfigurationError(ReproError, ValueError):
    """A configuration dataclass holds an invalid combination of values."""
