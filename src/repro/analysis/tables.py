"""Plain-text and markdown table rendering for experiment results."""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import DimensionError

__all__ = ["format_table", "format_markdown_table"]


def _stringify(rows: Sequence[Sequence]) -> List[List[str]]:
    out = []
    for row in rows:
        formatted = []
        for cell in row:
            if isinstance(cell, float):
                formatted.append(f"{cell:.4g}")
            else:
                formatted.append(str(cell))
        out.append(formatted)
    return out


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an aligned plain-text table."""
    header_list = [str(h) for h in headers]
    str_rows = _stringify(rows)
    for row in str_rows:
        if len(row) != len(header_list):
            raise DimensionError(
                f"row width {len(row)} does not match header width "
                f"{len(header_list)}"
            )
    widths = [
        max(len(header_list[i]), *(len(r[i]) for r in str_rows))
        if str_rows
        else len(header_list[i])
        for i in range(len(header_list))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(header_list, widths))
    rule = "-" * len(line)
    body = [
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in str_rows
    ]
    return "\n".join([line, rule, *body])


def format_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence]
) -> str:
    """Render a GitHub-flavoured markdown table."""
    header_list = [str(h) for h in headers]
    str_rows = _stringify(rows)
    for row in str_rows:
        if len(row) != len(header_list):
            raise DimensionError(
                f"row width {len(row)} does not match header width "
                f"{len(header_list)}"
            )
    lines = ["| " + " | ".join(header_list) + " |"]
    lines.append("|" + "|".join("---" for _ in header_list) + "|")
    for row in str_rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
