"""Experiment harness: reproduce every table and figure of the paper.

* :mod:`repro.analysis.experiments` — runnable experiment definitions:
  Table 1 (separate and joint modes), Figure 4 (large-scale MED/runtime
  ratios), and the two improvement-technique ablations.
* :mod:`repro.analysis.tables` — plain-text/markdown table rendering of
  the results, matching the paper's row layout.
* :mod:`repro.analysis.figures` — ratio series and ASCII bar charts for
  the Figure-4 style comparisons.
* :mod:`repro.analysis.stats` — small statistics helpers (geometric
  means, ratio summaries).
"""

from repro.analysis.experiments import (
    AblationRow,
    BenchmarkRow,
    MethodSpec,
    ba_method,
    dalta_ilp_method,
    dalta_method,
    proposed_method,
    run_fig4,
    run_heuristic_ablation,
    run_stop_ablation,
    run_table1,
)
from repro.analysis.figures import ascii_bar_chart, ratio_series
from repro.analysis.pareto import DesignPoint, pareto_front, sweep_free_sizes
from repro.analysis.stats import geometric_mean, safe_ratio, summarize_ratios
from repro.analysis.tables import format_markdown_table, format_table

__all__ = [
    "AblationRow",
    "BenchmarkRow",
    "DesignPoint",
    "MethodSpec",
    "pareto_front",
    "sweep_free_sizes",
    "ascii_bar_chart",
    "ba_method",
    "dalta_ilp_method",
    "dalta_method",
    "format_markdown_table",
    "format_table",
    "geometric_mean",
    "proposed_method",
    "ratio_series",
    "run_fig4",
    "run_heuristic_ablation",
    "run_stop_ablation",
    "run_table1",
    "safe_ratio",
    "summarize_ratios",
]
