"""Small statistics helpers for the experiment harness."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.errors import DimensionError

__all__ = ["geometric_mean", "safe_ratio", "summarize_ratios"]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (the right mean for ratios)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise DimensionError("geometric mean of an empty sequence")
    if (arr <= 0).any():
        raise DimensionError("geometric mean requires positive values")
    return float(np.exp(np.log(arr).mean()))


def safe_ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator`` with 0/0 -> 1 and x/0 -> inf.

    A 0/0 MED ratio means both methods were exact — a tie, hence 1.
    """
    if denominator == 0.0:
        return 1.0 if numerator == 0.0 else float("inf")
    return numerator / denominator


def summarize_ratios(ratios: Sequence[float]) -> Dict[str, float]:
    """Arithmetic/geometric mean, min, max, and share below 1.0."""
    arr = np.asarray(list(ratios), dtype=float)
    if arr.size == 0:
        raise DimensionError("cannot summarize an empty ratio sequence")
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        raise DimensionError("no finite ratios to summarize")
    positive = finite[finite > 0]
    return {
        "mean": float(finite.mean()),
        "geomean": (
            geometric_mean(positive) if positive.size else float("nan")
        ),
        "min": float(finite.min()),
        "max": float(finite.max()),
        "fraction_below_one": float((finite < 1.0).mean()),
    }
