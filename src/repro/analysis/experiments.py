"""Runnable experiment definitions for every table and figure.

The four public entry points mirror the paper's evaluation section:

* :func:`run_table1` — Table 1: the six continuous functions under the
  small quantization scheme, comparing methods on MED and runtime in
  separate or joint mode.
* :func:`run_fig4` — Figure 4: all ten benchmarks under the large
  scheme, reporting the proposed-method/DALTA ratios of MED and runtime.
* :func:`run_stop_ablation` — Section 3.3.1: dynamic stop vs. fixed
  iteration budgets on a pool of core-COP instances.
* :func:`run_heuristic_ablation` — Section 3.3.2: Theorem-3
  intervention on/off (plus the repository's optional polish step).

Every runner takes explicit scale knobs (input width, partition count,
rounds) so the same code drives both laptop-scale benchmark defaults
and the paper's full settings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.figures import ascii_bar_chart, ratio_series
from repro.analysis.stats import safe_ratio, summarize_ratios
from repro.analysis.tables import format_table
from repro.baselines.ba import BASolver
from repro.baselines.dalta import DaltaHeuristicSolver
from repro.baselines.dalta_ilp import DaltaIlpSolver
from repro.baselines.framework import BaselineDecomposer
from repro.boolean.truth_table import TruthTable
from repro.core.config import CoreSolverConfig, FrameworkConfig
from repro.core.framework import IsingDecomposer
from repro.core.ising_formulation import build_core_cop_model
from repro.core.partitions import sample_partitions
from repro.core.solver import CoreCOPSolver
from repro.errors import ConfigurationError
from repro.workloads.registry import (
    large_scale_suite,
    small_scale_suite,
    workload_names,
)

__all__ = [
    "MethodSpec",
    "BenchmarkRow",
    "Table1Result",
    "Fig4Result",
    "AblationRow",
    "proposed_method",
    "dalta_method",
    "dalta_ilp_method",
    "ba_method",
    "run_table1",
    "run_fig4",
    "run_stop_ablation",
    "run_heuristic_ablation",
]


@dataclass(frozen=True)
class MethodSpec:
    """A named decomposition method runnable under a framework config."""

    name: str
    build: Callable[[FrameworkConfig], object]

    def run(self, table: TruthTable, config: FrameworkConfig):
        """Decompose ``table`` and return the method's result object."""
        return self.build(config).decompose(table)


def proposed_method(
    solver: Optional[CoreSolverConfig] = None, name: str = "proposed"
) -> MethodSpec:
    """The paper's Ising/bSB method (optionally with a solver override)."""

    def build(config: FrameworkConfig) -> IsingDecomposer:
        if solver is not None:
            config = config.with_updates(solver=solver)
        return IsingDecomposer(config)

    return MethodSpec(name, build)


def dalta_method(max_row_candidates: int = 64) -> MethodSpec:
    """The DALTA heuristic baseline [9]."""

    def build(config: FrameworkConfig) -> BaselineDecomposer:
        return BaselineDecomposer(
            DaltaHeuristicSolver(max_row_candidates), config
        )

    return MethodSpec("dalta", build)


def dalta_ilp_method(
    time_limit: float = 5.0, node_limit: int = 20_000
) -> MethodSpec:
    """The DALTA-ILP baseline [9] with a per-COP time budget."""

    def build(config: FrameworkConfig) -> BaselineDecomposer:
        return BaselineDecomposer(
            DaltaIlpSolver(time_limit, node_limit), config
        )

    return MethodSpec("dalta-ilp", build)


def ba_method(n_moves: int = 1000) -> MethodSpec:
    """The BA simulated-annealing baseline [10]."""

    def build(config: FrameworkConfig) -> BaselineDecomposer:
        return BaselineDecomposer(BASolver(n_moves=n_moves), config)

    return MethodSpec("ba", build)


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------


@dataclass
class BenchmarkRow:
    """One (benchmark, method) measurement."""

    benchmark: str
    method: str
    med: float
    runtime_seconds: float
    compression_ratio: float = float("nan")


@dataclass
class Table1Result:
    """All rows of a Table-1 style comparison plus formatting helpers."""

    mode: str
    rows: List[BenchmarkRow] = field(default_factory=list)

    def methods(self) -> List[str]:
        """Method names in first-appearance order."""
        seen = []
        for row in self.rows:
            if row.method not in seen:
                seen.append(row.method)
        return seen

    def benchmarks(self) -> List[str]:
        """Benchmark names in first-appearance order."""
        seen = []
        for row in self.rows:
            if row.benchmark not in seen:
                seen.append(row.benchmark)
        return seen

    def cell(self, benchmark: str, method: str) -> BenchmarkRow:
        """Lookup one measurement."""
        for row in self.rows:
            if row.benchmark == benchmark and row.method == method:
                return row
        raise KeyError((benchmark, method))

    def averages(self) -> Dict[str, Dict[str, float]]:
        """Per-method mean MED and mean runtime (the paper's last row)."""
        out: Dict[str, Dict[str, float]] = {}
        for method in self.methods():
            meds = [r.med for r in self.rows if r.method == method]
            times = [
                r.runtime_seconds for r in self.rows if r.method == method
            ]
            out[method] = {
                "med": float(np.mean(meds)),
                "time": float(np.mean(times)),
            }
        return out

    def to_table(self) -> str:
        """Render in the paper's layout: one row per function."""
        methods = self.methods()
        headers = ["Function"]
        for method in methods:
            headers += [f"{method} MED", f"{method} time(s)"]
        body = []
        for benchmark in self.benchmarks():
            row = [benchmark]
            for method in methods:
                cell = self.cell(benchmark, method)
                row += [cell.med, cell.runtime_seconds]
            body.append(row)
        averages = self.averages()
        avg_row = ["average"]
        for method in methods:
            avg_row += [averages[method]["med"], averages[method]["time"]]
        body.append(avg_row)
        return format_table(headers, body)


def run_table1(
    mode: str = "joint",
    methods: Optional[Sequence[MethodSpec]] = None,
    n_inputs: int = 9,
    n_partitions: int = 10,
    n_rounds: int = 2,
    seed: int = 0,
    functions: Optional[Sequence[str]] = None,
    solver: Optional[CoreSolverConfig] = None,
) -> Table1Result:
    """Reproduce Table 1 at a configurable scale.

    Paper scale is ``n_inputs=9, n_partitions=1000, n_rounds=5`` with
    methods ``dalta, dalta-ilp, ba, proposed`` (joint mode) or
    ``dalta-ilp, proposed`` (separate mode).
    """
    if methods is None:
        if mode == "separate":
            methods = [dalta_ilp_method(), proposed_method(solver)]
        else:
            methods = [
                dalta_method(),
                dalta_ilp_method(),
                ba_method(),
                proposed_method(solver),
            ]
    suite = small_scale_suite(n_inputs)
    if functions is not None:
        unknown = set(functions) - set(suite)
        if unknown:
            raise ConfigurationError(
                f"unknown functions {sorted(unknown)}; "
                f"available: {sorted(suite)}"
            )
        suite = {name: suite[name] for name in functions}

    result = Table1Result(mode=mode)
    for name, workload in suite.items():
        for method in methods:
            config = FrameworkConfig(
                mode=mode,
                free_size=workload.free_size,
                n_partitions=n_partitions,
                n_rounds=n_rounds,
                seed=seed,
            )
            start = time.perf_counter()
            outcome = method.run(workload.table, config)
            elapsed = time.perf_counter() - start
            result.rows.append(
                BenchmarkRow(
                    benchmark=name,
                    method=method.name,
                    med=outcome.med,
                    runtime_seconds=elapsed,
                    compression_ratio=outcome.compression_ratio,
                )
            )
    return result


# ----------------------------------------------------------------------
# Figure 4
# ----------------------------------------------------------------------


@dataclass
class Fig4Result:
    """Figure-4 data: per-benchmark ratios of MED and runtime."""

    baseline_name: str
    rows: List[BenchmarkRow] = field(default_factory=list)

    def med_ratios(self) -> Dict[str, float]:
        """proposed MED / baseline MED per benchmark."""
        return self._ratios("med")

    def runtime_ratios(self) -> Dict[str, float]:
        """proposed runtime / baseline runtime per benchmark."""
        return self._ratios("runtime_seconds")

    def _ratios(self, attribute: str) -> Dict[str, float]:
        proposed = {
            r.benchmark: getattr(r, attribute)
            for r in self.rows
            if r.method == "proposed"
        }
        baseline = {
            r.benchmark: getattr(r, attribute)
            for r in self.rows
            if r.method == self.baseline_name
        }
        return ratio_series(proposed, baseline)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Ratio statistics (the paper reports the means)."""
        return {
            "med_ratio": summarize_ratios(self.med_ratios().values()),
            "runtime_ratio": summarize_ratios(
                self.runtime_ratios().values()
            ),
        }

    def to_chart(self) -> str:
        """Figure-4 style ASCII rendering of both ratio series."""
        med = ascii_bar_chart(
            self.med_ratios(),
            title=f"MED ratio (proposed / {self.baseline_name}); "
            "'|' marks 1.0",
        )
        run = ascii_bar_chart(
            self.runtime_ratios(),
            title=f"runtime ratio (proposed / {self.baseline_name}); "
            "'|' marks 1.0",
        )
        return med + "\n\n" + run


def run_fig4(
    n_inputs: int = 16,
    n_partitions: int = 6,
    n_rounds: int = 1,
    seed: int = 0,
    benchmarks: Optional[Sequence[str]] = None,
    solver: Optional[CoreSolverConfig] = None,
) -> Fig4Result:
    """Reproduce Figure 4 (proposed vs DALTA, joint mode) at scale knobs.

    Paper scale is ``n_inputs=16, n_partitions=1000, n_rounds=5``.
    """
    suite = large_scale_suite(n_inputs)
    if benchmarks is not None:
        unknown = set(benchmarks) - set(suite)
        if unknown:
            raise ConfigurationError(
                f"unknown benchmarks {sorted(unknown)}; "
                f"available: {workload_names()}"
            )
        suite = {name: suite[name] for name in benchmarks}

    if solver is None:
        solver = CoreSolverConfig.paper_large_scale()
    methods = [dalta_method(), proposed_method(solver)]
    result = Fig4Result(baseline_name="dalta")
    for name, workload in suite.items():
        for method in methods:
            config = FrameworkConfig(
                mode="joint",
                free_size=workload.free_size,
                n_partitions=n_partitions,
                n_rounds=n_rounds,
                seed=seed,
            )
            start = time.perf_counter()
            outcome = method.run(workload.table, config)
            elapsed = time.perf_counter() - start
            result.rows.append(
                BenchmarkRow(
                    benchmark=name,
                    method=method.name,
                    med=outcome.med,
                    runtime_seconds=elapsed,
                    compression_ratio=outcome.compression_ratio,
                )
            )
    return result


# ----------------------------------------------------------------------
# Ablations (Sections 3.3.1 and 3.3.2)
# ----------------------------------------------------------------------


@dataclass
class AblationRow:
    """One (instance, variant) core-COP measurement."""

    instance: str
    variant: str
    objective: float
    n_iterations: int
    runtime_seconds: float


def _ablation_instances(
    n_inputs: int,
    n_instances: int,
    seed: int,
    mode: str = "joint",
):
    """A pool of core-COP models drawn from the continuous workloads.

    Joint-mode *most-significant-bit* components are used: their
    ``2^(m-1)``-scale weights make the Ising landscape hardest (this is
    where the improvement techniques of Section 3.3 actually bite), and
    the less significant bits alternate in for coverage.
    """
    rng = np.random.default_rng(seed)
    suite = small_scale_suite(n_inputs)
    names = sorted(suite)
    instances = []
    for i in range(n_instances):
        workload = suite[names[i % len(names)]]
        partition = sample_partitions(
            n_inputs, workload.free_size, 1, rng
        )[0]
        m = workload.table.n_outputs
        component = m - 1 if i % 2 == 0 else m - 2
        model = build_core_cop_model(
            workload.table, workload.table, component, partition, mode
        )
        label = f"{workload.name}[k={component}]"
        instances.append((label, model))
    return instances


def run_stop_ablation(
    n_inputs: int = 9,
    n_instances: int = 6,
    fixed_budgets: Sequence[int] = (100, 500, 2000),
    seed: int = 0,
    solver: Optional[CoreSolverConfig] = None,
) -> List[AblationRow]:
    """Dynamic stop criterion vs. fixed iteration budgets (Sec. 3.3.1)."""
    if solver is None:
        solver = CoreSolverConfig.paper_small_scale()
    instances = _ablation_instances(n_inputs, n_instances, seed)
    rows: List[AblationRow] = []
    for label, model in instances:
        variants = [("dynamic", solver.with_updates(use_dynamic_stop=True))]
        for budget in fixed_budgets:
            variants.append(
                (
                    f"fixed-{budget}",
                    solver.with_updates(
                        use_dynamic_stop=False, max_iterations=budget
                    ),
                )
            )
        for variant_name, config in variants:
            rng = np.random.default_rng(seed)
            solution = CoreCOPSolver(config).solve_model(model, rng)
            rows.append(
                AblationRow(
                    instance=label,
                    variant=variant_name,
                    objective=solution.objective,
                    n_iterations=solution.solve_result.n_iterations,
                    runtime_seconds=solution.runtime_seconds,
                )
            )
    return rows


def run_heuristic_ablation(
    n_inputs: int = 9,
    n_instances: int = 6,
    seed: int = 0,
    solver: Optional[CoreSolverConfig] = None,
) -> List[AblationRow]:
    """Theorem-3 intervention on/off (Sec. 3.3.2) plus optional polish."""
    if solver is None:
        solver = CoreSolverConfig.paper_small_scale()
    instances = _ablation_instances(n_inputs, n_instances, seed)
    variants = [
        ("intervention", solver.with_updates(use_intervention=True)),
        ("no-intervention", solver.with_updates(use_intervention=False)),
        (
            "no-symmetry-init",
            solver.with_updates(symmetry_breaking_init=False),
        ),
        (
            "intervention+polish",
            solver.with_updates(use_intervention=True, polish=True),
        ),
    ]
    rows: List[AblationRow] = []
    for label, model in instances:
        for variant_name, config in variants:
            rng = np.random.default_rng(seed)
            solution = CoreCOPSolver(config).solve_model(model, rng)
            rows.append(
                AblationRow(
                    instance=label,
                    variant=variant_name,
                    objective=solution.objective,
                    n_iterations=solution.solve_result.n_iterations,
                    runtime_seconds=solution.runtime_seconds,
                )
            )
    return rows
