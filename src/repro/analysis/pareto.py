"""Accuracy-versus-storage design-space sweeps.

The partition sizes fix the cascade storage (``2^|B| + 2^(|A|+1)`` bits
per output) *before* any optimization happens; the solver then decides
how much accuracy that storage buys.  Sweeping the free-set size
therefore traces the design's accuracy/storage trade-off — the curve an
accelerator architect actually chooses from.

:func:`sweep_free_sizes` runs the full decomposer at each size and
:func:`pareto_front` filters the non-dominated points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.boolean.truth_table import TruthTable
from repro.core.config import FrameworkConfig
from repro.core.framework import IsingDecomposer
from repro.errors import DimensionError

__all__ = ["DesignPoint", "sweep_free_sizes", "pareto_front"]


@dataclass(frozen=True)
class DesignPoint:
    """One decomposed design in the (storage, accuracy) plane."""

    free_size: int
    med: float
    total_lut_bits: int
    compression_ratio: float
    runtime_seconds: float

    def dominates(self, other: "DesignPoint") -> bool:
        """Strictly better on one axis, no worse on the other."""
        no_worse = (
            self.med <= other.med
            and self.total_lut_bits <= other.total_lut_bits
        )
        better = (
            self.med < other.med
            or self.total_lut_bits < other.total_lut_bits
        )
        return no_worse and better


def sweep_free_sizes(
    table: TruthTable,
    free_sizes: Sequence[int],
    config: Optional[FrameworkConfig] = None,
) -> List[DesignPoint]:
    """Decompose ``table`` at each free-set size; one point per size.

    ``config`` provides all non-size knobs (its own ``free_size`` is
    overridden).  Sizes must lie in ``(0, n_inputs)``.
    """
    if not free_sizes:
        raise DimensionError("need at least one free size to sweep")
    base = config if config is not None else FrameworkConfig()
    points: List[DesignPoint] = []
    for free_size in free_sizes:
        if not 0 < free_size < table.n_inputs:
            raise DimensionError(
                f"free_size {free_size} out of range "
                f"(0, {table.n_inputs})"
            )
        result = IsingDecomposer(
            base.with_updates(free_size=free_size)
        ).decompose(table)
        points.append(
            DesignPoint(
                free_size=free_size,
                med=result.med,
                total_lut_bits=result.total_lut_bits,
                compression_ratio=result.compression_ratio,
                runtime_seconds=result.runtime_seconds,
            )
        )
    return points


def pareto_front(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated subset, sorted by storage ascending."""
    if not points:
        raise DimensionError("no design points given")
    front = [
        p
        for p in points
        if not any(q.dominates(p) for q in points if q is not p)
    ]
    return sorted(front, key=lambda p: (p.total_lut_bits, p.med))
