"""Figure-4-style ratio series and terminal-friendly bar charts."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.stats import safe_ratio
from repro.errors import DimensionError

__all__ = ["ratio_series", "ascii_bar_chart"]


def ratio_series(
    numerators: Dict[str, float], denominators: Dict[str, float]
) -> Dict[str, float]:
    """Per-key ``numerator / denominator`` (keys must match)."""
    if set(numerators) != set(denominators):
        raise DimensionError(
            "numerator and denominator series have different keys: "
            f"{sorted(set(numerators) ^ set(denominators))}"
        )
    return {
        key: safe_ratio(numerators[key], denominators[key])
        for key in numerators
    }


def ascii_bar_chart(
    values: Dict[str, float],
    width: int = 50,
    reference: float = 1.0,
    title: str = "",
) -> str:
    """Horizontal ASCII bars with a reference line (e.g. ratio = 1).

    Bars render proportionally to the maximum value; the reference
    position is marked with ``|`` so "below 1.0" is visible at a glance
    — the reading the paper's Figure 4 is designed for.
    """
    if not values:
        raise DimensionError("nothing to chart")
    if width < 10:
        raise DimensionError(f"width must be >= 10, got {width}")
    finite = [v for v in values.values() if v == v and v != float("inf")]
    top = max(max(finite, default=reference), reference) * 1.05
    label_width = max(len(k) for k in values)
    lines: List[str] = []
    if title:
        lines.append(title)
    ref_pos = int(round(reference / top * width))
    for key, value in values.items():
        bar_len = int(round(min(value, top) / top * width))
        bar = "#" * bar_len + " " * (width - bar_len)
        if 0 <= ref_pos < width:
            marker = "|" if bar_len <= ref_pos else "+"
            bar = bar[:ref_pos] + marker + bar[ref_pos + 1 :]
        lines.append(f"{key.ljust(label_width)}  {bar}  {value:.3f}")
    return "\n".join(lines)
