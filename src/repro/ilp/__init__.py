"""A small 0-1 integer linear programming solver (Gurobi substitute).

The paper solves DALTA's row-based core COP with Gurobi under a
wall-clock budget, returning the incumbent at timeout.  This package
reproduces that contract offline:

* :class:`~repro.ilp.problem.IlpBuilder` /
  :class:`~repro.ilp.problem.IntegerLinearProgram` — a named-variable
  model builder that lowers to matrix form;
* :class:`~repro.ilp.branch_and_bound.BranchAndBoundSolver` — best-first
  branch and bound over LP relaxations (``scipy.optimize.linprog`` with
  the HiGHS backend), with rounding-based primal heuristics, a time
  budget, and anytime incumbents.
"""

from repro.ilp.branch_and_bound import BranchAndBoundSolver, IlpResult
from repro.ilp.problem import IlpBuilder, IntegerLinearProgram

__all__ = [
    "BranchAndBoundSolver",
    "IlpBuilder",
    "IlpResult",
    "IntegerLinearProgram",
]
