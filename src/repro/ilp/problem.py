"""ILP model representation and a named-variable builder.

:class:`IntegerLinearProgram` is the matrix-form instance the
branch-and-bound solver consumes:

    minimize    c @ x
    subject to  A_ub @ x <= b_ub
                A_eq @ x == b_eq
                lower <= x <= upper
                x_i integer for i with integrality[i] = True

:class:`IlpBuilder` is the ergonomic layer: register variables by name,
add constraints as ``{name: coefficient}`` dictionaries, then
:meth:`~IlpBuilder.build`.  The DALTA-ILP baseline uses the builder to
write the row-based core COP almost verbatim from its ILP formulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DimensionError

__all__ = ["IntegerLinearProgram", "IlpBuilder"]


@dataclass(frozen=True)
class IntegerLinearProgram:
    """A mixed 0-1 linear program in matrix form (see module docstring)."""

    objective: np.ndarray
    a_ub: Optional[np.ndarray] = None
    b_ub: Optional[np.ndarray] = None
    a_eq: Optional[np.ndarray] = None
    b_eq: Optional[np.ndarray] = None
    lower: Optional[np.ndarray] = None
    upper: Optional[np.ndarray] = None
    integrality: Optional[np.ndarray] = None
    variable_names: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        c = np.asarray(self.objective, dtype=float)
        if c.ndim != 1:
            raise DimensionError("objective must be a vector")
        n = c.shape[0]
        object.__setattr__(self, "objective", c)

        def check_pair(a, b, label):
            if (a is None) != (b is None):
                raise DimensionError(
                    f"{label}: matrix and rhs must both be given or omitted"
                )
            if a is None:
                return None, None
            a = np.asarray(a, dtype=float)
            b = np.asarray(b, dtype=float)
            if a.ndim != 2 or a.shape[1] != n:
                raise DimensionError(
                    f"{label} matrix must have shape (*, {n}), got {a.shape}"
                )
            if b.shape != (a.shape[0],):
                raise DimensionError(
                    f"{label} rhs must have shape ({a.shape[0]},), got {b.shape}"
                )
            return a, b

        a_ub, b_ub = check_pair(self.a_ub, self.b_ub, "inequality")
        a_eq, b_eq = check_pair(self.a_eq, self.b_eq, "equality")
        object.__setattr__(self, "a_ub", a_ub)
        object.__setattr__(self, "b_ub", b_ub)
        object.__setattr__(self, "a_eq", a_eq)
        object.__setattr__(self, "b_eq", b_eq)

        lower = (
            np.zeros(n)
            if self.lower is None
            else np.asarray(self.lower, dtype=float)
        )
        upper = (
            np.full(n, np.inf)
            if self.upper is None
            else np.asarray(self.upper, dtype=float)
        )
        if lower.shape != (n,) or upper.shape != (n,):
            raise DimensionError(f"bounds must have shape ({n},)")
        if (lower > upper).any():
            raise DimensionError("lower bounds exceed upper bounds")
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)

        integrality = (
            np.zeros(n, dtype=bool)
            if self.integrality is None
            else np.asarray(self.integrality, dtype=bool)
        )
        if integrality.shape != (n,):
            raise DimensionError(f"integrality must have shape ({n},)")
        object.__setattr__(self, "integrality", integrality)

        if self.variable_names and len(self.variable_names) != n:
            raise DimensionError(
                f"variable_names must have length {n}, "
                f"got {len(self.variable_names)}"
            )

    @property
    def n_variables(self) -> int:
        """Number of decision variables."""
        return int(self.objective.shape[0])

    def value(self, x: np.ndarray) -> float:
        """Objective value of an assignment."""
        return float(self.objective @ np.asarray(x, dtype=float))

    def is_feasible(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        """Check bounds, constraints, and integrality of an assignment."""
        arr = np.asarray(x, dtype=float)
        if arr.shape != (self.n_variables,):
            return False
        if (arr < self.lower - tol).any() or (arr > self.upper + tol).any():
            return False
        if self.a_ub is not None and (
            self.a_ub @ arr > self.b_ub + tol
        ).any():
            return False
        if self.a_eq is not None and not np.allclose(
            self.a_eq @ arr, self.b_eq, atol=tol
        ):
            return False
        frac = np.abs(arr - np.round(arr))
        return bool((frac[self.integrality] <= tol).all())


@dataclass
class IlpBuilder:
    """Incremental, name-based construction of an ILP."""

    _names: List[str] = field(default_factory=list)
    _index: Dict[str, int] = field(default_factory=dict)
    _objective: Dict[str, float] = field(default_factory=dict)
    _lower: List[float] = field(default_factory=list)
    _upper: List[float] = field(default_factory=list)
    _integer: List[bool] = field(default_factory=list)
    _ub_rows: List[Tuple[Dict[str, float], float]] = field(default_factory=list)
    _eq_rows: List[Tuple[Dict[str, float], float]] = field(default_factory=list)

    def add_binary(self, name: str) -> str:
        """Register a 0/1 variable and return its name."""
        return self.add_variable(name, lower=0.0, upper=1.0, integer=True)

    def add_variable(
        self,
        name: str,
        lower: float = 0.0,
        upper: float = np.inf,
        integer: bool = False,
    ) -> str:
        """Register a general variable and return its name."""
        if name in self._index:
            raise DimensionError(f"variable {name!r} already declared")
        self._index[name] = len(self._names)
        self._names.append(name)
        self._lower.append(float(lower))
        self._upper.append(float(upper))
        self._integer.append(bool(integer))
        return name

    def set_objective_term(self, name: str, coefficient: float) -> None:
        """Add ``coefficient * name`` to the (minimized) objective."""
        if name not in self._index:
            raise DimensionError(f"unknown variable {name!r}")
        self._objective[name] = self._objective.get(name, 0.0) + float(
            coefficient
        )

    def add_less_equal(
        self, coefficients: Mapping[str, float], rhs: float
    ) -> None:
        """Add ``sum coeff * var <= rhs``."""
        self._check_names(coefficients)
        self._ub_rows.append((dict(coefficients), float(rhs)))

    def add_greater_equal(
        self, coefficients: Mapping[str, float], rhs: float
    ) -> None:
        """Add ``sum coeff * var >= rhs`` (stored as a flipped <=)."""
        flipped = {name: -value for name, value in coefficients.items()}
        self.add_less_equal(flipped, -float(rhs))

    def add_equal(self, coefficients: Mapping[str, float], rhs: float) -> None:
        """Add ``sum coeff * var == rhs``."""
        self._check_names(coefficients)
        self._eq_rows.append((dict(coefficients), float(rhs)))

    def _check_names(self, coefficients: Mapping[str, float]) -> None:
        for name in coefficients:
            if name not in self._index:
                raise DimensionError(f"unknown variable {name!r}")

    @property
    def n_variables(self) -> int:
        """Number of variables declared so far."""
        return len(self._names)

    def index_of(self, name: str) -> int:
        """Column index of a variable."""
        return self._index[name]

    def build(self) -> IntegerLinearProgram:
        """Lower to matrix form."""
        n = len(self._names)
        if n == 0:
            raise DimensionError("no variables declared")
        c = np.zeros(n)
        for name, coefficient in self._objective.items():
            c[self._index[name]] = coefficient

        def rows_to_matrix(rows):
            if not rows:
                return None, None
            matrix = np.zeros((len(rows), n))
            rhs = np.zeros(len(rows))
            for row, (coefficients, value) in enumerate(rows):
                for name, coefficient in coefficients.items():
                    matrix[row, self._index[name]] = coefficient
                rhs[row] = value
            return matrix, rhs

        a_ub, b_ub = rows_to_matrix(self._ub_rows)
        a_eq, b_eq = rows_to_matrix(self._eq_rows)
        return IntegerLinearProgram(
            objective=c,
            a_ub=a_ub,
            b_ub=b_ub,
            a_eq=a_eq,
            b_eq=b_eq,
            lower=np.array(self._lower),
            upper=np.array(self._upper),
            integrality=np.array(self._integer),
            variable_names=tuple(self._names),
        )
