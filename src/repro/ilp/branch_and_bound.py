"""Best-first branch and bound for 0-1 (and general integer) LPs.

The solver mirrors how the paper uses Gurobi: run until optimality or a
wall-clock budget, and return the best incumbent either way.  Design:

* **Relaxations** are solved with ``scipy.optimize.linprog`` (HiGHS).
* **Node selection** is best-first on the relaxation bound, which makes
  the reported optimality *gap* meaningful at timeout.
* **Branching** picks the most fractional integer variable.
* **Primal heuristic**: every relaxation solution is rounded and checked
  for feasibility, which produces early incumbents on the loosely
  coupled decomposition ILPs.

The result records the proof status: ``optimal`` (bound met incumbent),
``time_limit`` / ``node_limit`` (anytime answer), or ``infeasible``.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.errors import InfeasibleError, SolverError
from repro.ilp.problem import IntegerLinearProgram

__all__ = ["BranchAndBoundSolver", "IlpResult"]


@dataclass
class IlpResult:
    """Outcome of a branch-and-bound run.

    Attributes
    ----------
    x:
        Best integer-feasible assignment found (``None`` if none).
    objective:
        Its objective value (``inf`` if none found).
    status:
        ``"optimal"``, ``"time_limit"``, ``"node_limit"``, or
        ``"infeasible"``.
    lower_bound:
        Best proven bound on the optimum.
    n_nodes:
        Branch-and-bound nodes processed.
    runtime_seconds:
        Wall-clock time spent.
    """

    x: Optional[np.ndarray]
    objective: float
    status: str
    lower_bound: float
    n_nodes: int
    runtime_seconds: float

    @property
    def gap(self) -> float:
        """Relative optimality gap ``(obj - bound) / max(1, |obj|)``."""
        if self.x is None or not np.isfinite(self.objective):
            return np.inf
        return (self.objective - self.lower_bound) / max(
            1.0, abs(self.objective)
        )


@dataclass(order=True)
class _Node:
    bound: float
    tiebreak: int
    lower: np.ndarray = field(compare=False)
    upper: np.ndarray = field(compare=False)


class BranchAndBoundSolver:
    """Best-first 0-1 branch and bound with LP relaxations.

    Parameters
    ----------
    time_limit:
        Wall-clock budget in seconds (the paper gives Gurobi 3600 s).
    node_limit:
        Maximum number of explored nodes.
    integrality_tol:
        Values within this distance of an integer count as integral.
    gap_tol:
        Stop when ``incumbent - bound <= gap_tol`` (absolute).
    """

    def __init__(
        self,
        time_limit: float = 60.0,
        node_limit: int = 200_000,
        integrality_tol: float = 1e-6,
        gap_tol: float = 1e-9,
    ) -> None:
        if time_limit <= 0:
            raise SolverError(f"time_limit must be positive, got {time_limit}")
        if node_limit <= 0:
            raise SolverError(f"node_limit must be positive, got {node_limit}")
        self.time_limit = float(time_limit)
        self.node_limit = int(node_limit)
        self.integrality_tol = float(integrality_tol)
        self.gap_tol = float(gap_tol)

    # ------------------------------------------------------------------

    def _solve_relaxation(
        self,
        problem: IntegerLinearProgram,
        lower: np.ndarray,
        upper: np.ndarray,
    ):
        bounds = list(zip(lower, upper))
        result = linprog(
            problem.objective,
            A_ub=problem.a_ub,
            b_ub=problem.b_ub,
            A_eq=problem.a_eq,
            b_eq=problem.b_eq,
            bounds=bounds,
            method="highs",
        )
        if result.status == 2:  # infeasible
            return None
        if not result.success:
            return None
        return result

    def _try_rounding(
        self, problem: IntegerLinearProgram, x: np.ndarray
    ) -> Optional[np.ndarray]:
        rounded = x.copy()
        mask = problem.integrality
        rounded[mask] = np.round(rounded[mask])
        rounded = np.clip(rounded, problem.lower, problem.upper)
        if problem.is_feasible(rounded, tol=1e-6):
            return rounded
        return None

    def solve(self, problem: IntegerLinearProgram) -> IlpResult:
        """Minimize ``problem``; always returns (never raises on timeout)."""
        start = time.perf_counter()
        counter = itertools.count()
        mask = problem.integrality

        incumbent: Optional[np.ndarray] = None
        incumbent_value = np.inf
        status = "optimal"

        root = self._solve_relaxation(problem, problem.lower, problem.upper)
        if root is None:
            return IlpResult(
                x=None,
                objective=np.inf,
                status="infeasible",
                lower_bound=np.inf,
                n_nodes=1,
                runtime_seconds=time.perf_counter() - start,
            )

        heap: List[_Node] = [
            _Node(root.fun, next(counter), problem.lower.copy(),
                  problem.upper.copy())
        ]
        best_bound = root.fun
        n_nodes = 0

        while heap:
            if time.perf_counter() - start > self.time_limit:
                status = "time_limit"
                break
            if n_nodes >= self.node_limit:
                status = "node_limit"
                break
            node = heapq.heappop(heap)
            best_bound = node.bound
            if node.bound >= incumbent_value - self.gap_tol:
                # best-first: every remaining node is at least as bad
                best_bound = incumbent_value
                break

            relax = self._solve_relaxation(problem, node.lower, node.upper)
            n_nodes += 1
            if relax is None:
                continue
            if relax.fun >= incumbent_value - self.gap_tol:
                continue

            x = np.asarray(relax.x)
            fractional = np.abs(x - np.round(x))
            fractional[~mask] = 0.0
            branch_var = int(np.argmax(fractional))

            if fractional[branch_var] <= self.integrality_tol:
                # integral relaxation: new incumbent
                candidate = x.copy()
                candidate[mask] = np.round(candidate[mask])
                value = problem.value(candidate)
                if value < incumbent_value:
                    incumbent, incumbent_value = candidate, value
                continue

            rounded = self._try_rounding(problem, x)
            if rounded is not None:
                value = problem.value(rounded)
                if value < incumbent_value:
                    incumbent, incumbent_value = rounded, value

            floor_val = np.floor(x[branch_var])
            # down branch
            down_upper = node.upper.copy()
            down_upper[branch_var] = floor_val
            if down_upper[branch_var] >= node.lower[branch_var]:
                heapq.heappush(
                    heap,
                    _Node(relax.fun, next(counter), node.lower.copy(),
                          down_upper),
                )
            # up branch
            up_lower = node.lower.copy()
            up_lower[branch_var] = floor_val + 1.0
            if up_lower[branch_var] <= node.upper[branch_var]:
                heapq.heappush(
                    heap,
                    _Node(relax.fun, next(counter), up_lower,
                          node.upper.copy()),
                )

        if not heap and status == "optimal":
            best_bound = incumbent_value
        if incumbent is None and status == "optimal":
            # search space exhausted without a feasible integer point
            return IlpResult(
                x=None,
                objective=np.inf,
                status="infeasible",
                lower_bound=best_bound,
                n_nodes=n_nodes,
                runtime_seconds=time.perf_counter() - start,
            )

        return IlpResult(
            x=incumbent,
            objective=incumbent_value,
            status=status,
            lower_bound=min(best_bound, incumbent_value),
            n_nodes=n_nodes,
            runtime_seconds=time.perf_counter() - start,
        )

    def solve_or_raise(self, problem: IntegerLinearProgram) -> IlpResult:
        """Like :meth:`solve` but raises on infeasibility."""
        result = self.solve(problem)
        if result.status == "infeasible":
            raise InfeasibleError("ILP instance is infeasible")
        return result

    def __repr__(self) -> str:
        return (
            f"BranchAndBoundSolver(time_limit={self.time_limit}, "
            f"node_limit={self.node_limit})"
        )
