"""Fused multi-backend simulated-bifurcation kernels.

See :mod:`repro.ising.kernels.base` for the backend contract and the
selection rules (``CoreSolverConfig.backend`` / ``REPRO_SB_BACKEND``).
Importing this package registers every backend usable in the current
environment; unavailable optional backends (``numba``) degrade to
``numpy64`` at resolution time.
"""

from repro.ising.kernels.base import (
    DEFAULT_BACKEND,
    ENV_BACKEND,
    BipartiteSBKernel,
    available_backends,
    known_backends,
    make_kernel,
    register_backend,
    resolve_backend,
)
from repro.ising.kernels.numpy_backend import NumPyBipartiteKernel
from repro.ising.kernels import numba_backend  # noqa: F401  (registration)
from repro.ising.kernels.numba_backend import NUMBA_AVAILABLE

__all__ = [
    "DEFAULT_BACKEND",
    "ENV_BACKEND",
    "NUMBA_AVAILABLE",
    "BipartiteSBKernel",
    "NumPyBipartiteKernel",
    "available_backends",
    "known_backends",
    "make_kernel",
    "register_backend",
    "resolve_backend",
]
