"""Fused multi-backend simulated-bifurcation kernels.

See :mod:`repro.ising.kernels.base` for the backend contract and the
selection rules (``CoreSolverConfig.backend`` / ``REPRO_SB_BACKEND``).
Importing this package registers every backend usable in the current
environment; known-but-unavailable optional backends (``numba``,
``torch``, ``cupy``, ``native32`` without a compiler) degrade to
``numpy64`` at resolution time with a single warning, while unknown
names raise :class:`repro.errors.UnknownBackendError`.

Backends registered here:

========== ======= ====== ==============================================
name       dtype   device notes
========== ======= ====== ==============================================
numpy64    float64 cpu    reference; bit-for-bit the historical loop
numpy32    float32 cpu    tolerance contract, float64 scoring
numba      float64 cpu    optional JIT single-pass step
native32   float32 cpu    runtime-compiled C tile engine
torch      float32 cpu/   optional array-API device stepping
                   cuda
cupy       float32 cuda   optional CUDA stepping
========== ======= ====== ==============================================

:mod:`repro.ising.kernels.blockbatch` packs compatible prepared sweeps
into batched kernel calls (the ``BlockBatch`` planner).
"""

from repro.ising.kernels.base import (
    DEFAULT_BACKEND,
    ENV_BACKEND,
    BackendInfo,
    BipartiteSBKernel,
    available_backends,
    backend_info,
    backend_infos,
    known_backends,
    make_kernel,
    register_backend,
    reset_fallback_warnings,
    resolve_backend,
)
from repro.ising.kernels.numpy_backend import NumPyBipartiteKernel
from repro.ising.kernels import numba_backend  # noqa: F401  (registration)
from repro.ising.kernels.numba_backend import NUMBA_AVAILABLE
from repro.ising.kernels import native  # noqa: F401  (registration)
from repro.ising.kernels.native import NATIVE_PROBED_AVAILABLE
from repro.ising.kernels import array_api_backend  # noqa: F401  (registration)
from repro.ising.kernels.array_api_backend import (
    CUPY_AVAILABLE,
    TORCH_AVAILABLE,
)
from repro.ising.kernels.blockbatch import Block, BlockBatch, BlockMember

__all__ = [
    "CUPY_AVAILABLE",
    "DEFAULT_BACKEND",
    "ENV_BACKEND",
    "NATIVE_PROBED_AVAILABLE",
    "NUMBA_AVAILABLE",
    "TORCH_AVAILABLE",
    "BackendInfo",
    "BipartiteSBKernel",
    "Block",
    "BlockBatch",
    "BlockMember",
    "NumPyBipartiteKernel",
    "available_backends",
    "backend_info",
    "backend_infos",
    "known_backends",
    "make_kernel",
    "register_backend",
    "reset_fallback_warnings",
    "resolve_backend",
]
