"""Backend registry for the fused simulated-bifurcation kernels.

The ballistic-SB hot loop is a handful of dense linear-algebra passes
repeated thousands of times; how those passes are scheduled (dtype,
temporaries, fusion) dominates wall clock long before the algorithm
does.  This module decouples the *dynamics* (owned by the solvers) from
the *arithmetic* (owned by a :class:`BipartiteSBKernel` backend):

* ``numpy64`` — float64 reference backend.  Bit-for-bit identical to
  the historical inline NumPy loop (property-tested), so every other
  backend has a trusted baseline to diff against.
* ``numpy32`` — the same fused step in float32: half the memory
  traffic, roughly double the GEMM throughput.  Decoded settings agree
  with ``numpy64`` in practice but trajectories are *not* bitwise
  reproducible across BLAS builds; see ``docs/architecture.md``.
* ``numba`` — optional JIT backend; registered only when :mod:`numba`
  imports.  Requesting it on a machine without numba falls back to
  ``numpy64`` with a warning rather than failing.

Selection order: the ``REPRO_SB_BACKEND`` environment variable (when
set) overrides everything, then the explicit ``backend=`` argument
(usually fed from :attr:`repro.core.config.CoreSolverConfig.backend`),
then the ``numpy64`` default.
"""

from __future__ import annotations

import abc
import os
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set, Tuple

import numpy as np

from repro.errors import (
    ConfigurationError,
    DimensionError,
    UnknownBackendError,
)
from repro.obs.logconfig import get_logger

logger = get_logger("repro.ising.kernels")

__all__ = [
    "BipartiteSBKernel",
    "BackendInfo",
    "ENV_BACKEND",
    "DEFAULT_BACKEND",
    "available_backends",
    "known_backends",
    "backend_info",
    "backend_infos",
    "register_backend",
    "resolve_backend",
    "reset_fallback_warnings",
    "make_kernel",
]

#: environment variable overriding every programmatic backend selection
ENV_BACKEND = "REPRO_SB_BACKEND"

#: the reference backend every installation has
DEFAULT_BACKEND = "numpy64"

# name -> kernel factory (weights -> BipartiteSBKernel)
_REGISTRY: Dict[str, Callable[[np.ndarray], "BipartiteSBKernel"]] = {}
# name -> human-readable reason a known backend is not usable here
_UNAVAILABLE: Dict[str, str] = {}
# name -> descriptive metadata (dtype/device/batching), for list-kernels
_INFO: Dict[str, "BackendInfo"] = {}
# unavailable backends already warned about this process (warn once —
# the batched planner resolves backends per batch, and a missing numba
# must not spam one warning per batch)
_WARNED_FALLBACKS: Set[str] = set()


@dataclass(frozen=True)
class BackendInfo:
    """Descriptive metadata of one registered kernel backend."""

    name: str
    available: bool
    dtype: str
    device: str
    supports_batch: bool
    summary: str
    unavailable_reason: Optional[str] = None


def register_backend(
    name: str,
    factory: Optional[Callable[[np.ndarray], "BipartiteSBKernel"]] = None,
    *,
    unavailable_reason: Optional[str] = None,
    dtype: str = "float64",
    device: str = "cpu",
    supports_batch: bool = True,
    summary: str = "",
) -> None:
    """Register a kernel backend (or record why it cannot be used).

    Exactly one of ``factory`` / ``unavailable_reason`` must be given.
    Backends whose dependencies are missing register a reason instead of
    a factory so :func:`resolve_backend` can degrade gracefully.  The
    keyword metadata feeds ``repro list-kernels``.
    """
    if (factory is None) == (unavailable_reason is None):
        raise ConfigurationError(
            "register_backend needs a factory or an unavailable_reason"
        )
    if factory is not None:
        _REGISTRY[name] = factory
        _UNAVAILABLE.pop(name, None)
    else:
        _UNAVAILABLE[name] = unavailable_reason
    _INFO[name] = BackendInfo(
        name=name,
        available=factory is not None,
        dtype=dtype,
        device=device,
        supports_batch=supports_batch,
        summary=summary,
        unavailable_reason=unavailable_reason,
    )


def available_backends() -> Tuple[str, ...]:
    """Names of the backends usable in this environment."""
    return tuple(sorted(_REGISTRY))


def known_backends() -> Tuple[str, ...]:
    """All recognized backend names, including unavailable ones."""
    return tuple(sorted({*_REGISTRY, *_UNAVAILABLE}))


def backend_info(name: str) -> "BackendInfo":
    """Metadata of one known backend (raises on unknown names)."""
    try:
        return _INFO[name]
    except KeyError:
        raise UnknownBackendError(name, known_backends()) from None


def backend_infos() -> Tuple["BackendInfo", ...]:
    """Metadata of every known backend, name-sorted."""
    return tuple(_INFO[name] for name in known_backends())


def reset_fallback_warnings() -> None:
    """Forget which unavailable-backend fallbacks were already warned
    about (test hook)."""
    _WARNED_FALLBACKS.clear()


def resolve_backend(
    backend: Optional[str] = None, *, ignore_env: bool = False
) -> str:
    """Resolve a backend request to the name of a usable backend.

    ``REPRO_SB_BACKEND`` (when set and non-empty) overrides ``backend``;
    an unavailable-but-known backend (e.g. ``numba`` without numba
    installed) falls back to :data:`DEFAULT_BACKEND` with a warning
    emitted once per process; an unknown name raises
    :class:`~repro.errors.UnknownBackendError` listing the valid names
    (environment-variable typos must fail loudly, not silently fall
    back).

    ``ignore_env`` skips the environment override — the numerical
    guards use it to *force* the float64 reference backend when a
    lower-precision trajectory diverged, which must win even under a
    ``REPRO_SB_BACKEND=numpy32`` blanket override.
    """
    env = "" if ignore_env else os.environ.get(ENV_BACKEND, "").strip()
    requested = (env or backend or DEFAULT_BACKEND).strip().lower()
    if requested in _REGISTRY:
        return requested
    if requested in _UNAVAILABLE:
        if requested not in _WARNED_FALLBACKS:
            _WARNED_FALLBACKS.add(requested)
            logger.warning(
                "SB backend %r is unavailable (%s); falling back to %r",
                requested,
                _UNAVAILABLE[requested],
                DEFAULT_BACKEND,
            )
        return DEFAULT_BACKEND
    raise UnknownBackendError(requested, known_backends())


def make_kernel(
    weights: np.ndarray,
    backend: Optional[str] = None,
    *,
    ignore_env: bool = False,
) -> "BipartiteSBKernel":
    """Build a kernel for a bipartite weight matrix (or stack thereof).

    ``weights`` is the core-COP weight matrix ``W`` with shape
    ``(r, c)`` for a single problem or ``(P, r, c)`` for a stacked
    batch.  ``backend`` goes through :func:`resolve_backend`
    (``ignore_env`` forwarded — see there).
    """
    return _REGISTRY[resolve_backend(backend, ignore_env=ignore_env)](
        weights
    )


class BipartiteSBKernel(abc.ABC):
    """Fused ballistic-SB arithmetic for bipartite core-COP dynamics.

    A kernel owns the coupling data (``K = W / 4`` and its row sums) in
    its backend dtype plus the per-state scratch buffers, and exposes
    the whole per-iteration state update as one call so backends can
    fuse and preallocate freely.  States have shape ``(..., N)`` with
    ``N = 2 r + c``; the leading axes are ``(n_replicas,)`` for a
    single problem or ``(P, n_replicas)`` for a stacked batch, matching
    the ``weights`` rank passed at construction.

    The contract with the solvers:

    * :meth:`prepare_state` converts freshly initialized float64
      positions/momenta into the kernel's dtype/layout (and sizes the
      scratch buffers) — call once per solve;
    * :meth:`step` advances ``(x, y)`` **in place** by one symplectic
      Euler step including the inelastic walls;
    * :meth:`readout` / :meth:`energy` / :meth:`fields` evaluate the
      sign decode, Ising energies, and local fields of a state.

    :meth:`readout` returns an internal buffer that the next call
    overwrites — copy before storing.
    """

    #: registry name, set by concrete backends
    name: str = "abstract"

    def __init__(self, weights: np.ndarray, dtype: np.dtype) -> None:
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim not in (2, 3):
            raise DimensionError(
                "weights must be (r, c) or stacked (P, r, c), got "
                f"ndim={w.ndim}"
            )
        self.dtype = np.dtype(dtype)
        self.stacked = w.ndim == 3
        # K = W / 4 exactly as the structured model computes it (the
        # division by a power of two is lossless, so numpy64 kernels see
        # the same couplings as the historical inline path)
        self.k = np.ascontiguousarray(w / 4.0, dtype=self.dtype)
        self.a = self.k.sum(axis=-1)
        self.neg_a = -self.a
        self.n_rows = int(w.shape[-2])
        self.n_cols = int(w.shape[-1])
        self.n_problems = int(w.shape[0]) if self.stacked else 1
        self.n_spins = 2 * self.n_rows + self.n_cols
        self.offsets: Optional[np.ndarray] = None

    # -- shape helpers -------------------------------------------------

    def split(self, x: np.ndarray):
        """Split a ``(..., N)`` array into ``(v1, v2, t)`` views."""
        r = self.n_rows
        return x[..., :r], x[..., r : 2 * r], x[..., 2 * r :]

    def expected_state_ndim(self) -> int:
        """State rank: 2 for a single problem, 3 for a stacked batch."""
        return 3 if self.stacked else 2

    def coupling_rms(self) -> float:
        """RMS coupling over ordered spin pairs, without densifying.

        For a stacked kernel this is the RMS across the whole stack
        (every problem shares one ``c0`` so the batch stays one fused
        update).
        """
        n = self.n_spins
        if n < 2:
            return 0.0
        k64 = np.asarray(self.k, dtype=np.float64)
        if self.stacked:
            per_problem = 4.0 * (k64**2).sum(axis=(1, 2))
            return float(np.sqrt(per_problem.mean() / (n * (n - 1))))
        total = 4.0 * float((k64**2).sum())
        return float(np.sqrt(total / (n * (n - 1))))

    # -- numerical health ----------------------------------------------

    def check_state(
        self,
        x: np.ndarray,
        y: np.ndarray,
        divergence_limit: float = 1e6,
    ) -> Optional[str]:
        """Cheap health check of a live state; ``None`` means healthy.

        Returns ``"nonfinite"`` when positions or momenta contain
        NaN/inf (float32 overflow, broken couplings, injected faults)
        or ``"diverged"`` when a momentum magnitude exceeds
        ``divergence_limit`` — positions are wall-clamped to ±1, so an
        exploding trajectory shows up in ``y`` long before it reaches
        inf.  The sums below reduce without allocating boolean temps;
        NaN/inf propagate through them, and a sum that overflows to inf
        only does so when the state is diverging anyway, which is
        exactly the verdict returned.
        """
        x_sum = float(np.sum(x, dtype=np.float64))
        y_abs_max = float(np.max(np.abs(y)))
        if not (np.isfinite(x_sum) and np.isfinite(y_abs_max)):
            return "nonfinite"
        if y_abs_max > divergence_limit:
            return "diverged"
        return None

    # -- host boundary -------------------------------------------------
    #
    # Device-resident backends (torch / cupy) keep live states on the
    # accelerator; everything that crosses back into seeded-search
    # bookkeeping (sampling, interventions, checkpoints) goes through
    # these hooks.  The NumPy defaults below are the exact historical
    # operations, so host backends inherit bit-identical behavior.

    def state_to_host(self, x) -> np.ndarray:
        """A host ``ndarray`` view/copy of a live kernel state."""
        return np.asarray(x)

    def sign_readout(self, x) -> np.ndarray:
        """Float ±1 sign decode of a position state, on the host."""
        return np.where(self.state_to_host(x) >= 0, 1.0, -1.0)

    def assign_types(self, x, y, types: np.ndarray) -> None:
        """Overwrite the type-spin block in place (Theorem-3 reset).

        ``types`` is a 0/1 host array over the type columns; positions
        become ``2 * types - 1`` and the corresponding momenta zero.
        """
        r = self.n_rows
        x[..., 2 * r :] = 2.0 * types - 1.0
        y[..., 2 * r :] = 0.0

    # -- abstract arithmetic -------------------------------------------

    @abc.abstractmethod
    def prepare_state(
        self, x: np.ndarray, y: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Cast a freshly drawn state into kernel dtype/layout."""

    @abc.abstractmethod
    def step(
        self,
        x: np.ndarray,
        y: np.ndarray,
        a_t: float,
        dt: float,
        a0: float,
        c0,
    ) -> None:
        """One fused in-place bSB step (momentum, position, walls).

        ``c0`` is a scalar coupling scale, or — for stacked kernels
        whose problems were packed from different sweeps — a ``(P,)``
        vector with one scale per stacked problem.
        """

    @abc.abstractmethod
    def readout(self, x: np.ndarray) -> np.ndarray:
        """Sign readout ``±1`` of a position state (buffered)."""

    @abc.abstractmethod
    def energy(self, spins: np.ndarray) -> np.ndarray:
        """Ising energies of a spin state, shape = leading axes."""

    @abc.abstractmethod
    def fields(self, x: np.ndarray) -> np.ndarray:
        """Local fields of a position state, same shape as ``x``."""

    def __repr__(self) -> str:
        shape = (
            f"P={self.n_problems}, " if self.stacked else ""
        ) + f"r={self.n_rows}, c={self.n_cols}"
        return f"{type(self).__name__}({shape})"
