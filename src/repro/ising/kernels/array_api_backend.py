"""Array-API kernel backends: torch and CuPy.

Neither library ships in the reference environment, so this module is
written import-tolerant: when ``torch`` (or ``cupy``) cannot be
imported, the corresponding backend registers as *unavailable* with the
import error as its reason — ``repro list-kernels`` shows it greyed
out, and :func:`repro.ising.kernels.base.resolve_backend` degrades
requests for it to the default with a single warning.  Nothing in this
module requires the libraries at import time.

Both backends are float32 device backends under the ``numpy32``
tolerance contract (decoded settings are re-scored in float64 on the
host by the callers).  They are deliberately **excluded from the
semantic dictionary**: ``FrameworkConfig.semantic_dict`` resolves the
backend name for cache keys, and device backends map to the same
``numpy32`` tolerance class, so artifact keys must not fork on which
accelerator happened to be plugged in — see
:func:`repro.core.config.semantic_backend_name`.

Device-state protocol: these kernels keep ``x``/``y`` on the device
between steps.  Host code must not index into the state directly;
instead it goes through the host-boundary helpers every kernel exposes
(:meth:`state_to_host`, :meth:`sign_readout`, :meth:`assign_types`),
which the device backends override to insert the transfers.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.ising.kernels.base import BipartiteSBKernel, register_backend

__all__ = ["TORCH_AVAILABLE", "CUPY_AVAILABLE"]

try:  # pragma: no cover - exercised only where torch is installed
    import torch

    TORCH_AVAILABLE = True
    _TORCH_ERROR: Optional[str] = None
except Exception as _exc:  # pragma: no cover - ImportError / broken install
    torch = None  # type: ignore[assignment]
    TORCH_AVAILABLE = False
    _TORCH_ERROR = f"torch import failed: {_exc}"

try:  # pragma: no cover - exercised only where cupy is installed
    import cupy

    CUPY_AVAILABLE = True
    _CUPY_ERROR: Optional[str] = None
except Exception as _exc:  # pragma: no cover - ImportError / broken install
    cupy = None  # type: ignore[assignment]
    CUPY_AVAILABLE = False
    _CUPY_ERROR = f"cupy import failed: {_exc}"


if TORCH_AVAILABLE:  # pragma: no cover - exercised only with torch

    class TorchBipartiteKernel(BipartiteSBKernel):
        """Float32 kernel stepping entirely on a torch device.

        Defaults to CPU; uses CUDA when available.  One fused step does
        the two bipartite mat-muls plus the element-wise update without
        returning to the host; only :meth:`state_to_host` /
        :meth:`sign_readout` / sampling cross the boundary.
        """

        def __init__(self, weights: np.ndarray, device=None) -> None:
            super().__init__(weights, np.float32)
            self.name = "torch"
            if device is None:
                device = "cuda" if torch.cuda.is_available() else "cpu"
            self.device = torch.device(device)
            self._kd = torch.as_tensor(self.k, device=self.device)
            self._kdT = self._kd.transpose(-1, -2).contiguous()
            neg_a = (
                self.neg_a[:, np.newaxis, :] if self.stacked else self.neg_a
            )
            self._neg_a_d = torch.as_tensor(neg_a, device=self.device)

        # -- host boundary -------------------------------------------------

        def prepare_state(self, x, y) -> Tuple["torch.Tensor", ...]:
            xd = torch.as_tensor(
                np.array(x, dtype=np.float32, order="C"),
                device=self.device,
            )
            yd = torch.as_tensor(
                np.array(y, dtype=np.float32, order="C"),
                device=self.device,
            )
            return xd, yd

        def state_to_host(self, x) -> np.ndarray:
            if isinstance(x, torch.Tensor):
                return x.detach().cpu().numpy()
            return np.asarray(x)

        def assign_types(self, x, y, types: np.ndarray) -> None:
            r = self.n_rows
            td = torch.as_tensor(
                np.ascontiguousarray(2.0 * types - 1.0, dtype=np.float32),
                device=self.device,
            )
            x[..., 2 * r :] = td
            y[..., 2 * r :] = 0.0

        # -- device step ---------------------------------------------------

        def step(self, x, y, a_t, dt, a0, c0) -> None:
            r = self.n_rows
            v1 = x[..., :r]
            v2 = x[..., r : 2 * r]
            t = x[..., 2 * r :]
            kt = torch.matmul(t, self._kdT)
            f = torch.cat(
                [
                    self._neg_a_d + kt,
                    self._neg_a_d - kt,
                    torch.matmul(v1 - v2, self._kd),
                ],
                dim=-1,
            )
            if np.ndim(c0) > 0:
                c0d = torch.as_tensor(
                    np.asarray(c0, dtype=np.float32), device=self.device
                )[:, None, None]
                f = f * c0d
            else:
                f = f * float(c0)
            y.add_(dt * (-(a0 - a_t)) * x + dt * f)
            x.add_((dt * a0) * y)
            crossed = x.abs() > 1.0
            x.clamp_(-1.0, 1.0)
            y.masked_fill_(crossed, 0.0)

        def readout(self, x):
            return torch.where(x >= 0, 1.0, -1.0)

        def energy(self, spins) -> np.ndarray:
            s = self.state_to_host(spins).astype(np.float64)
            r = self.n_rows
            v1, v2, t = s[..., :r], s[..., r : 2 * r], s[..., 2 * r :]
            k64 = np.asarray(self.k, dtype=np.float64)
            kt = t @ np.swapaxes(k64, -1, -2)
            a64 = np.asarray(self.a, dtype=np.float64)
            if self.stacked:
                linear = np.einsum("pr,pRr->pR", a64, v1 + v2)
            else:
                linear = (v1 + v2) @ a64
            return linear + ((v2 - v1) * kt).sum(axis=-1)

        def fields(self, x) -> np.ndarray:
            s = self.state_to_host(x)
            r = self.n_rows
            v1, v2, t = s[..., :r], s[..., r : 2 * r], s[..., 2 * r :]
            kt = t @ np.swapaxes(self.k, -1, -2)
            neg_a = (
                self.neg_a[:, np.newaxis, :] if self.stacked else self.neg_a
            )
            return np.concatenate(
                [neg_a + kt, neg_a - kt, (v1 - v2) @ self.k], axis=-1
            )

    register_backend(
        "torch",
        TorchBipartiteKernel,
        dtype="float32",
        device="cuda" if torch.cuda.is_available() else "cpu",
        supports_batch=True,
        summary="torch device stepping (CUDA when available, else CPU)",
    )
else:
    register_backend(
        "torch",
        unavailable_reason=_TORCH_ERROR,
        dtype="float32",
        device="cuda",
        supports_batch=True,
        summary="torch device stepping (CUDA when available, else CPU)",
    )


if CUPY_AVAILABLE:  # pragma: no cover - exercised only with cupy

    class CuPyBipartiteKernel(BipartiteSBKernel):
        """Float32 kernel stepping on a CUDA device through CuPy.

        CuPy follows the NumPy API closely enough that the step mirrors
        the fused NumPy kernel with ``xp = cupy``; only the host
        boundary differs (explicit ``asnumpy`` transfers).
        """

        def __init__(self, weights: np.ndarray) -> None:
            super().__init__(weights, np.float32)
            self.name = "cupy"
            self._kd = cupy.asarray(self.k)
            neg_a = (
                self.neg_a[:, np.newaxis, :] if self.stacked else self.neg_a
            )
            self._neg_a_d = cupy.asarray(neg_a)

        def prepare_state(self, x, y):
            xd = cupy.asarray(np.array(x, dtype=np.float32, order="C"))
            yd = cupy.asarray(np.array(y, dtype=np.float32, order="C"))
            return xd, yd

        def state_to_host(self, x) -> np.ndarray:
            if isinstance(x, cupy.ndarray):
                return cupy.asnumpy(x)
            return np.asarray(x)

        def assign_types(self, x, y, types: np.ndarray) -> None:
            r = self.n_rows
            x[..., 2 * r :] = cupy.asarray(
                np.ascontiguousarray(2.0 * types - 1.0, dtype=np.float32)
            )
            y[..., 2 * r :] = 0.0

        def step(self, x, y, a_t, dt, a0, c0) -> None:
            r = self.n_rows
            v1 = x[..., :r]
            v2 = x[..., r : 2 * r]
            t = x[..., 2 * r :]
            kt = t @ cupy.swapaxes(self._kd, -1, -2)
            f = cupy.concatenate(
                [
                    self._neg_a_d + kt,
                    self._neg_a_d - kt,
                    (v1 - v2) @ self._kd,
                ],
                axis=-1,
            )
            if np.ndim(c0) > 0:
                f *= cupy.asarray(np.asarray(c0, dtype=np.float32))[
                    :, None, None
                ]
            else:
                f *= np.float32(c0)
            y += dt * (-(a0 - a_t)) * x + dt * f
            x += (dt * a0) * y
            crossed = cupy.abs(x) > 1.0
            cupy.clip(x, -1.0, 1.0, out=x)
            y[crossed] = 0.0

        def readout(self, x):
            return cupy.where(x >= 0, 1.0, -1.0).astype(cupy.float32)

        def energy(self, spins) -> np.ndarray:
            s = self.state_to_host(spins).astype(np.float64)
            r = self.n_rows
            v1, v2, t = s[..., :r], s[..., r : 2 * r], s[..., 2 * r :]
            k64 = np.asarray(self.k, dtype=np.float64)
            kt = t @ np.swapaxes(k64, -1, -2)
            a64 = np.asarray(self.a, dtype=np.float64)
            if self.stacked:
                linear = np.einsum("pr,pRr->pR", a64, v1 + v2)
            else:
                linear = (v1 + v2) @ a64
            return linear + ((v2 - v1) * kt).sum(axis=-1)

        def fields(self, x) -> np.ndarray:
            s = self.state_to_host(x)
            r = self.n_rows
            v1, v2, t = s[..., :r], s[..., r : 2 * r], s[..., 2 * r :]
            kt = t @ np.swapaxes(self.k, -1, -2)
            neg_a = (
                self.neg_a[:, np.newaxis, :] if self.stacked else self.neg_a
            )
            return np.concatenate(
                [neg_a + kt, neg_a - kt, (v1 - v2) @ self.k], axis=-1
            )

    register_backend(
        "cupy",
        CuPyBipartiteKernel,
        dtype="float32",
        device="cuda",
        supports_batch=True,
        summary="CuPy CUDA stepping (numpy-style array API)",
    )
else:
    register_backend(
        "cupy",
        unavailable_reason=_CUPY_ERROR,
        dtype="float32",
        device="cuda",
        supports_batch=True,
        summary="CuPy CUDA stepping (numpy-style array API)",
    )
