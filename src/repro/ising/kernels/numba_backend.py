"""Optional numba JIT backend for the fused bSB step.

Importing this module never requires numba: when the import fails the
module only records the backend as unavailable, and
:func:`repro.ising.kernels.base.resolve_backend` silently degrades
``backend="numba"`` requests to ``numpy64`` (with a warning).

When numba *is* present, the whole symplectic Euler step — both
bipartite mat-vecs, the momentum/position updates, and the inelastic
walls — compiles into a single pass over the state with no NumPy
dispatch overhead at all, which pays off on the small-``N`` instances
where per-call overhead rivals the arithmetic.  Energies, fields, and
readout reuse the NumPy implementation; only the hot step is jitted.
"""

from __future__ import annotations

import numpy as np

from repro.ising.kernels.base import register_backend
from repro.ising.kernels.numpy_backend import NumPyBipartiteKernel

__all__ = ["NUMBA_AVAILABLE"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    NUMBA_AVAILABLE = True
except Exception:  # pragma: no cover - ImportError or broken install
    NUMBA_AVAILABLE = False


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only with numba

    @njit(cache=True, fastmath=True)
    def _fused_step(k, neg_a, x, y, a_t, dt, a0, c0s):  # noqa: ANN001
        n_problems, n_replicas, n_spins = x.shape
        r = neg_a.shape[1]
        c = n_spins - 2 * r
        s1 = -(a0 - a_t)
        s2 = dt * a0
        for p in range(n_problems):
            c0 = c0s[p]
            for q in range(n_replicas):
                xi = x[p, q]
                yi = y[p, q]
                # momentum update with fields computed on the fly
                for j in range(c):
                    acc = 0.0
                    for i in range(r):
                        acc += (xi[i] - xi[r + i]) * k[p, i, j]
                    yi[2 * r + j] += dt * (s1 * xi[2 * r + j] + c0 * acc)
                for i in range(r):
                    kt = 0.0
                    for j in range(c):
                        kt += k[p, i, j] * xi[2 * r + j]
                    base = neg_a[p, i]
                    yi[i] += dt * (s1 * xi[i] + c0 * (base + kt))
                    yi[r + i] += dt * (s1 * xi[r + i] + c0 * (base - kt))
                # position update + perfectly inelastic walls
                for s in range(n_spins):
                    v = xi[s] + s2 * yi[s]
                    if v > 1.0:
                        v = 1.0
                        yi[s] = 0.0
                    elif v < -1.0:
                        v = -1.0
                        yi[s] = 0.0
                    xi[s] = v

    class NumbaBipartiteKernel(NumPyBipartiteKernel):
        """Float64 kernel whose step is a single jitted pass."""

        def __init__(self, weights) -> None:
            super().__init__(weights, np.float64)
            self.name = "numba"
            self._k3 = self.k if self.stacked else self.k[np.newaxis]
            self._neg_a3 = (
                self.neg_a if self.stacked else self.neg_a[np.newaxis]
            )

        def step(self, x, y, a_t, dt, a0, c0) -> None:
            self._ensure_buffers(x.shape)
            x3 = x if self.stacked else x[np.newaxis]
            y3 = y if self.stacked else y[np.newaxis]
            # scalar c0 broadcasts to an exact per-problem vector (the
            # same float64 value yields identical arithmetic)
            c0s = (
                np.asarray(c0, dtype=np.float64)
                if np.ndim(c0) > 0
                else np.full(x3.shape[0], float(c0))
            )
            _fused_step(
                self._k3, self._neg_a3, x3, y3,
                float(a_t), float(dt), float(a0), c0s,
            )

    register_backend(
        "numba",
        NumbaBipartiteKernel,
        dtype="float64",
        device="cpu",
        supports_batch=True,
        summary="JIT-fused float64 step (single pass, no dispatch)",
    )
else:
    register_backend(
        "numba",
        unavailable_reason="numba is not installed",
        dtype="float64",
        device="cpu",
        supports_batch=True,
        summary="JIT-fused float64 step (single pass, no dispatch)",
    )
