"""BlockBatch planner: pack compatible SB sweeps into batched steps.

A *member* is one prepared candidate sweep — a ``(P, R, N)`` oscillator
state plus the kernel that steps it and its coupling scale ``c0``.  The
planner groups members into *blocks*, each advanced by a single kernel
call per iteration window:

``solo``
    One member per block, advanced by the member's own kernel.  This is
    the only packing used for **float64** members: each block replays
    exactly the operation sequence the member would have run alone, so
    interleaving blocks is *structurally bit-identical* to running the
    members sequentially (locked in by ``tests/core/test_fused_sweep``).

``stack``
    Members with identical ``(r, c)`` shape and replica count are
    concatenated along the problem axis into one stacked kernel with a
    per-problem ``c0`` vector; member states become views into the
    packed arrays, so sampling and intervention code keeps operating on
    each member's own slice.  Used for float32 members (``numpy32`` /
    ``native32`` / device backends), whose contract is tolerance-based
    — per-slice arithmetic is unchanged (broadcasted matmul and the
    vector-``c0`` multiply perform the same IEEE operations per slice),
    but this packing is *not* promised bit-stable across regroupings.

``pad``
    Heterogeneous ``(r, c)`` shapes embedded block-diagonally into the
    common ``(r_max, c_max)`` envelope with zero-padded couplings.
    Padded oscillators see zero fields and evolve as free, clamped
    oscillators that cannot influence real ones; real-row arithmetic
    picks up extra zero summands inside the mat-vecs, which changes
    float32 summation order — strictly tolerance-class, so ``pad`` is
    opt-in (``strategy="pad"``) and never applied to float64 members.
    Member states live in member-shaped arrays refreshed by
    :meth:`Block.pull` / :meth:`Block.push` around sampling points.

The planner never touches schedules: callers group members by iteration
schedule first (see ``repro.core.batch.run_prepared_sweeps``) and only
hand schedule-compatible members to one :class:`BlockBatch`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, DimensionError
from repro.ising.kernels.base import BipartiteSBKernel, make_kernel

__all__ = ["BlockMember", "Block", "BlockBatch", "STRATEGIES"]

STRATEGIES = ("auto", "solo", "stack", "pad")


class BlockMember:
    """One sweep's stepping state, as seen by the planner.

    ``weights`` is the float64 ``(P, r, c)`` weight stack the member's
    kernel was built from (needed to build packed kernels); ``x``/``y``
    are the *prepared* kernel states, shape ``(P, R, N)``.  After
    :class:`BlockBatch` planning, ``x``/``y`` may be replaced by views
    into a packed array — callers must re-read them.
    """

    __slots__ = ("kernel", "weights", "x", "y", "c0")

    def __init__(
        self,
        kernel: BipartiteSBKernel,
        weights: np.ndarray,
        x,
        y,
        c0: float,
    ) -> None:
        if np.ndim(weights) != 3:
            raise DimensionError(
                f"member weights must be (P, r, c), got ndim="
                f"{np.ndim(weights)}"
            )
        self.kernel = kernel
        self.weights = weights
        self.x = x
        self.y = y
        self.c0 = float(c0)

    @property
    def n_problems(self) -> int:
        return int(self.weights.shape[0])

    @property
    def shape_key(self) -> Tuple:
        return (
            self.kernel.name,
            self.weights.shape[1],
            self.weights.shape[2],
            self.x.shape[-2],
        )


def _advance(kernel, x, y, a_ts, dt, a0, c0) -> None:
    """Advance one kernel state over a window of pump values."""
    run_tile = getattr(kernel, "run_tile", None)
    if run_tile is not None:
        run_tile(x, y, a_ts, dt, a0, c0)
        return
    for a_t in a_ts:
        kernel.step(x, y, a_t, dt, a0, c0)


class Block:
    """One batched update unit (base: the solo packing)."""

    kind = "solo"

    def __init__(self, members: Sequence[BlockMember]) -> None:
        self.members = list(members)

    @property
    def n_problems(self) -> int:
        return sum(m.n_problems for m in self.members)

    def advance(self, a_ts: Sequence[float], dt: float, a0: float) -> None:
        for member in self.members:
            _advance(
                member.kernel, member.x, member.y, a_ts, dt, a0, member.c0
            )

    def pull(self) -> None:
        """Refresh member-shaped states before host-side sampling."""

    def push(self) -> None:
        """Write host-side state edits back into the packed layout."""


class _StackedBlock(Block):
    """Same-shape members concatenated along the problem axis."""

    kind = "stack"

    def __init__(self, members: Sequence[BlockMember]) -> None:
        super().__init__(members)
        lead = members[0]
        backend = lead.kernel.name
        weights = np.concatenate([m.weights for m in members], axis=0)
        self.kernel = make_kernel(weights, backend=backend)
        self._c0 = np.concatenate(
            [np.full(m.n_problems, m.c0) for m in members]
        )
        self._x = _concat([m.x for m in members])
        self._y = _concat([m.y for m in members])
        # hand each member a view of its slice so sampling/intervention
        # writes land in the packed arrays with no copies
        start = 0
        for member in members:
            stop = start + member.n_problems
            member.x = self._x[start:stop]
            member.y = self._y[start:stop]
            start = stop

    def advance(self, a_ts, dt, a0) -> None:
        _advance(self.kernel, self._x, self._y, a_ts, dt, a0, self._c0)


class _PaddedBlock(Block):
    """Heterogeneous shapes zero-embedded into a common envelope.

    Layout per member inside the padded ``N = 2 r_max + c_max`` state:
    ``v1`` at ``[0:r)``, ``v2`` at ``[r_max : r_max + r)``, ``t`` at
    ``[2 r_max : 2 r_max + c)``; everything else is padding.
    """

    kind = "pad"

    def __init__(self, members: Sequence[BlockMember]) -> None:
        super().__init__(members)
        backend = members[0].kernel.name
        r_max = max(m.weights.shape[1] for m in members)
        c_max = max(m.weights.shape[2] for m in members)
        total = sum(m.n_problems for m in members)
        reps = members[0].x.shape[-2]
        weights = np.zeros((total, r_max, c_max))
        row = 0
        self._slots: List[Tuple[BlockMember, slice, int, int]] = []
        for member in members:
            p, r, c = member.weights.shape
            weights[row : row + p, :r, :c] = member.weights
            self._slots.append((member, slice(row, row + p), r, c))
            row += p
        self.kernel = make_kernel(weights, backend=backend)
        self._c0 = np.concatenate(
            [np.full(m.n_problems, m.c0) for m in members]
        )
        self._r_max, self._c_max = r_max, c_max
        n_pad = 2 * r_max + c_max
        dtype = members[0].x.dtype
        self._x = np.zeros((total, reps, n_pad), dtype)
        self._y = np.zeros((total, reps, n_pad), dtype)
        self.push()

    def _segments(self, r: int, c: int) -> Tuple[slice, slice, slice]:
        r_max = self._r_max
        return (
            slice(0, r),
            slice(r_max, r_max + r),
            slice(2 * r_max, 2 * r_max + c),
        )

    def advance(self, a_ts, dt, a0) -> None:
        _advance(self.kernel, self._x, self._y, a_ts, dt, a0, self._c0)

    def pull(self) -> None:
        for member, rows, r, c in self._slots:
            s1, s2, s3 = self._segments(r, c)
            for packed, dest in ((self._x, member.x), (self._y, member.y)):
                dest[..., :r] = packed[rows, :, s1]
                dest[..., r : 2 * r] = packed[rows, :, s2]
                dest[..., 2 * r :] = packed[rows, :, s3]

    def push(self) -> None:
        for member, rows, r, c in self._slots:
            s1, s2, s3 = self._segments(r, c)
            for packed, src in ((self._x, member.x), (self._y, member.y)):
                packed[rows, :, s1] = src[..., :r]
                packed[rows, :, s2] = src[..., r : 2 * r]
                packed[rows, :, s3] = src[..., 2 * r :]


def _concat(arrays):
    """Problem-axis concatenation for host arrays or device tensors."""
    first = arrays[0]
    if isinstance(first, np.ndarray):
        return np.ascontiguousarray(np.concatenate(arrays, axis=0))
    # torch/cupy tensors: both expose ``cat``-style concatenation via
    # their module; slicing the result shares storage like NumPy views
    module = type(first).__module__.split(".")[0]
    if module == "torch":  # pragma: no cover - device-only
        import torch

        return torch.cat(list(arrays), dim=0).contiguous()
    if module == "cupy":  # pragma: no cover - device-only
        import cupy

        return cupy.ascontiguousarray(cupy.concatenate(arrays, axis=0))
    raise ConfigurationError(
        f"cannot pack states of type {type(first).__name__}"
    )


def _packable(member: BlockMember) -> bool:
    """Float32 members may be packed; float64 members always run solo
    (solo replay is what guarantees structural bit-identity)."""
    return member.kernel.dtype == np.float32


class BlockBatch:
    """Plan and drive one schedule-compatible group of members."""

    def __init__(
        self,
        members: Sequence[BlockMember],
        strategy: str = "auto",
    ) -> None:
        if strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown batch strategy {strategy!r}; valid: "
                f"{', '.join(STRATEGIES)}"
            )
        if not members:
            raise DimensionError("BlockBatch needs at least one member")
        self.strategy = strategy
        self.blocks: List[Block] = []
        solo: List[BlockMember] = []
        packable: List[BlockMember] = []
        for member in members:
            (packable if strategy != "solo" and _packable(member)
             else solo).append(member)
        for member in solo:
            self.blocks.append(Block([member]))
        if packable:
            if strategy == "pad":
                by_reps: Dict[Tuple, List[BlockMember]] = {}
                for member in packable:
                    key = (member.kernel.name, member.x.shape[-2])
                    by_reps.setdefault(key, []).append(member)
                for group in by_reps.values():
                    if len(group) == 1:
                        self.blocks.append(Block(group))
                    else:
                        self.blocks.append(_PaddedBlock(group))
            else:  # auto / stack: same-shape concatenation
                by_shape: Dict[Tuple, List[BlockMember]] = {}
                for member in packable:
                    by_shape.setdefault(member.shape_key, []).append(member)
                for group in by_shape.values():
                    if len(group) == 1:
                        self.blocks.append(Block(group))
                    else:
                        self.blocks.append(_StackedBlock(group))

    # ------------------------------------------------------------------

    def advance(self, a_ts: Sequence[float], dt: float, a0: float) -> None:
        """Advance every block by one iteration window."""
        for block in self.blocks:
            block.advance(a_ts, dt, a0)

    def pull(self) -> None:
        for block in self.blocks:
            block.pull()

    def push(self) -> None:
        for block in self.blocks:
            block.push()

    def describe(self) -> Dict[str, object]:
        """Span/metrics attributes summarizing the packing."""
        kinds: Dict[str, int] = {}
        for block in self.blocks:
            kinds[block.kind] = kinds.get(block.kind, 0) + 1
        return {
            "strategy": self.strategy,
            "n_blocks": len(self.blocks),
            "n_members": sum(len(b.members) for b in self.blocks),
            "n_problems": sum(b.n_problems for b in self.blocks),
            "block_kinds": kinds,
        }
