"""NumPy kernel backends: fused, preallocated bSB stepping.

The historical inline loop spent most of its non-GEMM time allocating:
``model.fields`` built three fresh blocks plus a concatenation, and the
Euler update created four more temporaries per iteration.  The fused
kernel preallocates one fields buffer, one element-wise scratch buffer,
two mat-vec buffers, and a wall mask, and performs every update with
``out=``-style ufuncs and matmuls — zero allocations per iteration.

``numpy64`` keeps the exact float64 operation order of the inline loop
(each fused ufunc computes the same IEEE operation on the same
operands), so its trajectories are **bit-for-bit** identical to the
pre-kernel solver — the equivalence test in
``tests/ising/test_kernels.py`` locks this in.  ``numpy32`` is the same
code in float32.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import DimensionError
from repro.ising.kernels.base import BipartiteSBKernel, register_backend

__all__ = ["NumPyBipartiteKernel"]


class NumPyBipartiteKernel(BipartiteSBKernel):
    """Fused bipartite bSB kernel on NumPy, dtype-parametric.

    Works for single problems (states ``(R, N)``, weights ``(r, c)``)
    and stacked batches (states ``(P, R, N)``, weights ``(P, r, c)``)
    through matmul broadcasting.
    """

    def __init__(self, weights: np.ndarray, dtype=np.float64) -> None:
        super().__init__(weights, dtype)
        self.name = f"numpy{np.dtype(dtype).itemsize * 8}"
        # broadcastable (-a) for stacked states: (P, r) -> (P, 1, r)
        self._neg_a_b = (
            self.neg_a[:, np.newaxis, :] if self.stacked else self.neg_a
        )
        self._one = self.dtype.type(1.0)
        self._buf_shape: Tuple[int, ...] = ()
        self._f = self._tmp = self._kt = self._dr = None
        self._ft = self._spins = self._inside = None

    # ------------------------------------------------------------------

    def _ensure_buffers(self, shape: Tuple[int, ...]) -> None:
        if shape == self._buf_shape:
            return
        if len(shape) != self.expected_state_ndim() or (
            shape[-1] != self.n_spins
            or (self.stacked and shape[0] != self.n_problems)
        ):
            raise DimensionError(
                f"state shape {shape} does not match kernel "
                f"{self!r} (N={self.n_spins})"
            )
        lead = shape[:-1]
        r, c = self.n_rows, self.n_cols
        self._f = np.empty(shape, self.dtype)        # fused local fields
        self._tmp = np.empty(shape, self.dtype)      # element-wise scratch
        self._kt = np.empty(lead + (r,), self.dtype)     # K @ t
        self._dr = np.empty(lead + (r,), self.dtype)     # v1 - v2
        self._ft = np.empty(lead + (c,), self.dtype)     # (v1 - v2) K
        self._spins = np.empty(shape, self.dtype)    # readout buffer
        self._inside = np.empty(shape, bool)         # |x| <= 1 mask
        self._buf_shape = shape

    def prepare_state(
        self, x: np.ndarray, y: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        x = np.array(x, dtype=self.dtype, order="C", copy=True)
        y = np.array(y, dtype=self.dtype, order="C", copy=True)
        self._ensure_buffers(x.shape)
        return x, y

    # ------------------------------------------------------------------

    def step(self, x, y, a_t, dt, a0, c0) -> None:
        self._ensure_buffers(x.shape)
        r = self.n_rows
        f, tmp, kt, dr, ft = self._f, self._tmp, self._kt, self._dr, self._ft
        v1, v2, t = self.split(x)

        # local fields, block-wise into the preallocated buffer; the
        # per-element operations are identical to the allocating
        # ``-a + kt`` / ``-a - kt`` / ``(v1 - v2) @ K`` expressions
        np.matmul(t, np.swapaxes(self.k, -1, -2), out=kt)
        np.add(self._neg_a_b, kt, out=f[..., :r])
        np.subtract(self._neg_a_b, kt, out=f[..., r : 2 * r])
        np.subtract(v1, v2, out=dr)
        np.matmul(dr, self.k, out=ft)
        f[..., 2 * r :] = ft

        # y += dt * (-(a0 - a_t) * x + c0 * f);  x += (dt * a0) * y
        dtp = self.dtype.type
        if np.ndim(c0) > 0:
            # per-problem coupling scales of a cross-sweep packed stack;
            # broadcasting multiplies each (R, N) slice by its own
            # scalar with the same IEEE operation as the scalar path
            np.multiply(
                f,
                np.asarray(c0, dtype=self.dtype)[:, np.newaxis, np.newaxis],
                out=f,
            )
        else:
            np.multiply(f, dtp(c0), out=f)
        np.multiply(x, dtp(-(a0 - a_t)), out=tmp)
        np.add(tmp, f, out=tmp)
        np.multiply(tmp, dtp(dt), out=tmp)
        np.add(y, tmp, out=y)
        np.multiply(y, dtp(dt * a0), out=tmp)
        np.add(x, tmp, out=x)

        # perfectly inelastic walls: clamp positions, zero the momenta
        # of every oscillator that crossed, in one fused pass
        np.abs(x, out=tmp)
        np.less_equal(tmp, self._one, out=self._inside)
        if not self._inside.all():
            np.clip(x, -self._one, self._one, out=x)
            np.multiply(y, self._inside, out=y)

    def readout(self, x: np.ndarray) -> np.ndarray:
        self._ensure_buffers(x.shape)
        spins = self._spins
        np.greater_equal(x, 0.0, out=self._inside)
        np.multiply(self._inside, self.dtype.type(2.0), out=spins)
        np.subtract(spins, self._one, out=spins)
        return spins

    def energy(self, spins: np.ndarray) -> np.ndarray:
        v1, v2, t = self.split(np.asarray(spins, dtype=self.dtype))
        kt = t @ np.swapaxes(self.k, -1, -2)
        if self.stacked:
            linear = np.einsum("pr,pRr->pR", self.a, v1 + v2)
        else:
            linear = (v1 + v2) @ self.a
        cross = ((v2 - v1) * kt).sum(axis=-1)
        return linear + cross

    def fields(self, x: np.ndarray) -> np.ndarray:
        v1, v2, t = self.split(np.asarray(x, dtype=self.dtype))
        kt = t @ np.swapaxes(self.k, -1, -2)
        neg_a = self._neg_a_b
        f_v1 = neg_a + kt
        f_v2 = neg_a - kt
        f_t = (v1 - v2) @ self.k
        return np.concatenate([f_v1, f_v2, f_t], axis=-1)


register_backend(
    "numpy64",
    lambda w: NumPyBipartiteKernel(w, np.float64),
    dtype="float64",
    device="cpu",
    supports_batch=True,
    summary="float64 reference; bit-for-bit the historical inline loop",
)
register_backend(
    "numpy32",
    lambda w: NumPyBipartiteKernel(w, np.float32),
    dtype="float32",
    device="cpu",
    supports_batch=True,
    summary="float32 stepping, float64 scoring (tolerance contract)",
)
