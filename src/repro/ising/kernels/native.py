"""Runtime-compiled C tile engine for the float32 bSB hot path.

Why this exists
---------------

Profiling the batched candidate sweep on CPU shows two costs that NumPy
cannot remove:

* **Per-call dispatch** — the fused NumPy step still issues ~15 ufunc /
  matmul calls per iteration; at the framework's default ``n_replicas=4``
  the arrays are small enough that dispatch and memory passes dominate
  the arithmetic.
* **Coupling-matrix streaming** — advancing a stack of problems in
  lockstep re-reads every problem's ``K`` matrix from memory on every
  iteration (a ``(r, c)`` float32 ``K`` at the benchmark's reference
  shape is 256 KiB; sixteen of them evict each other from L2).  The
  per-problem loop keeps ``K`` cache-hot but pays the dispatch overhead
  instead.

The tile engine removes both at once: a small C library (compiled once
per machine with the system C compiler, cached, loaded via ``ctypes``)
runs a *tile* of iterations for each problem back-to-back — ``K`` stays
hot in cache across the whole tile — and fuses every element-wise pass
(fields, momentum/position update, inelastic walls) into a single sweep
over the state.  The two bipartite mat-vecs call the BLAS ``sgemm``
bundled with NumPy/SciPy through a function pointer, chunked to at most
8 rows per call (this BLAS's skinny-GEMM kernels are ~2x faster per
element at M=8 than at M=16).

Numerics: ``native32`` is a float32 backend under the same tolerance
contract as ``numpy32`` (float32 trajectories are not bitwise portable
across BLAS builds anyway); decoded settings are scored in float64 by
the callers, and the PR 5 numeric guard covers divergence.  The
``numpy64`` reference path never routes through this module.

Availability: requires a C compiler (``$CC``, else ``gcc``/``cc``/
``clang``) and a discoverable OpenBLAS shared library.  When either is
missing the backend registers as unavailable and resolution degrades to
``numpy64`` with a single warning; when compilation fails late despite
the probe, kernel construction falls back to the ``numpy32``
implementation (same tolerance class) and logs once.  Set
``REPRO_NATIVE_CACHE`` to override the compile cache directory.
"""

from __future__ import annotations

import ctypes
import glob
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ising.kernels.base import register_backend
from repro.ising.kernels.numpy_backend import NumPyBipartiteKernel
from repro.obs.logconfig import get_logger

logger = get_logger("repro.ising.kernels.native")

__all__ = [
    "NATIVE_PROBED_AVAILABLE",
    "NativeBipartiteKernel",
    "NativeEngine",
    "native_engine",
    "native_engine_error",
]

_C_SOURCE = r"""
#include <stdint.h>

#define ROWMAJOR 101
#define NOTRANS 111
#define TRANS 112

/* Largest row count per sgemm call: this BLAS's skinny-GEMM kernels
   run ~2x faster per element at M=8 than at M=16. */
#define GEMM_ROW_CHUNK 8

typedef void (*sgemm32_t)(int order, int ta, int tb, int m, int n, int k,
                          float alpha, const float *a, int lda,
                          const float *b, int ldb, float beta,
                          float *c, int ldc);
typedef void (*sgemm64_t)(int64_t order, int64_t ta, int64_t tb,
                          int64_t m, int64_t n, int64_t k,
                          float alpha, const float *a, int64_t lda,
                          const float *b, int64_t ldb, float beta,
                          float *c, int64_t ldc);

static void sgemm(void *fn, int ilp64, int tb, int m, int n, int k,
                  const float *a, int lda, const float *b, int ldb,
                  float *c, int ldc)
{
    if (ilp64)
        ((sgemm64_t)fn)(ROWMAJOR, NOTRANS, tb, m, n, k, 1.0f,
                        a, lda, b, ldb, 0.0f, c, ldc);
    else
        ((sgemm32_t)fn)(ROWMAJOR, NOTRANS, tb, m, n, k, 1.0f,
                        a, lda, b, ldb, 0.0f, c, ldc);
}

/* Advance `tile` ballistic-SB iterations for each of `B` bipartite
   problems, one problem at a time so its coupling block stays hot in
   cache across the whole tile.

   Layouts (all C-contiguous float32):
     x, y     (B, R, n)  positions / momenta, n = 2r + c
     k        (B, r, c)  couplings K = W / 4
     a        (B, r)     row sums of K
     c0       (B,)       per-problem coupling scale
     kt       (R, r)     scratch: K t
     dr       (R, r)     scratch: v1 - v2
     ft       (R, c)     scratch: (v1 - v2) K
     damp_dt  (tile,)    -(a0 - a_t) * dt per tile iteration

   Per iteration and oscillator the update is
     y += damp_dt * x + dt * c0 * field;  x += dt_a0 * y
   followed by perfectly inelastic walls (clamp x to [-1, 1], zero the
   crossing momentum) — the same symplectic Euler scheme as the NumPy
   backends, with the element-wise passes fused into one sweep. */
void sb_tile_f32(void *sgemm_fn, int64_t ilp64,
                 float *x, float *y,
                 const float *k, const float *a, const float *c0,
                 float *kt, float *dr, float *ft,
                 const float *damp_dt,
                 int64_t tile, int64_t B, int64_t R,
                 int64_t r, int64_t c, float dt, float dt_a0)
{
    const int64_t n = 2 * r + c;
    for (int64_t b = 0; b < B; ++b) {
        float *xb = x + b * R * n;
        float *yb = y + b * R * n;
        const float *kb = k + b * r * c;
        const float *ab = a + b * r;
        const float dtc0 = dt * c0[b];
        for (int64_t it = 0; it < tile; ++it) {
            const float damp = damp_dt[it];
            /* kt = t @ K^T : (R, c) @ (c, r), K row-major (r, c) */
            for (int64_t r0 = 0; r0 < R; r0 += GEMM_ROW_CHUNK) {
                int m = (int)(R - r0 < GEMM_ROW_CHUNK ? R - r0
                                                      : GEMM_ROW_CHUNK);
                sgemm(sgemm_fn, (int)ilp64, TRANS, m, (int)r, (int)c,
                      xb + r0 * n + 2 * r, (int)n, kb, (int)c,
                      kt + r0 * r, (int)r);
            }
            for (int64_t rep = 0; rep < R; ++rep) {
                const float *xr = xb + rep * n;
                float *d = dr + rep * r;
                for (int64_t i = 0; i < r; ++i)
                    d[i] = xr[i] - xr[r + i];
            }
            /* ft = dr @ K : (R, r) @ (r, c) */
            for (int64_t r0 = 0; r0 < R; r0 += GEMM_ROW_CHUNK) {
                int m = (int)(R - r0 < GEMM_ROW_CHUNK ? R - r0
                                                      : GEMM_ROW_CHUNK);
                sgemm(sgemm_fn, (int)ilp64, NOTRANS, m, (int)c, (int)r,
                      dr + r0 * r, (int)r, kb, (int)c, ft + r0 * c,
                      (int)c);
            }
            for (int64_t rep = 0; rep < R; ++rep) {
                float *xr = xb + rep * n;
                float *yr = yb + rep * n;
                const float *ktr = kt + rep * r;
                const float *ftr = ft + rep * c;
                for (int64_t i = 0; i < r; ++i) {
                    float f = dtc0 * (ktr[i] - ab[i]);
                    float yy = yr[i] + damp * xr[i] + f;
                    float xx = xr[i] + dt_a0 * yy;
                    if (xx > 1.0f) { xx = 1.0f; yy = 0.0f; }
                    else if (xx < -1.0f) { xx = -1.0f; yy = 0.0f; }
                    xr[i] = xx; yr[i] = yy;
                }
                for (int64_t i = 0; i < r; ++i) {
                    float f = dtc0 * (-ktr[i] - ab[i]);
                    float yy = yr[r + i] + damp * xr[r + i] + f;
                    float xx = xr[r + i] + dt_a0 * yy;
                    if (xx > 1.0f) { xx = 1.0f; yy = 0.0f; }
                    else if (xx < -1.0f) { xx = -1.0f; yy = 0.0f; }
                    xr[r + i] = xx; yr[r + i] = yy;
                }
                for (int64_t i = 0; i < c; ++i) {
                    float f = dtc0 * ftr[i];
                    float yy = yr[2 * r + i] + damp * xr[2 * r + i] + f;
                    float xx = xr[2 * r + i] + dt_a0 * yy;
                    if (xx > 1.0f) { xx = 1.0f; yy = 0.0f; }
                    else if (xx < -1.0f) { xx = -1.0f; yy = 0.0f; }
                    xr[2 * r + i] = xx; yr[2 * r + i] = yy;
                }
            }
        }
    }
}
"""

# BLAS shared-library glob patterns, tried inside every */site-packages
# "*.libs" directory numpy/scipy vendor their BLAS into
_BLAS_GLOBS = ("libscipy_openblas*.so*", "libopenblas*.so*")
# (symbol, is_ilp64) in preference order: LP64 CBLAS first
_SGEMM_SYMBOLS = (
    ("scipy_cblas_sgemm", False),
    ("cblas_sgemm", False),
    ("scipy_cblas_sgemm64_", True),
    ("cblas_sgemm64_", True),
)

_f32 = np.ctypeslib.ndpointer(np.float32, flags="C")
_i64 = ctypes.c_int64

_ENGINE_LOCK = threading.Lock()
_ENGINE: Optional["NativeEngine"] = None
_ENGINE_ERROR: Optional[str] = None
_ENGINE_BUILT = False
_FALLBACK_WARNED = False


def _find_compiler() -> Optional[str]:
    for candidate in (os.environ.get("CC"), "gcc", "cc", "clang"):
        if candidate and shutil.which(candidate):
            return shutil.which(candidate)
    return None


def _blas_candidates() -> List[str]:
    """Paths of vendored BLAS shared libraries, numpy's first."""
    roots = []
    for module in (np,):
        roots.append(os.path.dirname(os.path.dirname(module.__file__)))
    paths: List[str] = []
    for root in roots:
        for libs_dir in sorted(glob.glob(os.path.join(root, "*.libs"))):
            for pattern in _BLAS_GLOBS:
                paths.extend(
                    sorted(glob.glob(os.path.join(libs_dir, pattern)))
                )
    # de-duplicate, order-preserving
    seen = set()
    unique = []
    for path in paths:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def _load_sgemm() -> Tuple[ctypes.c_void_p, bool, str]:
    """(function pointer, is_ilp64, lib path) of a usable ``sgemm``."""
    errors = []
    for path in _blas_candidates():
        try:
            lib = ctypes.CDLL(path)
        except OSError as exc:
            errors.append(f"{path}: {exc}")
            continue
        for symbol, ilp64 in _SGEMM_SYMBOLS:
            fn = getattr(lib, symbol, None)
            if fn is not None:
                return ctypes.cast(fn, ctypes.c_void_p), ilp64, path
        errors.append(f"{path}: no cblas sgemm symbol")
    raise OSError(
        "no BLAS sgemm found"
        + (f" ({'; '.join(errors)})" if errors else " (no candidate libs)")
    )


def _cache_dir() -> str:
    override = os.environ.get("REPRO_NATIVE_CACHE", "").strip()
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro", "native")


def _compile_library(cc: str) -> str:
    """Compile the tile engine (cached by source+compiler hash)."""
    tag = hashlib.sha256(
        (_C_SOURCE + "\0" + cc).encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    os.makedirs(cache, exist_ok=True)
    so_path = os.path.join(cache, f"sb_tile_{tag}.so")
    if os.path.exists(so_path):
        return so_path
    src_path = os.path.join(cache, f"sb_tile_{tag}.c")
    with open(src_path, "w") as handle:
        handle.write(_C_SOURCE)
    fd, tmp_so = tempfile.mkstemp(suffix=".so", dir=cache)
    os.close(fd)
    base_cmd = [cc, "-O3", "-funroll-loops", "-shared", "-fPIC",
                "-o", tmp_so, src_path]
    attempts = (
        base_cmd[:1] + ["-march=native"] + base_cmd[1:],
        base_cmd,
    )
    last_error = ""
    for cmd in attempts:
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=120
            )
        except (OSError, subprocess.SubprocessError) as exc:
            last_error = str(exc)
            continue
        if proc.returncode == 0:
            os.replace(tmp_so, so_path)
            logger.info("compiled native SB tile engine: %s", so_path)
            return so_path
        last_error = (proc.stderr or proc.stdout or "").strip()
    try:
        os.unlink(tmp_so)
    except OSError:
        pass
    raise OSError(f"C compilation failed: {last_error}")


class NativeEngine:
    """Handle to the compiled tile library plus the BLAS entry point."""

    def __init__(self) -> None:
        cc = _find_compiler()
        if cc is None:
            raise OSError("no C compiler found ($CC, gcc, cc, clang)")
        self.sgemm_ptr, self.ilp64, self.blas_path = _load_sgemm()
        self.so_path = _compile_library(cc)
        self.lib = ctypes.CDLL(self.so_path)
        fn = self.lib.sb_tile_f32
        fn.argtypes = (
            [ctypes.c_void_p, _i64]      # sgemm fn, ilp64 flag
            + [_f32] * 8                 # x y k a c0 kt dr ft
            + [_f32]                     # damp_dt
            + [_i64] * 5                 # tile B R r c
            + [ctypes.c_float] * 2       # dt, dt*a0
        )
        fn.restype = None
        self._fn = fn

    def sb_tile(
        self,
        x: np.ndarray,
        y: np.ndarray,
        k: np.ndarray,
        a: np.ndarray,
        c0: np.ndarray,
        kt: np.ndarray,
        dr: np.ndarray,
        ft: np.ndarray,
        damp_dt: np.ndarray,
        dt: float,
        dt_a0: float,
    ) -> None:
        """Run ``len(damp_dt)`` fused iterations over a ``(B, R, n)``
        state stack (see the C docstring for layouts)."""
        n_problems, n_replicas, _ = x.shape
        n_rows, n_cols = k.shape[-2], k.shape[-1]
        self._fn(
            self.sgemm_ptr, int(self.ilp64),
            x, y, k, a, c0, kt, dr, ft, damp_dt,
            len(damp_dt), n_problems, n_replicas, n_rows, n_cols,
            ctypes.c_float(dt), ctypes.c_float(dt_a0),
        )


def native_engine() -> Optional[NativeEngine]:
    """The process-wide engine, built on first use (``None`` on failure).

    Thread-safe; a failed build is remembered and not retried (see
    :func:`native_engine_error` for the reason).
    """
    global _ENGINE, _ENGINE_ERROR, _ENGINE_BUILT
    with _ENGINE_LOCK:
        if not _ENGINE_BUILT:
            _ENGINE_BUILT = True
            try:
                _ENGINE = NativeEngine()
            except Exception as exc:  # any failure → unavailable
                _ENGINE = None
                _ENGINE_ERROR = f"{type(exc).__name__}: {exc}"
        return _ENGINE


def native_engine_error() -> Optional[str]:
    """Why the engine build failed (``None`` before/without failure)."""
    return _ENGINE_ERROR


class NativeBipartiteKernel(NumPyBipartiteKernel):
    """Float32 kernel backed by the compiled tile engine.

    Inherits readout/energy/fields (host NumPy) from the float32 NumPy
    kernel; :meth:`step` and :meth:`run_tile` route through the C
    library.  Works for single problems and stacked batches; ``c0`` may
    be a scalar or a per-problem vector.
    """

    def __init__(self, weights: np.ndarray, engine: NativeEngine) -> None:
        super().__init__(weights, np.float32)
        self.name = "native32"
        self.engine = engine
        # (B, r, c) / (B, r) views for the C call; the base class made
        # self.k C-contiguous float32 already
        self._k3 = self.k if self.stacked else self.k[np.newaxis]
        self._a3 = np.ascontiguousarray(
            self.a if self.stacked else self.a[np.newaxis], np.float32
        )
        self._scratch_r = -1
        self._kt = self._dr_buf = self._ft_buf = None

    def _ensure_scratch(self, n_replicas: int) -> None:
        if n_replicas == self._scratch_r:
            return
        r, c = self.n_rows, self.n_cols
        self._kt = np.empty((n_replicas, r), np.float32)
        self._dr_buf = np.empty((n_replicas, r), np.float32)
        self._ft_buf = np.empty((n_replicas, c), np.float32)
        self._scratch_r = n_replicas

    def _c0_vector(self, c0, n_problems: int) -> np.ndarray:
        if np.ndim(c0) > 0:
            return np.ascontiguousarray(c0, np.float32)
        return np.full(n_problems, c0, np.float32)

    def run_tile(
        self,
        x: np.ndarray,
        y: np.ndarray,
        a_ts: Sequence[float],
        dt: float,
        a0: float,
        c0,
    ) -> None:
        """Advance ``len(a_ts)`` iterations in one compiled pass.

        Problems are stepped one at a time with their couplings hot in
        cache — this is where the batched path's speedup comes from, so
        callers should pass the longest tile their sampling cadence
        allows.
        """
        self._ensure_buffers(x.shape)
        x3 = x if self.stacked else x[np.newaxis]
        y3 = y if self.stacked else y[np.newaxis]
        self._ensure_scratch(x3.shape[1])
        damp = np.ascontiguousarray(
            [-(a0 - a_t) * dt for a_t in a_ts], np.float32
        )
        self.engine.sb_tile(
            x3, y3, self._k3, self._a3,
            self._c0_vector(c0, x3.shape[0]),
            self._kt, self._dr_buf, self._ft_buf,
            damp, float(dt), float(dt * a0),
        )

    def step(self, x, y, a_t, dt, a0, c0) -> None:
        self.run_tile(x, y, (a_t,), dt, a0, c0)


def _make_native(weights: np.ndarray) -> NumPyBipartiteKernel:
    """Factory: native kernel, degrading to numpy32 if the build fails.

    The import-time probe only checks that a compiler and a BLAS
    library *look* present; if the actual compile/load then fails, fall
    back to the same-tolerance-class float32 NumPy kernel (warn once)
    instead of failing kernel construction mid-solve.
    """
    global _FALLBACK_WARNED
    engine = native_engine()
    if engine is not None:
        return NativeBipartiteKernel(weights, engine)
    if not _FALLBACK_WARNED:
        _FALLBACK_WARNED = True
        logger.warning(
            "native32 engine build failed (%s); using numpy32 arithmetic",
            native_engine_error(),
        )
    kernel = NumPyBipartiteKernel(weights, np.float32)
    kernel.name = "native32"
    return kernel


def _probe() -> Optional[str]:
    """Cheap import-time availability check (no compilation)."""
    if _find_compiler() is None:
        return "no C compiler found ($CC, gcc, cc, clang)"
    if not _blas_candidates():
        return "no vendored BLAS shared library found"
    return None


_PROBE_REASON = _probe()
NATIVE_PROBED_AVAILABLE = _PROBE_REASON is None

_NATIVE_SUMMARY = (
    "compiled float32 tile engine (cache-blocked, fused element-wise)"
)
if NATIVE_PROBED_AVAILABLE:
    register_backend(
        "native32",
        _make_native,
        dtype="float32",
        device="cpu",
        supports_batch=True,
        summary=_NATIVE_SUMMARY,
    )
else:
    register_backend(
        "native32",
        unavailable_reason=_PROBE_REASON,
        dtype="float32",
        device="cpu",
        supports_batch=True,
        summary=_NATIVE_SUMMARY,
    )
