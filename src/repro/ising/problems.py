"""Classic Ising problem formulations used to validate the solvers.

These are standard textbook mappings (Lucas 2014).  Their role in this
repository is *instrumental*: they give the solver zoo ground-truth
problems whose optima are independently checkable, so regressions in the
SB/SA implementations are caught away from the decomposition pipeline.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.errors import DimensionError
from repro.ising.model import DenseIsingModel

__all__ = [
    "max_cut_model",
    "max_cut_value",
    "number_partitioning_model",
    "partition_imbalance",
    "random_max_cut_weights",
]


def max_cut_model(weights: np.ndarray) -> DenseIsingModel:
    """Ising model whose objective equals *minus* the cut weight.

    ``weights`` is a symmetric non-negative ``(n, n)`` adjacency matrix
    (zero diagonal).  For any spin assignment partitioning vertices by
    sign, ``model.objective(sigma) == -cut_weight(sigma)``; a ground
    state is a maximum cut.
    """
    w = np.asarray(weights, dtype=float)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise DimensionError(f"weights must be square, got shape {w.shape}")
    if not np.allclose(w, w.T):
        raise DimensionError("weights must be symmetric")
    if not np.allclose(np.diag(w), 0.0):
        raise DimensionError("weights must have zero diagonal")
    n = w.shape[0]
    # -cut = (1/4) sum_ij w_ij s_i s_j - W_total/2,  W_total = sum_{i<j} w_ij
    j = -w / 2.0
    offset = -float(np.triu(w, 1).sum()) / 2.0
    return DenseIsingModel(np.zeros(n), j, offset)


def max_cut_value(weights: np.ndarray, spins: np.ndarray) -> float:
    """Cut weight of the sign partition ``spins`` (direct computation)."""
    w = np.asarray(weights, dtype=float)
    sigma = np.asarray(spins, dtype=float)
    cross = (sigma[:, np.newaxis] * sigma[np.newaxis, :]) < 0
    return float((np.triu(w, 1) * np.triu(cross, 1)).sum())


def number_partitioning_model(values: np.ndarray) -> DenseIsingModel:
    """Ising model whose objective equals the squared subset-sum imbalance.

    For weights ``a_i`` and signs ``sigma``, the objective is
    ``(sum_i a_i sigma_i)**2``; a zero-objective ground state is a
    perfect partition.
    """
    a = np.asarray(values, dtype=float)
    if a.ndim != 1:
        raise DimensionError(f"values must be 1-D, got ndim={a.ndim}")
    n = a.shape[0]
    j = -2.0 * np.outer(a, a)
    np.fill_diagonal(j, 0.0)
    offset = float((a**2).sum())
    return DenseIsingModel(np.zeros(n), j, offset)


def partition_imbalance(values: np.ndarray, spins: np.ndarray) -> float:
    """``|sum_i a_i sigma_i|`` — direct imbalance of a sign partition."""
    a = np.asarray(values, dtype=float)
    sigma = np.asarray(spins, dtype=float)
    return float(abs(a @ sigma))


def random_max_cut_weights(
    n_vertices: int,
    density: float = 0.5,
    rng: Optional[Union[int, np.random.Generator]] = None,
) -> np.ndarray:
    """A random symmetric weighted graph for solver validation."""
    if not 0.0 < density <= 1.0:
        raise DimensionError(f"density must be in (0, 1], got {density}")
    rng = np.random.default_rng(rng)
    upper = np.triu(rng.random((n_vertices, n_vertices)), 1)
    mask = np.triu(rng.random((n_vertices, n_vertices)) < density, 1)
    upper = upper * mask
    return upper + upper.T
