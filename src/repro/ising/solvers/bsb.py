"""Ballistic simulated bifurcation (bSB), Goto et al. 2021.

bSB simulates a network of classical oscillators whose potential encodes
the Ising energy.  Each spin ``i`` has a position ``x_i`` and momentum
``y_i`` evolved with symplectic Euler steps:

    y_i += dt * ( -(a0 - a(t)) * x_i + c0 * f_i(x) )
    x_i += dt * a0 * y_i

where ``f(x) = h + J x`` are the local fields and ``a(t)`` is the pump
ramping from 0 through the bifurcation point to ``a0``.  The *ballistic*
variant confines positions with perfectly inelastic walls: whenever
``|x_i| > 1`` the position is clamped to ``sign(x_i)`` and the momentum
zeroed.  The solution is read out as ``sign(x)``.

This implementation adds the paper's two improvements as composable
options:

* a :class:`~repro.ising.stop_criteria.StopCriterion` (the dynamic
  energy-variance stop of Section 3.3.1), and
* an *intervention hook* invoked at every sampling point with the live
  :class:`SBState`, which the Theorem-3 heuristic (Section 3.3.2) uses
  to overwrite the column-type oscillators with their conditionally
  optimal values.

Multiple replicas evolve in parallel (``n_replicas``); the best sampled
spin state across replicas and time is returned.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.errors import SolverError
from repro.ising.model import IsingModel
from repro.ising.schedules import LinearPump
from repro.ising.solvers.base import IsingSolver, SolveResult
from repro.ising.stop_criteria import FixedIterations, StopCriterion
from repro.obs.probe import SolverProbe, make_probe

__all__ = ["BallisticSBSolver", "SBState", "InterventionHook"]


@dataclass
class SBState:
    """Mutable view of a simulated-bifurcation run at a sampling point.

    Intervention hooks may modify :attr:`positions` and :attr:`momenta`
    in place; the solver continues from the modified state.
    """

    model: IsingModel
    positions: np.ndarray  # (n_replicas, N)
    momenta: np.ndarray  # (n_replicas, N)
    iteration: int
    best_energy: float
    best_spins: np.ndarray

    @property
    def spins(self) -> np.ndarray:
        """Current sign readout, shape ``(n_replicas, N)``."""
        return np.where(self.positions >= 0.0, 1.0, -1.0)


InterventionHook = Callable[[SBState], None]


def _sign_readout(x: np.ndarray) -> np.ndarray:
    return np.where(x >= 0.0, 1.0, -1.0)


class BallisticSBSolver(IsingSolver):
    """Ballistic simulated bifurcation with dynamic stop and interventions.

    Parameters
    ----------
    stop:
        Stop criterion; defaults to 1000 fixed iterations.
    dt:
        Euler step size.
    a0:
        Detuning / final pump amplitude.
    coupling_strength:
        ``c0``; ``None`` auto-scales to
        ``0.5 / (coupling_rms * sqrt(N))`` per Goto et al.
    n_replicas:
        Independent oscillator networks evolved in parallel.
    pump:
        Pump schedule; defaults to a linear ramp over the stop
        criterion's ``max_iterations``.
    intervention:
        Optional hook called at every sampling point (see module doc).
    initial_amplitude:
        Positions/momenta are initialized uniformly in
        ``[-initial_amplitude, +initial_amplitude]``.
    initializer:
        Optional callable ``(rng, n_replicas, n_spins, amplitude) ->
        (x, y)`` overriding the default uniform initialization — used
        e.g. to break known symmetries of structured models.
    sample_every_default:
        Sampling period used when the stop criterion does not request
        sampling itself (so the energy trace and interventions still run).
    backend:
        Compute-kernel backend for the Euler step when the model
        provides one (``model.make_kernel``): ``"numpy64"`` (bit-for-bit
        the historical inline loop), ``"numpy32"``, or ``"numba"``.
        ``None`` resolves through ``REPRO_SB_BACKEND`` and defaults to
        ``numpy64``; models without kernels use the generic inline path.
        Energy sampling always scores decoded spins in float64 through
        ``model.energy``, whatever the stepping dtype.
    trace_every:
        Keep every ``trace_every``-th sampled energy in
        ``SolveResult.energy_trace`` (1, the default, keeps all samples
        — the historical behavior).  Sampling, interventions, and the
        stop criterion are unaffected; only the retained trace thins.
    probe:
        Optional :class:`~repro.obs.probe.SolverProbe` observing this
        run.  ``None`` (default) consults the process-global probe
        factory (:func:`repro.obs.probe.make_probe`), which is itself
        ``None`` unless ``repro.obs.observe`` is active.  Probes are
        RNG-neutral: results are bit-identical with probes on or off.
    """

    def __init__(
        self,
        stop: Optional[StopCriterion] = None,
        dt: float = 0.25,
        a0: float = 1.0,
        coupling_strength: Optional[float] = None,
        n_replicas: int = 1,
        pump: Optional[LinearPump] = None,
        intervention: Optional[InterventionHook] = None,
        initial_amplitude: float = 0.1,
        sample_every_default: int = 50,
        initializer=None,
        backend: Optional[str] = None,
        trace_every: int = 1,
        probe: Optional[SolverProbe] = None,
    ) -> None:
        if dt <= 0:
            raise SolverError(f"dt must be positive, got {dt}")
        if trace_every < 1:
            raise SolverError(
                f"trace_every must be >= 1, got {trace_every}"
            )
        if n_replicas <= 0:
            raise SolverError(
                f"n_replicas must be positive, got {n_replicas}"
            )
        if initial_amplitude <= 0:
            raise SolverError(
                f"initial_amplitude must be positive, got {initial_amplitude}"
            )
        self.stop = stop if stop is not None else FixedIterations(1000)
        self.dt = float(dt)
        self.a0 = float(a0)
        self.coupling_strength = coupling_strength
        self.n_replicas = int(n_replicas)
        self.pump = pump
        self.intervention = intervention
        self.initial_amplitude = float(initial_amplitude)
        self.sample_every_default = int(sample_every_default)
        self.initializer = initializer
        self.backend = backend
        self.trace_every = int(trace_every)
        self.probe = probe

    # ------------------------------------------------------------------

    def _resolve_c0(self, model: IsingModel) -> float:
        if self.coupling_strength is not None:
            return float(self.coupling_strength)
        rms = model.coupling_rms()
        if rms <= 0.0:
            return 1.0
        return 0.5 / (rms * np.sqrt(model.n_spins))

    def solve(
        self,
        model: IsingModel,
        rng: Optional[np.random.Generator] = None,
    ) -> SolveResult:
        start = time.perf_counter()
        rng = np.random.default_rng(rng)
        n = model.n_spins
        c0 = self._resolve_c0(model)
        stop = self.stop
        stop.reset()
        max_iterations = stop.max_iterations
        pump = self.pump or LinearPump(self.a0, max_iterations)
        sample_every = stop.sample_every or self.sample_every_default

        if self.initializer is not None:
            x, y = self.initializer(
                rng, self.n_replicas, n, self.initial_amplitude
            )
            x = np.asarray(x, dtype=float)
            y = np.asarray(y, dtype=float)
            if x.shape != (self.n_replicas, n) or y.shape != x.shape:
                raise SolverError(
                    "initializer must return two arrays of shape "
                    f"({self.n_replicas}, {n})"
                )
        else:
            x = rng.uniform(
                -self.initial_amplitude, self.initial_amplitude,
                (self.n_replicas, n),
            )
            y = rng.uniform(
                -self.initial_amplitude, self.initial_amplitude,
                (self.n_replicas, n),
            )

        # models exposing ``make_kernel`` (the bipartite core COP) step
        # through a fused backend kernel; everything else keeps the
        # generic inline update driven by ``model.fields``
        kernel = None
        maker = getattr(model, "make_kernel", None)
        if maker is not None:
            kernel = maker(self.backend)
            x, y = kernel.prepare_state(x, y)

        probe = self.probe if self.probe is not None else make_probe()
        if probe is not None:
            probe.on_begin(
                n_spins=n,
                n_replicas=self.n_replicas,
                max_iterations=max_iterations,
                backend=kernel.name if kernel is not None else "inline",
                dtype=str(kernel.dtype) if kernel is not None else "float64",
            )

        best_energy = np.inf
        best_spins = _sign_readout(x[0])
        trace = []
        n_samples = 0
        stop_reason = "max_iterations"
        iteration = 0

        for iteration in range(1, max_iterations + 1):
            a_t = pump(iteration)
            step_t0 = time.perf_counter() if probe is not None else 0.0
            if kernel is not None:
                kernel.step(x, y, a_t, self.dt, self.a0, c0)
            else:
                y += self.dt * (
                    -(self.a0 - a_t) * x + c0 * model.fields(x)
                )
                x += self.dt * self.a0 * y
                # perfectly inelastic walls at |x| = 1
                outside = np.abs(x) > 1.0
                if outside.any():
                    np.clip(x, -1.0, 1.0, out=x)
                    y[outside] = 0.0
            if probe is not None:
                probe.on_step(time.perf_counter() - step_t0)

            if iteration % sample_every == 0:
                spins = _sign_readout(x)
                energies = np.atleast_1d(model.energy(spins))
                idx = int(np.argmin(energies))
                current = float(energies[idx])
                if current < best_energy:
                    best_energy = current
                    best_spins = spins[idx].copy()
                if n_samples % self.trace_every == 0:
                    trace.append(current)
                n_samples += 1
                if probe is not None:
                    probe.on_sample(iteration, current, best_energy)
                if self.intervention is not None:
                    state = SBState(
                        model=model,
                        positions=x,
                        momenta=y,
                        iteration=iteration,
                        best_energy=best_energy,
                        best_spins=best_spins,
                    )
                    self.intervention(state)
                    spins_after = _sign_readout(x)
                    changed = not np.array_equal(spins_after, spins)
                    if probe is not None:
                        probe.on_intervention(iteration, changed)
                    # re-score only when the hook actually changed the
                    # decoded state; an unchanged readout has unchanged
                    # energies, so the second evaluation would be a
                    # no-op over every replica
                    if changed:
                        spins = spins_after
                        energies = np.atleast_1d(model.energy(spins))
                        idx = int(np.argmin(energies))
                        current = float(energies[idx])
                        if current < best_energy:
                            best_energy = current
                            best_spins = spins[idx].copy()
                if stop.wants_sample(iteration):
                    stopped = stop.observe(current)
                    if probe is not None:
                        probe.on_stop_observation(
                            iteration,
                            getattr(stop, "last_variance", None),
                            getattr(stop, "threshold", None),
                            stopped,
                        )
                    if stopped:
                        stop_reason = "variance_converged"
                        break

        # final readout in case the last iterations were never sampled
        spins = _sign_readout(x)
        energies = np.atleast_1d(model.energy(spins))
        idx = int(np.argmin(energies))
        if float(energies[idx]) < best_energy:
            best_energy = float(energies[idx])
            best_spins = spins[idx].copy()

        runtime = time.perf_counter() - start
        if probe is not None:
            probe.on_end(
                n_iterations=iteration,
                stop_reason=stop_reason,
                best_energy=best_energy,
            )
        return SolveResult(
            spins=best_spins,
            energy=best_energy,
            objective=best_energy + model.offset,
            n_iterations=iteration,
            stop_reason=stop_reason,
            energy_trace=trace,
            runtime_seconds=runtime,
            metadata={
                "solver": "bsb",
                "backend": kernel.name if kernel is not None else "inline",
                "dtype": (
                    str(kernel.dtype) if kernel is not None else "float64"
                ),
                "n_replicas": self.n_replicas,
            },
        )

    def __repr__(self) -> str:
        return (
            f"BallisticSBSolver(stop={self.stop!r}, dt={self.dt}, "
            f"a0={self.a0}, n_replicas={self.n_replicas})"
        )
