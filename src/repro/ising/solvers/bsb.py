"""Ballistic simulated bifurcation (bSB), Goto et al. 2021.

bSB simulates a network of classical oscillators whose potential encodes
the Ising energy.  Each spin ``i`` has a position ``x_i`` and momentum
``y_i`` evolved with symplectic Euler steps:

    y_i += dt * ( -(a0 - a(t)) * x_i + c0 * f_i(x) )
    x_i += dt * a0 * y_i

where ``f(x) = h + J x`` are the local fields and ``a(t)`` is the pump
ramping from 0 through the bifurcation point to ``a0``.  The *ballistic*
variant confines positions with perfectly inelastic walls: whenever
``|x_i| > 1`` the position is clamped to ``sign(x_i)`` and the momentum
zeroed.  The solution is read out as ``sign(x)``.

This implementation adds the paper's two improvements as composable
options:

* a :class:`~repro.ising.stop_criteria.StopCriterion` (the dynamic
  energy-variance stop of Section 3.3.1), and
* an *intervention hook* invoked at every sampling point with the live
  :class:`SBState`, which the Theorem-3 heuristic (Section 3.3.2) uses
  to overwrite the column-type oscillators with their conditionally
  optimal values.

Multiple replicas evolve in parallel (``n_replicas``); the best sampled
spin state across replicas and time is returned.

Resilience features (all opt-in or free when idle):

* **Numerical guards** — at every sampling point the kernel's cheap
  :meth:`~repro.ising.kernels.base.BipartiteSBKernel.check_state`
  verifies the live state.  A non-finite or diverging trajectory on a
  reduced-precision backend (``numpy32``) restarts the run from its
  initial state on the forced ``numpy64`` reference backend; a
  non-finite *float64* state raises :class:`~repro.errors.SolverError`.
  Escalations are counted in ``SolveResult.metadata`` and the
  ``solver_numeric_escalations_total`` metric.
* **Checkpoint / resume** — ``solve(..., checkpoint_every=k,
  on_checkpoint=fn)`` hands an :class:`SBCheckpoint` to ``fn`` every
  ``k`` sampling points; ``solve(..., resume=ckpt)`` continues a run
  bit-identically (state is carried in canonical float64, which
  round-trips float32 kernels losslessly).
* **Fault seams** — with a :class:`~repro.resilience.FaultPlan`
  installed, the ``kernel.nan`` / ``kernel.overflow`` sites corrupt the
  live state at sampling points to exercise the guards.  The plan is
  looked up once per solve; with no plan installed the seam is a single
  ``is None`` test outside the step loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import SolverError
from repro.ising.model import IsingModel
from repro.ising.schedules import LinearPump
from repro.ising.solvers.base import IsingSolver, SolveResult
from repro.ising.stop_criteria import FixedIterations, StopCriterion
from repro.obs.metrics import get_metrics
from repro.obs.probe import SolverProbe, make_probe
from repro.resilience import active_fault_plan
from repro.resilience.rng import capture_rng, restore_rng

__all__ = [
    "BallisticSBSolver",
    "SBCheckpoint",
    "SBState",
    "InterventionHook",
]

#: the backend the numeric guard escalates to
ESCALATION_BACKEND = "numpy64"


@dataclass
class SBState:
    """Mutable view of a simulated-bifurcation run at a sampling point.

    Intervention hooks may modify :attr:`positions` and :attr:`momenta`
    in place; the solver continues from the modified state.
    """

    model: IsingModel
    positions: np.ndarray  # (n_replicas, N)
    momenta: np.ndarray  # (n_replicas, N)
    iteration: int
    best_energy: float
    best_spins: np.ndarray

    @property
    def spins(self) -> np.ndarray:
        """Current sign readout, shape ``(n_replicas, N)``."""
        return np.where(self.positions >= 0.0, 1.0, -1.0)


@dataclass
class SBCheckpoint:
    """Everything needed to continue a bSB run bit-identically.

    Captured at a sampling point (after the stop criterion consumed its
    sample, before the next Euler step).  Positions/momenta are stored
    in canonical float64 — exact for the ``numpy64``/inline paths and a
    lossless widening of float32 states, so a ``numpy32`` resume casts
    back to the identical float32 bits.  The RNG snapshot preserves the
    seed-sequence spawn counter (see :mod:`repro.resilience.rng`) so
    callers that spawn child generators after the solve keep their
    derivation sequence.
    """

    iteration: int
    n_samples: int
    best_energy: float
    best_spins: List[float]
    positions: List  # (n_replicas, N) nested lists, float64
    momenta: List  # (n_replicas, N) nested lists, float64
    trace: List[float] = field(default_factory=list)
    stop_state: Dict = field(default_factory=dict)
    rng_state: Dict = field(default_factory=dict)
    backend: str = "inline"
    numeric_escalations: int = 0

    def to_dict(self) -> Dict:
        return {
            "iteration": self.iteration,
            "n_samples": self.n_samples,
            "best_energy": self.best_energy,
            "best_spins": list(self.best_spins),
            "positions": self.positions,
            "momenta": self.momenta,
            "trace": list(self.trace),
            "stop_state": dict(self.stop_state),
            "rng_state": dict(self.rng_state),
            "backend": self.backend,
            "numeric_escalations": self.numeric_escalations,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SBCheckpoint":
        return cls(
            iteration=int(data["iteration"]),
            n_samples=int(data["n_samples"]),
            best_energy=float(data["best_energy"]),
            best_spins=list(data["best_spins"]),
            positions=data["positions"],
            momenta=data["momenta"],
            trace=list(data.get("trace", ())),
            stop_state=dict(data.get("stop_state", {})),
            rng_state=dict(data.get("rng_state", {})),
            backend=str(data.get("backend", "inline")),
            numeric_escalations=int(data.get("numeric_escalations", 0)),
        )


InterventionHook = Callable[[SBState], None]
CheckpointHook = Callable[[SBCheckpoint], None]


def _sign_readout(x: np.ndarray) -> np.ndarray:
    return np.where(x >= 0.0, 1.0, -1.0)


class BallisticSBSolver(IsingSolver):
    """Ballistic simulated bifurcation with dynamic stop and interventions.

    Parameters
    ----------
    stop:
        Stop criterion; defaults to 1000 fixed iterations.
    dt:
        Euler step size.
    a0:
        Detuning / final pump amplitude.
    coupling_strength:
        ``c0``; ``None`` auto-scales to
        ``0.5 / (coupling_rms * sqrt(N))`` per Goto et al.
    n_replicas:
        Independent oscillator networks evolved in parallel.
    pump:
        Pump schedule; defaults to a linear ramp over the stop
        criterion's ``max_iterations``.
    intervention:
        Optional hook called at every sampling point (see module doc).
    initial_amplitude:
        Positions/momenta are initialized uniformly in
        ``[-initial_amplitude, +initial_amplitude]``.
    initializer:
        Optional callable ``(rng, n_replicas, n_spins, amplitude) ->
        (x, y)`` overriding the default uniform initialization — used
        e.g. to break known symmetries of structured models.
    sample_every_default:
        Sampling period used when the stop criterion does not request
        sampling itself (so the energy trace and interventions still run).
    backend:
        Compute-kernel backend for the Euler step when the model
        provides one (``model.make_kernel``): ``"numpy64"`` (bit-for-bit
        the historical inline loop), ``"numpy32"``, or ``"numba"``.
        ``None`` resolves through ``REPRO_SB_BACKEND`` and defaults to
        ``numpy64``; models without kernels use the generic inline path.
        Energy sampling always scores decoded spins in float64 through
        ``model.energy``, whatever the stepping dtype.
    trace_every:
        Keep every ``trace_every``-th sampled energy in
        ``SolveResult.energy_trace`` (1, the default, keeps all samples
        — the historical behavior).  Sampling, interventions, and the
        stop criterion are unaffected; only the retained trace thins.
    probe:
        Optional :class:`~repro.obs.probe.SolverProbe` observing this
        run.  ``None`` (default) consults the process-global probe
        factory (:func:`repro.obs.probe.make_probe`), which is itself
        ``None`` unless ``repro.obs.observe`` is active.  Probes are
        RNG-neutral: results are bit-identical with probes on or off.
    numeric_guard:
        Check the kernel state for NaN/inf/divergence at every sampling
        point and escalate reduced-precision backends to ``numpy64``
        (restarting from the initial state) instead of returning
        garbage.  A non-finite float64 state raises
        :class:`~repro.errors.SolverError`.  On by default; the check
        is two allocation-free reductions per sampling point.
    """

    def __init__(
        self,
        stop: Optional[StopCriterion] = None,
        dt: float = 0.25,
        a0: float = 1.0,
        coupling_strength: Optional[float] = None,
        n_replicas: int = 1,
        pump: Optional[LinearPump] = None,
        intervention: Optional[InterventionHook] = None,
        initial_amplitude: float = 0.1,
        sample_every_default: int = 50,
        initializer=None,
        backend: Optional[str] = None,
        trace_every: int = 1,
        probe: Optional[SolverProbe] = None,
        numeric_guard: bool = True,
    ) -> None:
        if dt <= 0:
            raise SolverError(f"dt must be positive, got {dt}")
        if trace_every < 1:
            raise SolverError(
                f"trace_every must be >= 1, got {trace_every}"
            )
        if n_replicas <= 0:
            raise SolverError(
                f"n_replicas must be positive, got {n_replicas}"
            )
        if initial_amplitude <= 0:
            raise SolverError(
                f"initial_amplitude must be positive, got {initial_amplitude}"
            )
        self.stop = stop if stop is not None else FixedIterations(1000)
        self.dt = float(dt)
        self.a0 = float(a0)
        self.coupling_strength = coupling_strength
        self.n_replicas = int(n_replicas)
        self.pump = pump
        self.intervention = intervention
        self.initial_amplitude = float(initial_amplitude)
        self.sample_every_default = int(sample_every_default)
        self.initializer = initializer
        self.backend = backend
        self.trace_every = int(trace_every)
        self.probe = probe
        self.numeric_guard = bool(numeric_guard)

    # ------------------------------------------------------------------

    def _resolve_c0(self, model: IsingModel) -> float:
        if self.coupling_strength is not None:
            return float(self.coupling_strength)
        rms = model.coupling_rms()
        if rms <= 0.0:
            return 1.0
        return 0.5 / (rms * np.sqrt(model.n_spins))

    def _initial_state(self, rng: np.random.Generator, n: int):
        """Draw the float64 initial positions/momenta."""
        if self.initializer is not None:
            x, y = self.initializer(
                rng, self.n_replicas, n, self.initial_amplitude
            )
            x = np.asarray(x, dtype=float)
            y = np.asarray(y, dtype=float)
            if x.shape != (self.n_replicas, n) or y.shape != x.shape:
                raise SolverError(
                    "initializer must return two arrays of shape "
                    f"({self.n_replicas}, {n})"
                )
            return x, y
        x = rng.uniform(
            -self.initial_amplitude, self.initial_amplitude,
            (self.n_replicas, n),
        )
        y = rng.uniform(
            -self.initial_amplitude, self.initial_amplitude,
            (self.n_replicas, n),
        )
        return x, y

    def solve(
        self,
        model: IsingModel,
        rng: Optional[np.random.Generator] = None,
        *,
        resume: Optional[SBCheckpoint] = None,
        checkpoint_every: Optional[int] = None,
        on_checkpoint: Optional[CheckpointHook] = None,
    ) -> SolveResult:
        """Run bSB on ``model`` (see class docs).

        Keyword-only resilience parameters:

        resume:
            Continue from an :class:`SBCheckpoint` instead of drawing a
            fresh initial state; the completed run is bit-identical to
            the uninterrupted one on the same backend.
        checkpoint_every:
            Capture a checkpoint every this-many *sampling points*
            (``None`` disables).
        on_checkpoint:
            Receives each captured :class:`SBCheckpoint`; exceptions
            propagate (a checkpoint that cannot be persisted should
            fail the attempt, not silently skip).
        """
        start = time.perf_counter()
        if checkpoint_every is not None and checkpoint_every < 1:
            raise SolverError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        rng = np.random.default_rng(rng)
        n = model.n_spins
        c0 = self._resolve_c0(model)
        stop = self.stop
        stop.reset()
        max_iterations = stop.max_iterations
        pump = self.pump or LinearPump(self.a0, max_iterations)
        sample_every = stop.sample_every or self.sample_every_default
        # hoisted once per solve: the disabled-path cost of the kernel
        # fault seams is this single lookup
        plan = active_fault_plan()

        # -- base state: fresh draw or checkpoint restore ---------------
        # ``x64``/``y64`` stay pristine float64 for the lifetime of the
        # solve; each attempt (first try, post-escalation retry) casts
        # them into the kernel dtype via ``prepare_state``.
        if resume is not None:
            x64 = np.asarray(resume.positions, dtype=np.float64)
            y64 = np.asarray(resume.momenta, dtype=np.float64)
            if x64.shape != (self.n_replicas, n) or y64.shape != x64.shape:
                raise SolverError(
                    f"checkpoint state shape {x64.shape} does not match "
                    f"solver ({self.n_replicas}, {n})"
                )
            if resume.rng_state:
                rng = restore_rng(resume.rng_state)
            base_iteration = int(resume.iteration)
            base_n_samples = int(resume.n_samples)
            base_best_energy = float(resume.best_energy)
            base_best_spins = np.asarray(resume.best_spins, dtype=float)
            base_trace = list(resume.trace)
            base_stop_state = dict(resume.stop_state)
            numeric_escalations = int(resume.numeric_escalations)
        else:
            x64, y64 = self._initial_state(rng, n)
            base_iteration = 0
            base_n_samples = 0
            base_best_energy = np.inf
            base_best_spins = None
            base_trace = []
            base_stop_state = {}
            numeric_escalations = 0

        maker = getattr(model, "make_kernel", None)
        probe = self.probe if self.probe is not None else make_probe()
        force_float64 = False

        # models exposing ``make_kernel`` (the bipartite core COP) step
        # through a fused backend kernel; everything else keeps the
        # generic inline update driven by ``model.fields``.  The while
        # loop runs once normally; a numeric-guard escalation restarts
        # it on the forced float64 reference backend.
        while True:
            if maker is not None:
                kernel = maker(
                    ESCALATION_BACKEND if force_float64 else self.backend,
                    ignore_env=force_float64,
                )
                x, y = kernel.prepare_state(x64, y64)
            else:
                kernel = None
                x, y = x64, y64
            guard = self.numeric_guard and kernel is not None

            stop.reset()
            if base_stop_state:
                stop.load_state_dict(base_stop_state)
            best_energy = base_best_energy
            best_spins = (
                base_best_spins.copy()
                if base_best_spins is not None
                else _sign_readout(x[0])
            )
            trace = list(base_trace)
            n_samples = base_n_samples
            stop_reason = "max_iterations"
            iteration = base_iteration
            escalated = False

            if probe is not None:
                probe.on_begin(
                    n_spins=n,
                    n_replicas=self.n_replicas,
                    max_iterations=max_iterations,
                    backend=kernel.name if kernel is not None else "inline",
                    dtype=(
                        str(kernel.dtype)
                        if kernel is not None
                        else "float64"
                    ),
                )

            for iteration in range(base_iteration + 1, max_iterations + 1):
                a_t = pump(iteration)
                step_t0 = time.perf_counter() if probe is not None else 0.0
                if kernel is not None:
                    kernel.step(x, y, a_t, self.dt, self.a0, c0)
                else:
                    y += self.dt * (
                        -(self.a0 - a_t) * x + c0 * model.fields(x)
                    )
                    x += self.dt * self.a0 * y
                    # perfectly inelastic walls at |x| = 1
                    outside = np.abs(x) > 1.0
                    if outside.any():
                        np.clip(x, -1.0, 1.0, out=x)
                        y[outside] = 0.0
                if probe is not None:
                    probe.on_step(time.perf_counter() - step_t0)

                if iteration % sample_every == 0:
                    if plan is not None and kernel is not None:
                        detail = f"{kernel.name}:iter{iteration}"
                        if plan.should_fire("kernel.nan", detail):
                            x.flat[0] = np.nan
                        if plan.should_fire("kernel.overflow", detail):
                            with np.errstate(over="ignore"):
                                # deliberately overflows float32 to inf
                                y.flat[0] = 1e300
                    if guard:
                        verdict = kernel.check_state(x, y)
                        if verdict is not None and self._handle_unhealthy(
                            verdict, kernel, iteration, probe
                        ):
                            numeric_escalations += 1
                            force_float64 = True
                            escalated = True
                            break
                    spins = _sign_readout(x)
                    energies = np.atleast_1d(model.energy(spins))
                    idx = int(np.argmin(energies))
                    current = float(energies[idx])
                    if current < best_energy:
                        best_energy = current
                        best_spins = spins[idx].copy()
                    if n_samples % self.trace_every == 0:
                        trace.append(current)
                    n_samples += 1
                    if probe is not None:
                        probe.on_sample(iteration, current, best_energy)
                    if self.intervention is not None:
                        state = SBState(
                            model=model,
                            positions=x,
                            momenta=y,
                            iteration=iteration,
                            best_energy=best_energy,
                            best_spins=best_spins,
                        )
                        self.intervention(state)
                        spins_after = _sign_readout(x)
                        changed = not np.array_equal(spins_after, spins)
                        if probe is not None:
                            probe.on_intervention(iteration, changed)
                        # re-score only when the hook actually changed the
                        # decoded state; an unchanged readout has unchanged
                        # energies, so the second evaluation would be a
                        # no-op over every replica
                        if changed:
                            spins = spins_after
                            energies = np.atleast_1d(model.energy(spins))
                            idx = int(np.argmin(energies))
                            current = float(energies[idx])
                            if current < best_energy:
                                best_energy = current
                                best_spins = spins[idx].copy()
                    if stop.wants_sample(iteration):
                        stopped = stop.observe(current)
                        if probe is not None:
                            probe.on_stop_observation(
                                iteration,
                                getattr(stop, "last_variance", None),
                                getattr(stop, "threshold", None),
                                stopped,
                            )
                        if stopped:
                            stop_reason = "variance_converged"
                            break
                    if (
                        checkpoint_every is not None
                        and on_checkpoint is not None
                        and (n_samples - base_n_samples) % checkpoint_every
                        == 0
                    ):
                        on_checkpoint(
                            SBCheckpoint(
                                iteration=iteration,
                                n_samples=n_samples,
                                best_energy=best_energy,
                                best_spins=[
                                    float(s) for s in best_spins
                                ],
                                positions=np.asarray(
                                    x, dtype=np.float64
                                ).tolist(),
                                momenta=np.asarray(
                                    y, dtype=np.float64
                                ).tolist(),
                                trace=list(trace),
                                stop_state=stop.state_dict(),
                                rng_state=capture_rng(rng),
                                backend=(
                                    kernel.name
                                    if kernel is not None
                                    else "inline"
                                ),
                                numeric_escalations=numeric_escalations,
                            )
                        )

            if not escalated:
                break

        # final readout in case the last iterations were never sampled
        spins = _sign_readout(x)
        energies = np.atleast_1d(model.energy(spins))
        idx = int(np.argmin(energies))
        if float(energies[idx]) < best_energy:
            best_energy = float(energies[idx])
            best_spins = spins[idx].copy()

        runtime = time.perf_counter() - start
        if probe is not None:
            probe.on_end(
                n_iterations=iteration,
                stop_reason=stop_reason,
                best_energy=best_energy,
            )
        return SolveResult(
            spins=best_spins,
            energy=best_energy,
            objective=best_energy + model.offset,
            n_iterations=iteration,
            stop_reason=stop_reason,
            energy_trace=trace,
            runtime_seconds=runtime,
            metadata={
                "solver": "bsb",
                "backend": kernel.name if kernel is not None else "inline",
                "dtype": (
                    str(kernel.dtype) if kernel is not None else "float64"
                ),
                "n_replicas": self.n_replicas,
                "numeric_escalations": numeric_escalations,
                "resumed": resume is not None,
            },
        )

    def _handle_unhealthy(
        self,
        verdict: str,
        kernel,
        iteration: int,
        probe: Optional[SolverProbe],
    ) -> bool:
        """Route an unhealthy state: escalate (True) or raise.

        Reduced-precision backends escalate to ``numpy64`` on any
        verdict; the float64 reference path raises on ``"nonfinite"``
        (there is nowhere safer to go) and tolerates ``"diverged"``
        (a large-but-finite float64 momentum recovers through the
        walls; only width-limited dtypes would overflow).
        """
        if kernel.dtype == np.dtype(np.float64):
            if verdict == "nonfinite":
                raise SolverError(
                    f"non-finite solver state on float64 backend "
                    f"{kernel.name!r} at iteration {iteration}; the "
                    "model couplings are likely broken (or a fault "
                    "was injected without a recovery path)"
                )
            return False  # "diverged" on float64: benign, keep going
        get_metrics().counter(
            "solver_numeric_escalations_total",
            help="solver restarts forced by unhealthy kernel state",
        ).inc()
        if probe is not None:
            probe.on_numeric_escalation(
                iteration, kernel.name, ESCALATION_BACKEND
            )
        return True

    def __repr__(self) -> str:
        return (
            f"BallisticSBSolver(stop={self.stop!r}, dt={self.dt}, "
            f"a0={self.a0}, n_replicas={self.n_replicas})"
        )
