"""Parallel tempering (replica-exchange Metropolis) for Ising models.

Runs ``n_replicas`` Metropolis chains at a geometric temperature ladder
and periodically proposes swaps between neighbouring temperatures with
the standard exchange acceptance
``min(1, exp((1/T_a - 1/T_b) (E_a - E_b)))``.  The cold chain samples
near the ground state while hot chains keep supplying escape moves —
a strong general-purpose baseline that complements SA (one schedule)
and SB (deterministic dynamics) in the solver ablations.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.errors import SolverError
from repro.ising.model import IsingModel
from repro.ising.solvers.base import IsingSolver, SolveResult

__all__ = ["ParallelTemperingSolver"]


class ParallelTemperingSolver(IsingSolver):
    """Replica-exchange Metropolis over a geometric temperature ladder.

    Parameters
    ----------
    n_sweeps:
        Full-lattice sweeps per replica.
    n_replicas:
        Number of temperatures in the ladder.
    t_cold / t_hot:
        Ladder endpoints, rescaled by the model's typical field
        magnitude (like the SA solver's auto-scaling).
    swap_every:
        Sweeps between neighbour-swap rounds.
    """

    def __init__(
        self,
        n_sweeps: int = 200,
        n_replicas: int = 6,
        t_cold: float = 0.05,
        t_hot: float = 5.0,
        swap_every: int = 2,
        trace_every: int = 1,
    ) -> None:
        if n_sweeps <= 0:
            raise SolverError(f"n_sweeps must be positive, got {n_sweeps}")
        if n_replicas < 2:
            raise SolverError(f"n_replicas must be >= 2, got {n_replicas}")
        if not 0 < t_cold < t_hot:
            raise SolverError(
                f"need 0 < t_cold < t_hot, got ({t_cold}, {t_hot})"
            )
        if swap_every <= 0:
            raise SolverError(f"swap_every must be positive, got {swap_every}")
        self.n_sweeps = int(n_sweeps)
        self.n_replicas = int(n_replicas)
        self.t_cold = float(t_cold)
        self.t_hot = float(t_hot)
        self.swap_every = int(swap_every)
        if trace_every < 1:
            raise SolverError(
                f"trace_every must be >= 1, got {trace_every}"
            )
        self.trace_every = int(trace_every)

    def solve(
        self,
        model: IsingModel,
        rng: Optional[np.random.Generator] = None,
    ) -> SolveResult:
        start = time.perf_counter()
        rng = np.random.default_rng(rng)
        dense = model.to_dense()
        n = dense.n_spins
        h, j = dense.biases, dense.couplings

        probe = rng.choice([-1.0, 1.0], size=n)
        scale = float(np.abs(dense.fields(probe)).mean()) or 1.0
        ladder = self.t_cold * scale * (
            (self.t_hot / self.t_cold)
            ** (np.arange(self.n_replicas) / (self.n_replicas - 1))
        )

        sigma = rng.choice([-1.0, 1.0], size=(self.n_replicas, n))
        fields = sigma @ j + h  # (R, n)
        energies = np.array([float(dense.energy(s)) for s in sigma])

        best_energy = float(energies.min())
        best_spins = sigma[int(np.argmin(energies))].copy()
        trace = []

        for sweep in range(1, self.n_sweeps + 1):
            order = rng.permutation(n)
            thresholds = rng.random((self.n_replicas, n))
            for pos, i in enumerate(order):
                deltas = 2.0 * sigma[:, i] * fields[:, i]
                accept = (deltas <= 0.0) | (
                    thresholds[:, pos] < np.exp(
                        -np.clip(deltas / ladder, 0, 700)
                    )
                )
                flipped = np.where(accept)[0]
                if flipped.size:
                    sigma[flipped, i] = -sigma[flipped, i]
                    fields[flipped] += np.outer(
                        2.0 * sigma[flipped, i], j[:, i]
                    )
                    energies[flipped] += deltas[flipped]

            if sweep % self.swap_every == 0:
                for a in range(self.n_replicas - 1):
                    b = a + 1
                    log_ratio = (1.0 / ladder[a] - 1.0 / ladder[b]) * (
                        energies[a] - energies[b]
                    )
                    if log_ratio >= 0 or rng.random() < np.exp(log_ratio):
                        sigma[[a, b]] = sigma[[b, a]]
                        fields[[a, b]] = fields[[b, a]]
                        energies[[a, b]] = energies[[b, a]]

            cold = float(energies.min())
            if (sweep - 1) % self.trace_every == 0:
                trace.append(cold)
            if cold < best_energy:
                best_energy = cold
                best_spins = sigma[int(np.argmin(energies))].copy()

        # exact re-evaluation of the recorded best
        best_energy = float(dense.energy(best_spins))
        runtime = time.perf_counter() - start
        return SolveResult(
            spins=best_spins,
            energy=best_energy,
            objective=best_energy + model.offset,
            n_iterations=self.n_sweeps,
            stop_reason="schedule_exhausted",
            energy_trace=trace,
            runtime_seconds=runtime,
            metadata={
                "solver": "parallel_tempering",
                "backend": "dense",
                "dtype": "float64",
                "n_replicas": self.n_replicas,
                "swap_every": self.swap_every,
            },
        )

    def __repr__(self) -> str:
        return (
            f"ParallelTemperingSolver(n_sweeps={self.n_sweeps}, "
            f"n_replicas={self.n_replicas})"
        )
