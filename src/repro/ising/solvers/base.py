"""Shared solver interface, result container, and the result contract.

The solver contract
-------------------
Every :class:`IsingSolver` implementation returns a :class:`SolveResult`
with *uniformly* populated fields — callers (the decomposition
framework, the service layer, the benchmarks, the gateway) rely on this
and never special-case individual solvers:

``spins``
    Best state found, shape ``(N,)``, float64 values in ``{-1.0, +1.0}``.
``energy`` / ``objective``
    Exact float64 re-evaluations of :attr:`spins` (never a drifted
    incremental value): ``objective == energy + model.offset``.
``n_iterations``
    The solver's own unit of work actually executed (Euler steps,
    sweeps, flips, enumerated states) — always > 0 after a solve.
``stop_reason``
    Non-empty string naming why the run ended.  The shared vocabulary is
    ``"max_iterations"`` (iteration cap hit), ``"variance_converged"``
    (dynamic energy-variance stop fired), ``"schedule_exhausted"``
    (an annealing/temperature schedule ran to its end),
    ``"steps_exhausted"`` (a fixed step budget ran out), and
    ``"exhausted"`` (exact enumeration finished).  New solvers should
    reuse these tags where they apply.
``energy_trace``
    Sampled energies (possibly thinned by ``trace_every``); empty when
    the solver does not sample.
``runtime_seconds``
    Wall-clock time of the ``solve`` call, always populated and > 0.
``metadata``
    Uniform execution metadata instead of solver-specific attributes.
    Always contains at least:

    * ``"solver"`` — the registry name of the implementation
      (see :mod:`repro.ising.solvers.registry`);
    * ``"backend"`` — what executed the hot loop (a kernel name such as
      ``"numpy64"``/``"numpy32"``/``"numba"``, or ``"inline"`` /
      ``"dense"`` / ``"enumerate"`` for the non-kernel paths);
    * ``"dtype"`` — the stepping dtype of that hot loop (``"float64"``
      unless a reduced-precision kernel ran);
    * ``"n_replicas"`` — parallel states evolved per run (replicas,
      temperature-ladder size, or independent restarts; 1 when the
      solver is single-trajectory).

    Solvers may add extra keys; they must not remove these four.

Spin/bit encoding
-----------------
:func:`spins_to_binary` and :func:`binary_to_spins` convert between the
solver-native spin encoding and packed-truth-table bits.  The dtypes are
deliberately asymmetric and form a documented, tested contract:

* spins are **float64** ``{-1.0, +1.0}`` — the native dtype of the
  continuous-dynamics solvers, usable in ``model.energy`` without a
  cast;
* bits are **uint8** ``{0, 1}`` — the native dtype of
  :class:`~repro.boolean.truth_table.TruthTable` and ``np.packbits``.

``binary_to_spins`` accepts any integer or bool array whose values are
0/1 (the caller's promise — values outside {0, 1} are undefined) and
always returns float64; ``spins_to_binary`` accepts any real array whose
values are ±1 and always returns uint8.  The round trips are exact in
both directions and for every integer/bool input dtype:

>>> bits = np.array([0, 1, 1, 0], dtype=np.uint64)
>>> (spins_to_binary(binary_to_spins(bits)) == bits).all()
True
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.ising.model import IsingModel

__all__ = ["SolveResult", "IsingSolver", "spins_to_binary", "binary_to_spins"]


def spins_to_binary(spins: np.ndarray) -> np.ndarray:
    """Map spins ``{-1, +1}`` to bits ``{0, 1}`` (``x = (sigma + 1) / 2``).

    Accepts any real dtype with values in ``{-1, +1}``; always returns
    ``uint8`` (the truth-table bit dtype — see the module docstring).
    """
    return ((np.asarray(spins) + 1) // 2).astype(np.uint8)


def binary_to_spins(bits: np.ndarray) -> np.ndarray:
    """Map bits ``{0, 1}`` to spins ``{-1, +1}`` (``sigma = 2x - 1``).

    Accepts any integer or bool dtype with values in ``{0, 1}``; always
    returns ``float64`` (the solver-native spin dtype — see the module
    docstring).  The intermediate arithmetic runs in int64 so every
    integer width, signed or unsigned, round-trips exactly.
    """
    return (2 * np.asarray(bits, dtype=np.int64) - 1).astype(np.float64)


@dataclass
class SolveResult:
    """Outcome of one solver run (see the module-level contract).

    Attributes
    ----------
    spins:
        Best spin vector found, shape ``(N,)``, values in ``{-1, +1}``.
    energy:
        Ising energy of :attr:`spins` (Eq. 1, without offset).
    objective:
        ``energy + model.offset`` — the original COP cost.
    n_iterations:
        Euler steps / sweeps / flips / states actually executed.
    stop_reason:
        Why the run ended; one of the shared tags documented above.
    energy_trace:
        Energies at each sampling point (empty when sampling is off).
    runtime_seconds:
        Wall-clock time of the :meth:`IsingSolver.solve` call.
    metadata:
        Uniform execution metadata; at least ``solver``, ``backend``,
        ``dtype``, ``n_replicas`` (module docstring).
    """

    spins: np.ndarray
    energy: float
    objective: float
    n_iterations: int
    stop_reason: str
    energy_trace: List[float] = field(default_factory=list)
    runtime_seconds: float = 0.0
    metadata: Dict = field(default_factory=dict)

    @property
    def bits(self) -> np.ndarray:
        """Best assignment as ``{0, 1}`` bits."""
        return spins_to_binary(self.spins)

    def __repr__(self) -> str:
        return (
            f"SolveResult(energy={self.energy:.6g}, "
            f"objective={self.objective:.6g}, "
            f"n_iterations={self.n_iterations}, "
            f"stop_reason={self.stop_reason!r})"
        )


class IsingSolver(abc.ABC):
    """A heuristic or exact minimizer of an Ising energy."""

    @abc.abstractmethod
    def solve(
        self,
        model: IsingModel,
        rng: Optional[np.random.Generator] = None,
    ) -> SolveResult:
        """Minimize ``model`` and return the best state found.

        ``rng`` seeds any stochastic element; passing the same generator
        state makes runs reproducible.  The returned
        :class:`SolveResult` must honor the module-level contract
        (uniform ``stop_reason``, ``runtime_seconds``, ``metadata``).
        """
