"""Shared solver interface and result container."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.ising.model import IsingModel

__all__ = ["SolveResult", "IsingSolver", "spins_to_binary", "binary_to_spins"]


def spins_to_binary(spins: np.ndarray) -> np.ndarray:
    """Map spins ``{-1, +1}`` to bits ``{0, 1}`` (``x = (sigma + 1) / 2``)."""
    return ((np.asarray(spins) + 1) // 2).astype(np.uint8)


def binary_to_spins(bits: np.ndarray) -> np.ndarray:
    """Map bits ``{0, 1}`` to spins ``{-1, +1}`` (``sigma = 2x - 1``)."""
    return (2 * np.asarray(bits, dtype=np.int8) - 1).astype(float)


@dataclass
class SolveResult:
    """Outcome of one solver run.

    Attributes
    ----------
    spins:
        Best spin vector found, shape ``(N,)``, values in ``{-1, +1}``.
    energy:
        Ising energy of :attr:`spins` (Eq. 1, without offset).
    objective:
        ``energy + model.offset`` — the original COP cost.
    n_iterations:
        Euler steps / sweeps actually executed.
    stop_reason:
        ``"max_iterations"``, ``"variance_converged"``, ``"exhausted"``,
        or a solver-specific tag.
    energy_trace:
        Energies at each sampling point (empty when sampling is off).
    runtime_seconds:
        Wall-clock time of the :meth:`IsingSolver.solve` call.
    """

    spins: np.ndarray
    energy: float
    objective: float
    n_iterations: int
    stop_reason: str
    energy_trace: List[float] = field(default_factory=list)
    runtime_seconds: float = 0.0

    @property
    def bits(self) -> np.ndarray:
        """Best assignment as ``{0, 1}`` bits."""
        return spins_to_binary(self.spins)

    def __repr__(self) -> str:
        return (
            f"SolveResult(energy={self.energy:.6g}, "
            f"objective={self.objective:.6g}, "
            f"n_iterations={self.n_iterations}, "
            f"stop_reason={self.stop_reason!r})"
        )


class IsingSolver(abc.ABC):
    """A heuristic or exact minimizer of an Ising energy."""

    @abc.abstractmethod
    def solve(
        self,
        model: IsingModel,
        rng: Optional[np.random.Generator] = None,
    ) -> SolveResult:
        """Minimize ``model`` and return the best state found.

        ``rng`` seeds any stochastic element; passing the same generator
        state makes runs reproducible.
        """
