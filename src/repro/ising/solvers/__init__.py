"""Ising solvers: simulated bifurcation variants, annealing, brute force.

All solvers share the :class:`~repro.ising.solvers.base.IsingSolver`
interface — ``solve(model, rng) -> SolveResult`` — so the decomposition
layer and the benchmarks can swap them freely.
"""

from repro.ising.solvers.asb import AdiabaticSBSolver
from repro.ising.solvers.base import IsingSolver, SolveResult
from repro.ising.solvers.brute_force import BruteForceSolver
from repro.ising.solvers.bsb import BallisticSBSolver, SBState
from repro.ising.solvers.dsb import DiscreteSBSolver
from repro.ising.solvers.mean_field import MeanFieldAnnealingSolver
from repro.ising.solvers.parallel_tempering import ParallelTemperingSolver
from repro.ising.solvers.sa import SimulatedAnnealingSolver
from repro.ising.solvers.tabu import TabuSearchSolver

__all__ = [
    "AdiabaticSBSolver",
    "BallisticSBSolver",
    "BruteForceSolver",
    "DiscreteSBSolver",
    "IsingSolver",
    "MeanFieldAnnealingSolver",
    "ParallelTemperingSolver",
    "SBState",
    "SimulatedAnnealingSolver",
    "SolveResult",
    "TabuSearchSolver",
]
