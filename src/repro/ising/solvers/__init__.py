"""Ising solvers: simulated bifurcation variants, annealing, brute force.

All solvers share the :class:`~repro.ising.solvers.base.IsingSolver`
interface — ``solve(model, rng) -> SolveResult`` — so the decomposition
layer and the benchmarks can swap them freely.  Construction by name
goes through :mod:`repro.ising.solvers.registry`
(:func:`make_solver`), which also answers capability questions
(replicas / probes / stop criteria) without constructing anything.
"""

import warnings

from repro.ising.solvers.asb import AdiabaticSBSolver
from repro.ising.solvers.base import IsingSolver, SolveResult
from repro.ising.solvers.brute_force import BruteForceSolver
from repro.ising.solvers.bsb import BallisticSBSolver, SBState
from repro.ising.solvers.dsb import DiscreteSBSolver
from repro.ising.solvers.mean_field import MeanFieldAnnealingSolver
from repro.ising.solvers.parallel_tempering import ParallelTemperingSolver
from repro.ising.solvers.registry import (
    SolverCapabilities,
    SolverInfo,
    make_solver,
    solver_info,
    solver_names,
)
from repro.ising.solvers.sa import SimulatedAnnealingSolver
from repro.ising.solvers.tabu import TabuSearchSolver

__all__ = [
    "AdiabaticSBSolver",
    "BallisticSBSolver",
    "BruteForceSolver",
    "DiscreteSBSolver",
    "IsingSolver",
    "MeanFieldAnnealingSolver",
    "ParallelTemperingSolver",
    "SBState",
    "SimulatedAnnealingSolver",
    "SolveResult",
    "SolverCapabilities",
    "SolverInfo",
    "TabuSearchSolver",
    "make_solver",
    "solver_for_name",
    "solver_info",
    "solver_names",
]


def solver_for_name(name: str, **params) -> IsingSolver:
    """Deprecated pre-registry lookup; use :func:`make_solver`."""
    warnings.warn(
        "solver_for_name is deprecated; use "
        "repro.ising.solvers.registry.make_solver",
        DeprecationWarning,
        stacklevel=2,
    )
    return make_solver(name, **params)
