"""Simulated annealing (Metropolis) over an Ising model.

The sequential-update baseline the paper contrasts SB against
(Kirkpatrick 1984).  One *sweep* proposes a single-spin flip for every
spin in random order; a flip with energy change
``dE_i = 2 sigma_i f_i`` is accepted when ``dE_i <= 0`` or with
probability ``exp(-dE_i / T)``.  Local fields are maintained
incrementally (O(N) per accepted flip), so a sweep costs O(N^2) only in
the worst case of accepting every flip.

The solver densifies structured models once up front
(:meth:`~repro.ising.model.IsingModel.to_dense`).
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.errors import SolverError
from repro.ising.model import IsingModel
from repro.ising.schedules import GeometricCooling
from repro.ising.solvers.base import IsingSolver, SolveResult

__all__ = ["SimulatedAnnealingSolver"]


class SimulatedAnnealingSolver(IsingSolver):
    """Metropolis simulated annealing with geometric cooling.

    Parameters
    ----------
    n_sweeps:
        Number of full-lattice sweeps.
    schedule:
        Cooling schedule; defaults to
        ``GeometricCooling(10.0, 0.01, n_sweeps)`` rescaled by the
        model's typical field magnitude.
    n_restarts:
        Independent annealing runs; the best final state wins.
    auto_scale_temperature:
        When ``True`` (default) and no explicit schedule is given, the
        initial/final temperatures are multiplied by the mean absolute
        local field of a random state, so acceptance rates are sane
        across differently scaled models.
    """

    def __init__(
        self,
        n_sweeps: int = 200,
        schedule: Optional[GeometricCooling] = None,
        n_restarts: int = 1,
        auto_scale_temperature: bool = True,
        trace_every: int = 1,
    ) -> None:
        if n_sweeps <= 0:
            raise SolverError(f"n_sweeps must be positive, got {n_sweeps}")
        if n_restarts <= 0:
            raise SolverError(f"n_restarts must be positive, got {n_restarts}")
        self.n_sweeps = int(n_sweeps)
        self.schedule = schedule
        self.n_restarts = int(n_restarts)
        self.auto_scale_temperature = bool(auto_scale_temperature)
        if trace_every < 1:
            raise SolverError(
                f"trace_every must be >= 1, got {trace_every}"
            )
        self.trace_every = int(trace_every)

    def _resolve_schedule(
        self, dense, rng: np.random.Generator
    ) -> GeometricCooling:
        if self.schedule is not None:
            return self.schedule
        scale = 1.0
        if self.auto_scale_temperature:
            probe = rng.choice([-1.0, 1.0], size=dense.n_spins)
            fields = dense.fields(probe)
            magnitude = float(np.abs(fields).mean())
            if magnitude > 0:
                scale = magnitude
        return GeometricCooling(
            t_initial=10.0 * scale,
            t_final=0.001 * scale,
            n_steps=self.n_sweeps,
        )

    def solve(
        self,
        model: IsingModel,
        rng: Optional[np.random.Generator] = None,
    ) -> SolveResult:
        start = time.perf_counter()
        rng = np.random.default_rng(rng)
        dense = model.to_dense()
        n = dense.n_spins
        h = dense.biases
        j = dense.couplings
        schedule = self._resolve_schedule(dense, rng)

        best_energy = np.inf
        best_spins = None
        trace = []
        total_sweeps = 0

        for _ in range(self.n_restarts):
            sigma = rng.choice([-1.0, 1.0], size=n)
            fields = h + j @ sigma
            energy = float(dense.energy(sigma))
            for sweep in range(self.n_sweeps):
                temperature = schedule(sweep)
                order = rng.permutation(n)
                thresholds = rng.random(n)
                for pos, i in enumerate(order):
                    delta = 2.0 * sigma[i] * fields[i]
                    if delta <= 0.0 or thresholds[pos] < np.exp(
                        -delta / temperature
                    ):
                        sigma[i] = -sigma[i]
                        fields += 2.0 * j[:, i] * sigma[i]
                        energy += delta
                if total_sweeps % self.trace_every == 0:
                    trace.append(energy)
                total_sweeps += 1
            # incremental energy can drift over long runs; recompute exactly
            energy = float(dense.energy(sigma))
            if energy < best_energy:
                best_energy = energy
                best_spins = sigma.copy()

        runtime = time.perf_counter() - start
        return SolveResult(
            spins=best_spins,
            energy=best_energy,
            objective=best_energy + model.offset,
            n_iterations=total_sweeps,
            stop_reason="schedule_exhausted",
            energy_trace=trace,
            runtime_seconds=runtime,
            metadata={
                "solver": "sa",
                "backend": "dense",
                "dtype": "float64",
                "n_replicas": self.n_restarts,
                "n_sweeps": self.n_sweeps,
            },
        )

    def __repr__(self) -> str:
        return (
            f"SimulatedAnnealingSolver(n_sweeps={self.n_sweeps}, "
            f"n_restarts={self.n_restarts})"
        )
