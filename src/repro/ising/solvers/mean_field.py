"""Mean-field annealing (MFA) over Ising models.

The third classic Ising-machine algorithm family next to annealing and
bifurcation (cf. the taxonomy in Zhang et al., ISCAS 2022 — the paper's
reference [13]): relax spins to continuous magnetizations
``m_i in [-1, 1]`` and iterate the self-consistency equations

    m_i <- tanh( f_i(m) / T ),     f = h + J m,

while cooling ``T``.  At high temperature the fixed point is the
paramagnetic ``m = 0``; as ``T`` drops the magnetizations polarize and
``sign(m)`` reads out a (locally optimal) spin state.  Damped updates
(``m <- (1-alpha) m + alpha tanh(...)``) keep the iteration stable.

MFA is deterministic given the initialization, cheap (one mat-vec per
sweep), and a useful contrast to bSB in the solver ablations: both are
continuous relaxations, but MFA follows gradient-like self-consistency
while SB follows Hamiltonian dynamics.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.errors import SolverError
from repro.ising.model import IsingModel
from repro.ising.schedules import GeometricCooling
from repro.ising.solvers.base import IsingSolver, SolveResult

__all__ = ["MeanFieldAnnealingSolver"]


class MeanFieldAnnealingSolver(IsingSolver):
    """Damped mean-field annealing with geometric cooling.

    Parameters
    ----------
    n_sweeps:
        Self-consistency iterations (one field evaluation each).
    damping:
        Update damping ``alpha`` in ``(0, 1]``; 1 is undamped.
    schedule:
        Temperature schedule; ``None`` auto-scales a geometric ladder
        to the model's typical field magnitude.
    n_restarts:
        Independent runs from random initial magnetizations.
    """

    def __init__(
        self,
        n_sweeps: int = 300,
        damping: float = 0.5,
        schedule: Optional[GeometricCooling] = None,
        n_restarts: int = 1,
        trace_every: int = 1,
    ) -> None:
        if n_sweeps <= 0:
            raise SolverError(f"n_sweeps must be positive, got {n_sweeps}")
        if not 0.0 < damping <= 1.0:
            raise SolverError(f"damping must be in (0, 1], got {damping}")
        if n_restarts <= 0:
            raise SolverError(f"n_restarts must be positive, got {n_restarts}")
        self.n_sweeps = int(n_sweeps)
        self.damping = float(damping)
        self.schedule = schedule
        self.n_restarts = int(n_restarts)
        if trace_every < 1:
            raise SolverError(
                f"trace_every must be >= 1, got {trace_every}"
            )
        self.trace_every = int(trace_every)

    def _resolve_schedule(self, model, rng) -> GeometricCooling:
        if self.schedule is not None:
            return self.schedule
        probe = rng.choice([-1.0, 1.0], size=model.n_spins)
        scale = float(np.abs(model.fields(probe)).mean()) or 1.0
        return GeometricCooling(
            t_initial=2.0 * scale,
            t_final=0.01 * scale,
            n_steps=self.n_sweeps,
        )

    def solve(
        self,
        model: IsingModel,
        rng: Optional[np.random.Generator] = None,
    ) -> SolveResult:
        start = time.perf_counter()
        rng = np.random.default_rng(rng)
        schedule = self._resolve_schedule(model, rng)
        n = model.n_spins

        best_energy = np.inf
        best_spins = None
        trace = []
        sweeps_done = 0

        for restart in range(self.n_restarts):
            magnetization = rng.uniform(-0.1, 0.1, n)
            for sweep in range(self.n_sweeps):
                temperature = schedule(sweep)
                fields = model.fields(magnetization)
                target = np.tanh(fields / temperature)
                magnetization = (
                    (1.0 - self.damping) * magnetization
                    + self.damping * target
                )
                sweeps_done += 1
            spins = np.where(magnetization >= 0.0, 1.0, -1.0)
            energy = float(model.energy(spins))
            if restart % self.trace_every == 0:
                trace.append(energy)
            if energy < best_energy:
                best_energy = energy
                best_spins = spins

        runtime = time.perf_counter() - start
        return SolveResult(
            spins=best_spins,
            energy=best_energy,
            objective=best_energy + model.offset,
            n_iterations=sweeps_done,
            stop_reason="schedule_exhausted",
            energy_trace=trace,
            runtime_seconds=runtime,
            metadata={
                "solver": "mean_field",
                "backend": "inline",
                "dtype": "float64",
                "n_replicas": self.n_restarts,
                "damping": self.damping,
            },
        )

    def __repr__(self) -> str:
        return (
            f"MeanFieldAnnealingSolver(n_sweeps={self.n_sweeps}, "
            f"damping={self.damping}, n_restarts={self.n_restarts})"
        )
