"""Unified solver registry: one name→solver construction path.

Before this module existed, every layer that needed a solver built it ad
hoc — the core COP path hard-wired :class:`BallisticSBSolver`, the CLI
and benchmarks kept their own lambda tables, and capability questions
("does this solver take ``n_replicas``? can it carry a probe?") were
answered by reading source.  The registry centralizes all of that:

>>> from repro.ising.solvers.registry import make_solver, solver_names
>>> solver = make_solver("bsb", n_replicas=4)
>>> sorted(solver_names())[:3]
['asb', 'brute_force', 'bsb']

Each entry carries :class:`SolverCapabilities` so callers can validate a
request *before* constructing anything (the gateway and CLI use this to
reject impossible parameter combinations with a clear message instead
of a ``TypeError`` from deep inside a constructor).

Aliases (``"pt"`` for ``"parallel_tempering"``, ``"mfa"`` for
``"mean_field"``) resolve to the same entry; :func:`canonical_name`
returns the primary name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Type

from repro.errors import ConfigurationError
from repro.ising.solvers.asb import AdiabaticSBSolver
from repro.ising.solvers.base import IsingSolver
from repro.ising.solvers.brute_force import BruteForceSolver
from repro.ising.solvers.bsb import BallisticSBSolver
from repro.ising.solvers.dsb import DiscreteSBSolver
from repro.ising.solvers.mean_field import MeanFieldAnnealingSolver
from repro.ising.solvers.parallel_tempering import ParallelTemperingSolver
from repro.ising.solvers.sa import SimulatedAnnealingSolver
from repro.ising.solvers.tabu import TabuSearchSolver

__all__ = [
    "SolverCapabilities",
    "SolverInfo",
    "register_solver",
    "make_solver",
    "solver_names",
    "solver_info",
    "canonical_name",
]


@dataclass(frozen=True)
class SolverCapabilities:
    """What a registered solver supports, decidable without constructing.

    Attributes
    ----------
    supports_replicas:
        Evolves multiple states in parallel (``n_replicas`` /
        temperature ladder / independent restarts).
    supports_probes:
        Accepts a :class:`~repro.obs.probe.SolverProbe` (or consults
        the process-global probe factory) for step-level observability.
    supports_stop_criteria:
        Accepts a :class:`~repro.ising.stop_criteria.StopCriterion`
        (the paper's dynamic energy-variance stop plugs in here).
    exact:
        Returns a true ground state (enumeration), not a heuristic.
    """

    supports_replicas: bool = False
    supports_probes: bool = False
    supports_stop_criteria: bool = False
    exact: bool = False


@dataclass(frozen=True)
class SolverInfo:
    """One registry entry: class, capabilities, human-readable summary."""

    name: str
    cls: Type[IsingSolver]
    capabilities: SolverCapabilities
    summary: str
    aliases: Tuple[str, ...] = ()


_REGISTRY: Dict[str, SolverInfo] = {}
_ALIASES: Dict[str, str] = {}


def register_solver(
    name: str,
    cls: Type[IsingSolver],
    capabilities: SolverCapabilities,
    summary: str,
    aliases: Tuple[str, ...] = (),
) -> SolverInfo:
    """Register a solver class under ``name`` (plus optional aliases).

    Re-registering an existing name replaces the entry — deliberate, so
    downstream code can swap in instrumented or accelerated variants.
    """
    info = SolverInfo(
        name=name,
        cls=cls,
        capabilities=capabilities,
        summary=summary,
        aliases=tuple(aliases),
    )
    _REGISTRY[name] = info
    for alias in aliases:
        _ALIASES[alias] = name
    return info


def canonical_name(name: str) -> str:
    """Resolve ``name`` (primary or alias) to the primary registry name."""
    resolved = _ALIASES.get(name, name)
    if resolved not in _REGISTRY:
        raise ConfigurationError(
            f"unknown solver {name!r}; known solvers: "
            f"{', '.join(solver_names())}"
        )
    return resolved


def solver_names() -> List[str]:
    """Sorted primary names of every registered solver."""
    return sorted(_REGISTRY)


def solver_info(name: str) -> SolverInfo:
    """The registry entry for ``name`` (primary or alias)."""
    return _REGISTRY[canonical_name(name)]


def make_solver(name: str, **params) -> IsingSolver:
    """Construct the solver registered under ``name`` with ``params``.

    Unknown names raise :class:`~repro.errors.ConfigurationError`
    listing the registry; constructor rejections (an unknown or invalid
    parameter) are re-raised as :class:`ConfigurationError` naming the
    solver, so callers get one error type for "bad solver request".
    """
    info = solver_info(name)
    try:
        return info.cls(**params)
    except TypeError as exc:
        raise ConfigurationError(
            f"bad parameters for solver {info.name!r}: {exc}"
        ) from exc


register_solver(
    "bsb",
    BallisticSBSolver,
    SolverCapabilities(
        supports_replicas=True,
        supports_probes=True,
        supports_stop_criteria=True,
    ),
    "ballistic simulated bifurcation (the paper's core solver)",
)
register_solver(
    "asb",
    AdiabaticSBSolver,
    SolverCapabilities(
        supports_replicas=True, supports_stop_criteria=True
    ),
    "adiabatic (Kerr-nonlinear) simulated bifurcation",
)
register_solver(
    "dsb",
    DiscreteSBSolver,
    SolverCapabilities(
        supports_replicas=True, supports_stop_criteria=True
    ),
    "discrete simulated bifurcation",
)
register_solver(
    "sa",
    SimulatedAnnealingSolver,
    SolverCapabilities(supports_replicas=True),
    "Metropolis simulated annealing with geometric cooling",
)
register_solver(
    "parallel_tempering",
    ParallelTemperingSolver,
    SolverCapabilities(supports_replicas=True),
    "replica-exchange Metropolis over a temperature ladder",
    aliases=("pt",),
)
register_solver(
    "mean_field",
    MeanFieldAnnealingSolver,
    SolverCapabilities(supports_replicas=True),
    "damped mean-field annealing",
    aliases=("mfa",),
)
register_solver(
    "tabu",
    TabuSearchSolver,
    SolverCapabilities(supports_replicas=True),
    "single-flip tabu search with aspiration",
)
register_solver(
    "brute_force",
    BruteForceSolver,
    SolverCapabilities(exact=True),
    "exact ground states by exhaustive enumeration (N <= 24)",
)
