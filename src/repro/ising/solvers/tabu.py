"""Tabu search over Ising spin states.

A deterministic local-search baseline complementing the stochastic
solvers: each step flips the spin with the best (possibly uphill)
energy change among non-tabu moves, then marks it tabu for ``tenure``
steps.  Aspiration: a tabu move is allowed when it would beat the best
energy seen.  Local fields are maintained incrementally, so one step
costs O(N).

Tabu search is a standard entry in Ising-machine solver comparisons
(see Zhang et al., ISCAS 2022 — reference [13] of the paper); it is
included for the solver-zoo ablations and as another exactness
cross-check against brute force on small instances.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.errors import SolverError
from repro.ising.model import IsingModel
from repro.ising.solvers.base import IsingSolver, SolveResult

__all__ = ["TabuSearchSolver"]


class TabuSearchSolver(IsingSolver):
    """Single-flip tabu search with aspiration.

    Parameters
    ----------
    n_steps:
        Total flips performed per restart.
    tenure:
        Steps a flipped spin stays tabu; ``None`` picks ``max(7, N//10)``.
    n_restarts:
        Independent restarts from random states; best result wins.
    """

    def __init__(
        self,
        n_steps: int = 2000,
        tenure: Optional[int] = None,
        n_restarts: int = 1,
        trace_every: int = 1,
    ) -> None:
        if n_steps <= 0:
            raise SolverError(f"n_steps must be positive, got {n_steps}")
        if tenure is not None and tenure < 1:
            raise SolverError(f"tenure must be >= 1, got {tenure}")
        if n_restarts <= 0:
            raise SolverError(f"n_restarts must be positive, got {n_restarts}")
        self.n_steps = int(n_steps)
        self.tenure = tenure
        self.n_restarts = int(n_restarts)
        if trace_every < 1:
            raise SolverError(
                f"trace_every must be >= 1, got {trace_every}"
            )
        self.trace_every = int(trace_every)

    def solve(
        self,
        model: IsingModel,
        rng: Optional[np.random.Generator] = None,
    ) -> SolveResult:
        start = time.perf_counter()
        rng = np.random.default_rng(rng)
        dense = model.to_dense()
        n = dense.n_spins
        h, j = dense.biases, dense.couplings
        tenure = self.tenure if self.tenure is not None else max(7, n // 10)

        best_energy = np.inf
        best_spins = None
        trace = []
        steps_done = 0

        for _ in range(self.n_restarts):
            sigma = rng.choice([-1.0, 1.0], size=n)
            fields = h + j @ sigma
            energy = float(dense.energy(sigma))
            chain_best = energy
            chain_best_spins = sigma.copy()
            expires = np.zeros(n, dtype=np.int64)  # step at which tabu ends

            for step in range(1, self.n_steps + 1):
                deltas = 2.0 * sigma * fields
                allowed = expires <= step
                # aspiration: allow tabu moves that beat the chain best
                aspiring = (energy + deltas) < chain_best - 1e-12
                candidates = allowed | aspiring
                if not candidates.any():
                    candidates = np.ones(n, dtype=bool)
                masked = np.where(candidates, deltas, np.inf)
                i = int(np.argmin(masked))
                sigma[i] = -sigma[i]
                fields += 2.0 * j[:, i] * sigma[i]
                energy += float(deltas[i])
                expires[i] = step + tenure
                if energy < chain_best - 1e-12:
                    chain_best = energy
                    chain_best_spins = sigma.copy()
                if (steps_done + step - 1) % self.trace_every == 0:
                    trace.append(energy)
            steps_done += self.n_steps

            # exact re-evaluation guards against float drift
            chain_best = float(dense.energy(chain_best_spins))
            if chain_best < best_energy:
                best_energy = chain_best
                best_spins = chain_best_spins

        runtime = time.perf_counter() - start
        return SolveResult(
            spins=best_spins,
            energy=best_energy,
            objective=best_energy + model.offset,
            n_iterations=steps_done,
            stop_reason="steps_exhausted",
            energy_trace=trace,
            runtime_seconds=runtime,
            metadata={
                "solver": "tabu",
                "backend": "dense",
                "dtype": "float64",
                "n_replicas": self.n_restarts,
                "tenure": tenure,
            },
        )

    def __repr__(self) -> str:
        return (
            f"TabuSearchSolver(n_steps={self.n_steps}, "
            f"tenure={self.tenure}, n_restarts={self.n_restarts})"
        )
