"""Exact ground states by exhaustive enumeration (test oracle).

Enumerates all ``2^N`` spin states in vectorized chunks.  Guarded to
``N <= 24`` — beyond that the caller almost certainly wanted a heuristic
solver.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.errors import SolverError
from repro.ising.model import IsingModel
from repro.ising.solvers.base import IsingSolver, SolveResult

__all__ = ["BruteForceSolver"]

_MAX_SPINS = 24


class BruteForceSolver(IsingSolver):
    """Exhaustively enumerate spin states and return a true ground state.

    Parameters
    ----------
    chunk_bits:
        States are evaluated ``2**chunk_bits`` at a time to bound memory.
    """

    def __init__(self, chunk_bits: int = 16) -> None:
        if not 1 <= chunk_bits <= 22:
            raise SolverError(
                f"chunk_bits must be in [1, 22], got {chunk_bits}"
            )
        self.chunk_bits = int(chunk_bits)

    def solve(
        self,
        model: IsingModel,
        rng: Optional[np.random.Generator] = None,
    ) -> SolveResult:
        start = time.perf_counter()
        n = model.n_spins
        if n > _MAX_SPINS:
            raise SolverError(
                f"brute force supports at most {_MAX_SPINS} spins, got {n}"
            )
        total = 1 << n
        chunk = 1 << min(self.chunk_bits, n)
        shifts = np.arange(n, dtype=np.int64)

        best_energy = np.inf
        best_spins = None
        for base in range(0, total, chunk):
            codes = np.arange(base, min(base + chunk, total), dtype=np.int64)
            bits = (codes[:, np.newaxis] >> shifts) & 1
            spins = 2.0 * bits - 1.0
            energies = np.atleast_1d(model.energy(spins))
            idx = int(np.argmin(energies))
            if float(energies[idx]) < best_energy:
                best_energy = float(energies[idx])
                best_spins = spins[idx].copy()

        runtime = time.perf_counter() - start
        return SolveResult(
            spins=best_spins,
            energy=best_energy,
            objective=best_energy + model.offset,
            n_iterations=total,
            stop_reason="exhausted",
            energy_trace=[],
            runtime_seconds=runtime,
            metadata={
                "solver": "brute_force",
                "backend": "enumerate",
                "dtype": "float64",
                "n_replicas": 1,
                "chunk_bits": self.chunk_bits,
            },
        )

    def __repr__(self) -> str:
        return f"BruteForceSolver(chunk_bits={self.chunk_bits})"
