"""Adiabatic simulated bifurcation (aSB), Goto et al. 2019.

The original SB variant keeps the Kerr nonlinearity ``x_i^3`` in the
potential instead of hard walls:

    y_i += dt * ( -(x_i^2 + a0 - a(t)) * x_i + c0 * f_i(x) )
    x_i += dt * a0 * y_i

aSB is included for ablations against bSB (the paper builds on bSB
because of its better solution quality / speed trade-off); it shares the
stop-criterion machinery.  Positions are softly bounded: values beyond
``position_bound`` are clamped with momentum zeroed, which stabilizes the
explicit Euler integration without changing the adiabatic dynamics in
the region of interest.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.errors import SolverError
from repro.ising.model import IsingModel
from repro.ising.schedules import LinearPump
from repro.ising.solvers.base import IsingSolver, SolveResult
from repro.ising.stop_criteria import FixedIterations, StopCriterion

__all__ = ["AdiabaticSBSolver"]


class AdiabaticSBSolver(IsingSolver):
    """Adiabatic (Kerr-nonlinear) simulated bifurcation.

    Parameters mirror
    :class:`~repro.ising.solvers.bsb.BallisticSBSolver`; see there.
    """

    def __init__(
        self,
        stop: Optional[StopCriterion] = None,
        dt: float = 0.1,
        a0: float = 1.0,
        coupling_strength: Optional[float] = None,
        n_replicas: int = 1,
        pump: Optional[LinearPump] = None,
        initial_amplitude: float = 0.1,
        position_bound: float = 3.0,
        sample_every_default: int = 50,
        trace_every: int = 1,
    ) -> None:
        if dt <= 0:
            raise SolverError(f"dt must be positive, got {dt}")
        if n_replicas <= 0:
            raise SolverError(f"n_replicas must be positive, got {n_replicas}")
        if position_bound <= 1.0:
            raise SolverError(
                f"position_bound must exceed 1, got {position_bound}"
            )
        self.stop = stop if stop is not None else FixedIterations(1000)
        self.dt = float(dt)
        self.a0 = float(a0)
        self.coupling_strength = coupling_strength
        self.n_replicas = int(n_replicas)
        self.pump = pump
        self.initial_amplitude = float(initial_amplitude)
        self.position_bound = float(position_bound)
        self.sample_every_default = int(sample_every_default)
        if trace_every < 1:
            raise SolverError(
                f"trace_every must be >= 1, got {trace_every}"
            )
        self.trace_every = int(trace_every)

    def _resolve_c0(self, model: IsingModel) -> float:
        if self.coupling_strength is not None:
            return float(self.coupling_strength)
        rms = model.coupling_rms()
        if rms <= 0.0:
            return 1.0
        return 0.5 / (rms * np.sqrt(model.n_spins))

    def solve(
        self,
        model: IsingModel,
        rng: Optional[np.random.Generator] = None,
    ) -> SolveResult:
        start = time.perf_counter()
        rng = np.random.default_rng(rng)
        n = model.n_spins
        c0 = self._resolve_c0(model)
        stop = self.stop
        stop.reset()
        max_iterations = stop.max_iterations
        pump = self.pump or LinearPump(self.a0, max_iterations)
        sample_every = stop.sample_every or self.sample_every_default

        x = rng.uniform(
            -self.initial_amplitude, self.initial_amplitude,
            (self.n_replicas, n),
        )
        y = rng.uniform(
            -self.initial_amplitude, self.initial_amplitude,
            (self.n_replicas, n),
        )

        best_energy = np.inf
        best_spins = np.where(x[0] >= 0, 1.0, -1.0)
        trace = []
        n_samples = 0
        stop_reason = "max_iterations"
        iteration = 0

        for iteration in range(1, max_iterations + 1):
            a_t = pump(iteration)
            y += self.dt * (
                -(x**2 + self.a0 - a_t) * x + c0 * model.fields(x)
            )
            x += self.dt * self.a0 * y
            runaway = np.abs(x) > self.position_bound
            if runaway.any():
                np.clip(x, -self.position_bound, self.position_bound, out=x)
                y[runaway] = 0.0

            if iteration % sample_every == 0:
                spins = np.where(x >= 0, 1.0, -1.0)
                energies = np.atleast_1d(model.energy(spins))
                idx = int(np.argmin(energies))
                current = float(energies[idx])
                if current < best_energy:
                    best_energy = current
                    best_spins = spins[idx].copy()
                if n_samples % self.trace_every == 0:
                    trace.append(current)
                n_samples += 1
                if stop.wants_sample(iteration) and stop.observe(current):
                    stop_reason = "variance_converged"
                    break

        spins = np.where(x >= 0, 1.0, -1.0)
        energies = np.atleast_1d(model.energy(spins))
        idx = int(np.argmin(energies))
        if float(energies[idx]) < best_energy:
            best_energy = float(energies[idx])
            best_spins = spins[idx].copy()

        runtime = time.perf_counter() - start
        return SolveResult(
            spins=best_spins,
            energy=best_energy,
            objective=best_energy + model.offset,
            n_iterations=iteration,
            stop_reason=stop_reason,
            energy_trace=trace,
            runtime_seconds=runtime,
            metadata={
                "solver": "asb",
                "backend": "inline",
                "dtype": "float64",
                "n_replicas": self.n_replicas,
            },
        )

    def __repr__(self) -> str:
        return (
            f"AdiabaticSBSolver(stop={self.stop!r}, dt={self.dt}, "
            f"a0={self.a0}, n_replicas={self.n_replicas})"
        )
