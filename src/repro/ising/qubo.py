"""QUBO models and loss-free conversions to and from the Ising form.

A quadratic unconstrained binary optimization (QUBO) instance minimizes

    f(x) = x^T Q x + q^T x + const,   x in {0, 1}^N,

with ``Q`` strictly upper triangular (diagonal terms fold into ``q``
because ``x_i^2 = x_i``).  The linear change of variables
``x_i = (sigma_i + 1) / 2`` converts a QUBO to an Ising model (Eq. 1)
and back; both directions preserve the objective value exactly, which
the test suite verifies by round-tripping random instances.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionError
from repro.ising.model import DenseIsingModel

__all__ = ["QuboModel", "qubo_to_ising", "ising_to_qubo"]


class QuboModel:
    """A QUBO instance ``min x^T Q x + q^T x + const`` over binary x.

    Parameters
    ----------
    quadratic:
        ``(N, N)`` coefficient matrix.  Any square matrix is accepted;
        it is normalized internally to strictly-upper-triangular form
        (``Q[i,j] + Q[j,i]`` merges into one term, diagonal folds into
        the linear part).
    linear:
        ``(N,)`` coefficients ``q``.
    constant:
        Additive constant.
    """

    def __init__(
        self,
        quadratic: np.ndarray,
        linear: np.ndarray,
        constant: float = 0.0,
    ) -> None:
        q_mat = np.asarray(quadratic, dtype=float)
        q_vec = np.asarray(linear, dtype=float)
        if q_vec.ndim != 1:
            raise DimensionError(f"linear must be 1-D, got ndim={q_vec.ndim}")
        n = q_vec.shape[0]
        if q_mat.shape != (n, n):
            raise DimensionError(
                f"quadratic must have shape ({n}, {n}), got {q_mat.shape}"
            )
        merged = np.triu(q_mat, 1) + np.tril(q_mat, -1).T
        diag = np.diag(q_mat)
        self._quadratic = np.ascontiguousarray(merged)
        self._linear = np.ascontiguousarray(q_vec + diag)
        self._quadratic.setflags(write=False)
        self._linear.setflags(write=False)
        self.constant = float(constant)

    @property
    def n_variables(self) -> int:
        """Number of binary variables ``N``."""
        return int(self._linear.shape[0])

    @property
    def quadratic(self) -> np.ndarray:
        """Strictly-upper-triangular quadratic coefficients."""
        return self._quadratic

    @property
    def linear(self) -> np.ndarray:
        """Linear coefficients (diagonal already folded in)."""
        return self._linear

    def value(self, x: np.ndarray) -> np.ndarray:
        """Objective value(s) for binary assignment(s), ``shape (..., N)``."""
        arr = np.asarray(x, dtype=float)
        if arr.shape[-1] != self.n_variables:
            raise DimensionError(
                f"assignment last axis must be {self.n_variables}, "
                f"got shape {arr.shape}"
            )
        quad = np.einsum("...i,ij,...j->...", arr, self._quadratic, arr)
        lin = arr @ self._linear
        result = quad + lin + self.constant
        if arr.ndim == 1:
            return np.float64(result)
        return result

    def __repr__(self) -> str:
        return (
            f"QuboModel(n_variables={self.n_variables}, "
            f"constant={self.constant})"
        )


def qubo_to_ising(qubo: QuboModel) -> DenseIsingModel:
    """Convert a QUBO to an Ising model with matching objective.

    For every binary ``x`` and the corresponding spins
    ``sigma = 2x - 1``, ``ising.objective(sigma) == qubo.value(x)``.
    """
    upper = qubo.quadratic
    sym = (upper + upper.T) / 4.0  # J contribution before sign
    n = qubo.n_variables
    # E_qubo = sum_{i<j} Q_ij x_i x_j + sum_i q_i x_i + const, x=(s+1)/2
    # x_i x_j = (s_i s_j + s_i + s_j + 1)/4
    h = -(qubo.linear / 2.0 + (upper.sum(axis=1) + upper.sum(axis=0)) / 4.0)
    j = -sym
    np.fill_diagonal(j, 0.0)
    offset = float(
        qubo.constant + qubo.linear.sum() / 2.0 + upper.sum() / 4.0
    )
    # objective = energy + offset must equal the QUBO value:
    # energy = -h.s - 1/2 s^T J s reproduces the variable terms above.
    if n == 0:
        raise DimensionError("cannot convert an empty QUBO")
    return DenseIsingModel(h, j, offset)


def ising_to_qubo(model: DenseIsingModel) -> QuboModel:
    """Convert an Ising model to a QUBO with matching objective.

    For every spin vector ``sigma`` and binary ``x = (sigma + 1) / 2``,
    ``qubo.value(x) == model.objective(sigma)``.
    """
    h = model.biases
    j = model.couplings
    # E = -h.s - 1/2 s^T J s, s = 2x - 1
    # s_i s_j = 4 x_i x_j - 2 x_i - 2 x_j + 1
    quadratic = -2.0 * np.triu(j, 1) * 2.0  # -1/2 * J_ij * 2(sym) * 4
    linear = -2.0 * h + 2.0 * j.sum(axis=1)
    constant = float(model.offset + h.sum() - 0.5 * j.sum())
    return QuboModel(quadratic, linear, constant)
