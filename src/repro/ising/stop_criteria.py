"""Stop criteria for iterative Ising solvers.

Section 3.3.1 of the paper replaces the usual fixed iteration count with
a *dynamic stop*: sample the system energy every ``f`` iterations, keep
the last ``s`` samples, and stop once their variance drops below a
threshold ``eps`` — i.e. once the oscillator network has settled.

:class:`FixedIterations` reproduces the conventional baseline;
:class:`EnergyVarianceStop` implements the paper's criterion with the
published defaults (``f = s = 20`` for n = 9 instances, ``f = s = 10``
for n = 16, ``eps = 1e-8``).
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Deque, Optional

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["StopCriterion", "FixedIterations", "EnergyVarianceStop"]


class StopCriterion(abc.ABC):
    """Decides when an iterative solver should halt.

    A criterion is a small state machine: the solver calls :meth:`reset`
    once per run, samples the energy every :attr:`sample_every`
    iterations (``None`` means "never sample"), and feeds each sample to
    :meth:`observe`, which returns ``True`` to request a stop.  The
    solver always stops at :attr:`max_iterations` regardless.
    """

    #: hard iteration cap
    max_iterations: int
    #: sampling period in iterations; ``None`` disables energy sampling
    sample_every: Optional[int]

    @abc.abstractmethod
    def reset(self) -> None:
        """Clear internal state before a new run."""

    @abc.abstractmethod
    def observe(self, energy: float) -> bool:
        """Record one energy sample; return ``True`` to stop now."""

    def wants_sample(self, iteration: int) -> bool:
        """Whether iteration ``iteration`` (1-based) is a sampling point."""
        if self.sample_every is None:
            return False
        return iteration % self.sample_every == 0

    # -- checkpointing -------------------------------------------------
    #
    # Criteria are tiny state machines, so crash-safe solver resume
    # (repro.ising.solvers.bsb.SBCheckpoint) must carry their state:
    # dropping a half-full variance window would make a resumed run
    # stop at a different iteration than the uninterrupted one.

    def state_dict(self) -> dict:
        """JSON-safe snapshot of the mutable state (default: stateless)."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (after :meth:`reset`)."""
        return None


class FixedIterations(StopCriterion):
    """Run exactly ``n_iterations`` Euler steps (the conventional scheme).

    Energy may still be sampled for tracing via ``sample_every``, but the
    samples never trigger an early stop.
    """

    def __init__(
        self, n_iterations: int, sample_every: Optional[int] = None
    ) -> None:
        if n_iterations <= 0:
            raise ConfigurationError(
                f"n_iterations must be positive, got {n_iterations}"
            )
        if sample_every is not None and sample_every <= 0:
            raise ConfigurationError(
                f"sample_every must be positive, got {sample_every}"
            )
        self.max_iterations = int(n_iterations)
        self.sample_every = sample_every

    def reset(self) -> None:  # noqa: D102 - trivial
        return None

    def observe(self, energy: float) -> bool:  # noqa: D102 - trivial
        return False

    def __repr__(self) -> str:
        return f"FixedIterations(n_iterations={self.max_iterations})"


class EnergyVarianceStop(StopCriterion):
    """The paper's dynamic stop criterion (Section 3.3.1).

    Parameters
    ----------
    sample_every:
        ``f`` — energy sampling period in Euler iterations.
    window:
        ``s`` — number of most recent samples over which the variance is
        computed.
    threshold:
        ``eps`` — stop once ``Var(last s samples) < eps``.  The paper
        uses ``1e-8``.
    max_iterations:
        Safety cap in case the system never settles.
    min_iterations:
        Do not stop before this many iterations even if the variance is
        small (guards against a flat early transient).
    """

    def __init__(
        self,
        sample_every: int = 20,
        window: int = 20,
        threshold: float = 1e-8,
        max_iterations: int = 10_000,
        min_iterations: int = 0,
    ) -> None:
        if sample_every <= 0:
            raise ConfigurationError(
                f"sample_every must be positive, got {sample_every}"
            )
        if window < 2:
            raise ConfigurationError(f"window must be >= 2, got {window}")
        if threshold < 0:
            raise ConfigurationError(
                f"threshold must be non-negative, got {threshold}"
            )
        if max_iterations <= 0:
            raise ConfigurationError(
                f"max_iterations must be positive, got {max_iterations}"
            )
        self.sample_every = int(sample_every)
        self.window = int(window)
        self.threshold = float(threshold)
        self.max_iterations = int(max_iterations)
        self.min_iterations = int(min_iterations)
        self._samples: Deque[float] = deque(maxlen=self.window)
        self._n_seen = 0

    def reset(self) -> None:
        self._samples.clear()
        self._n_seen = 0

    def state_dict(self) -> dict:
        return {
            "samples": [float(s) for s in self._samples],
            "n_seen": self._n_seen,
        }

    def load_state_dict(self, state: dict) -> None:
        self._samples.clear()
        self._samples.extend(float(s) for s in state.get("samples", ()))
        self._n_seen = int(state.get("n_seen", 0))

    def observe(self, energy: float) -> bool:
        self._samples.append(float(energy))
        self._n_seen += 1
        if len(self._samples) < self.window:
            return False
        if self._n_seen * self.sample_every < self.min_iterations:
            return False
        return bool(np.var(np.asarray(self._samples)) < self.threshold)

    @property
    def last_variance(self) -> Optional[float]:
        """Variance of the current window, or ``None`` if not yet full."""
        if len(self._samples) < self.window:
            return None
        return float(np.var(np.asarray(self._samples)))

    def __repr__(self) -> str:
        return (
            f"EnergyVarianceStop(sample_every={self.sample_every}, "
            f"window={self.window}, threshold={self.threshold}, "
            f"max_iterations={self.max_iterations})"
        )
