"""Ising-model substrate: energy models, QUBO conversions, and solvers.

The Ising model (Eq. 1 of the paper) assigns an energy

    E(sigma) = - sum_i h_i sigma_i - (1/2) sum_ij J_ij sigma_i sigma_j

to spin states ``sigma in {-1, +1}^N``.  This package provides:

* :class:`~repro.ising.model.DenseIsingModel` — explicit ``(h, J)``;
* :class:`~repro.ising.structured.BipartiteDecompositionModel` — the
  structured model produced by the column-based core COP, whose coupling
  matrix is bipartite between the pattern spins and the type spins and
  therefore admits an ``O(r*c)`` field computation;
* QUBO conversions (:mod:`repro.ising.qubo`);
* solvers: ballistic/adiabatic/discrete simulated bifurcation, simulated
  annealing, and exact brute force (:mod:`repro.ising.solvers`);
* the paper's dynamic stop criterion (:mod:`repro.ising.stop_criteria`);
* a small zoo of classic problem formulations for solver validation
  (:mod:`repro.ising.problems`).
"""

from repro.ising.model import DenseIsingModel, IsingModel
from repro.ising.polynomial import PolynomialIsingModel
from repro.ising.problems import max_cut_model, number_partitioning_model
from repro.ising.qubo import QuboModel, ising_to_qubo, qubo_to_ising
from repro.ising.solvers import (
    AdiabaticSBSolver,
    BallisticSBSolver,
    BruteForceSolver,
    DiscreteSBSolver,
    SimulatedAnnealingSolver,
    SolveResult,
)
from repro.ising.stop_criteria import (
    EnergyVarianceStop,
    FixedIterations,
    StopCriterion,
)
from repro.ising.structured import BipartiteDecompositionModel

__all__ = [
    "AdiabaticSBSolver",
    "BallisticSBSolver",
    "BipartiteDecompositionModel",
    "BruteForceSolver",
    "DenseIsingModel",
    "DiscreteSBSolver",
    "EnergyVarianceStop",
    "FixedIterations",
    "IsingModel",
    "PolynomialIsingModel",
    "QuboModel",
    "SimulatedAnnealingSolver",
    "SolveResult",
    "StopCriterion",
    "ising_to_qubo",
    "max_cut_model",
    "number_partitioning_model",
    "qubo_to_ising",
]
