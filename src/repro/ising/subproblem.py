"""Exact clamped subproblems of a dense Ising model.

The partition-and-stitch coordinator (:mod:`repro.partition`) fixes
every spin outside one block at its current value and solves the block
alone.  Folding the clamped spins into the block's biases and offset
keeps the *full-model* objective exactly representable on the
subproblem:

.. math::

    E(\\sigma_K, s_C) = -\\big[(h_K + J_{KC} s_C)\\cdot\\sigma_K
        + \\tfrac12 \\sigma_K^T J_{KK} \\sigma_K\\big]
        - h_C\\cdot s_C - \\tfrac12 s_C^T J_{CC} s_C

so with ``h' = h_K + J_{KC} s_C``, ``J' = J_{KK}`` and
``offset' = offset - h_C·s_C - ½ s_C^T J_CC s_C`` the subproblem's
``objective(σ_K)`` equals the parent's ``objective`` of the assembled
full state — *exactly*, in float64, which is what lets the stitcher
compare boundary rounds without re-deriving anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import DimensionError
from repro.ising.model import DenseIsingModel, IsingModel

__all__ = ["SubProblem", "extract_subproblem", "assemble_state"]


@dataclass(frozen=True)
class SubProblem:
    """One clamped block: its folded model plus parent spin positions.

    Attributes
    ----------
    model:
        The block's dense model with clamp-folded biases and offset.
    indices:
        Sorted parent positions of the block's spins; ``model`` spin
        ``i`` is parent spin ``indices[i]``.
    """

    model: DenseIsingModel
    indices: np.ndarray


def extract_subproblem(
    model: IsingModel,
    block: Sequence[int],
    clamped_state: np.ndarray,
) -> SubProblem:
    """Fold everything outside ``block`` (at ``clamped_state``) away.

    ``clamped_state`` is a full ``(n_spins,)`` ±1 vector; only its
    values *outside* ``block`` are read.  See the module docstring for
    the energy identity the returned model satisfies.
    """
    dense = (
        model if isinstance(model, DenseIsingModel) else model.to_dense()
    )
    n = dense.n_spins
    keep = np.unique(np.asarray(block, dtype=np.intp))
    if keep.size == 0:
        raise DimensionError("subproblem block must be non-empty")
    if keep.size != len(block):
        raise DimensionError("subproblem block has duplicate spins")
    if keep[0] < 0 or keep[-1] >= n:
        raise DimensionError(
            f"subproblem block indices must lie in [0, {n}), got "
            f"[{keep[0]}, {keep[-1]}]"
        )
    state = np.asarray(clamped_state, dtype=float).ravel()
    if state.shape != (n,):
        raise DimensionError(
            f"clamped state must have shape ({n},), got {state.shape}"
        )
    mask = np.zeros(n, dtype=bool)
    mask[keep] = True
    comp = np.flatnonzero(~mask)
    h = dense.biases
    j = dense.couplings
    s_c = state[comp]
    sub_biases = h[keep] + j[np.ix_(keep, comp)] @ s_c
    sub_couplings = np.ascontiguousarray(j[np.ix_(keep, keep)])
    sub_offset = (
        dense.offset
        - float(h[comp] @ s_c)
        - 0.5 * float(s_c @ (j[np.ix_(comp, comp)] @ s_c))
    )
    return SubProblem(
        model=DenseIsingModel(sub_biases, sub_couplings, sub_offset),
        indices=keep,
    )


def assemble_state(
    base_state: np.ndarray,
    indices: np.ndarray,
    sub_spins: np.ndarray,
) -> np.ndarray:
    """A copy of ``base_state`` with ``sub_spins`` written at ``indices``."""
    state = np.asarray(base_state, dtype=float).copy()
    spins = np.asarray(sub_spins, dtype=float).ravel()
    if spins.shape != (len(indices),):
        raise DimensionError(
            f"subproblem returned {spins.shape[0]} spins for a block "
            f"of {len(indices)}"
        )
    state[np.asarray(indices, dtype=np.intp)] = spins
    return state
