"""Ising energy models.

The abstract :class:`IsingModel` fixes the interface every solver relies
on: the number of spins, the energy of a spin state (Eq. 1), the *local
field* vector (the negative energy gradient with respect to each spin,
which drives both simulated bifurcation and simulated annealing), and an
additive ``offset`` that restores the constant terms dropped when a COP
objective is rewritten as an Ising energy — so ``objective(spins)``
always equals the original COP cost (ER or MED contribution).

:class:`DenseIsingModel` is the explicit ``(h, J)`` realization; the
structured model used by the core COP lives in
:mod:`repro.ising.structured`.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.errors import DimensionError

__all__ = ["IsingModel", "DenseIsingModel"]


class IsingModel(abc.ABC):
    """Interface of a second-order Ising energy (Eq. 1) with offset.

    Spin arrays use the convention ``shape (..., N)`` with values in
    ``{-1, +1}`` for energies; solvers may also pass *continuous* position
    vectors to :meth:`fields` (simulated bifurcation does).
    """

    #: additive constant restoring the original COP objective
    offset: float = 0.0

    @property
    @abc.abstractmethod
    def n_spins(self) -> int:
        """Number of spins ``N``."""

    @abc.abstractmethod
    def energy(self, spins: np.ndarray) -> np.ndarray:
        """Ising energy of one spin vector or a batch (``shape (..., N)``).

        Returns a scalar for 1-D input, else an array over leading axes.
        """

    @abc.abstractmethod
    def fields(self, x: np.ndarray) -> np.ndarray:
        """Local fields ``f = h + J @ x`` (``-dE/dsigma``), same shape as x.

        ``x`` may be continuous; simulated bifurcation feeds oscillator
        positions here.
        """

    @abc.abstractmethod
    def to_dense(self) -> "DenseIsingModel":
        """Materialize ``(h, J)`` explicitly (used by SA and brute force)."""

    # -- concrete helpers --------------------------------------------------

    def objective(self, spins: np.ndarray) -> np.ndarray:
        """Original COP cost: ``energy(spins) + offset``."""
        return self.energy(spins) + self.offset

    def coupling_rms(self) -> float:
        """Root-mean-square coupling strength over ordered spin pairs.

        Used to auto-scale the simulated-bifurcation coupling constant
        ``c0 = 0.5 / (rms * sqrt(N))`` following Goto et al.

        .. warning::
           This default **materializes the dense** ``(N, N)`` coupling
           matrix via :meth:`to_dense` just to compute one scalar —
           ``O(N^2)`` memory and time.  Structured models on hot paths
           must override it with a closed form:
           :class:`~repro.ising.structured.BipartiteDecompositionModel`
           and the stacked batch dynamics both do, and the kernel
           equivalence tests assert those paths never fall through to
           this implementation.
        """
        dense = self.to_dense()
        n = dense.n_spins
        if n < 2:
            return 0.0
        total = float((dense.couplings**2).sum())
        return float(np.sqrt(total / (n * (n - 1))))

    def validate_spins(self, spins: np.ndarray) -> np.ndarray:
        """Check shape/values of a spin array and return it as float."""
        arr = np.asarray(spins, dtype=float)
        if arr.shape[-1] != self.n_spins:
            raise DimensionError(
                f"spin array last axis must be {self.n_spins}, "
                f"got shape {arr.shape}"
            )
        if not np.isin(np.unique(arr), (-1.0, 1.0)).all():
            raise DimensionError("spins must be -1/+1")
        return arr


class DenseIsingModel(IsingModel):
    """Explicit Ising model with bias vector ``h`` and coupling matrix ``J``.

    Parameters
    ----------
    biases:
        ``h``, shape ``(N,)``.
    couplings:
        ``J``, shape ``(N, N)``, symmetric with zero diagonal.
    offset:
        Constant added by :meth:`objective`.

    Examples
    --------
    >>> import numpy as np
    >>> model = DenseIsingModel(np.zeros(2), np.array([[0., 1.], [1., 0.]]))
    >>> float(model.energy(np.array([1, 1])))
    -1.0
    """

    def __init__(
        self,
        biases: np.ndarray,
        couplings: np.ndarray,
        offset: float = 0.0,
    ) -> None:
        h = np.asarray(biases, dtype=float)
        j = np.asarray(couplings, dtype=float)
        if h.ndim != 1:
            raise DimensionError(f"biases must be 1-D, got ndim={h.ndim}")
        n = h.shape[0]
        if j.shape != (n, n):
            raise DimensionError(
                f"couplings must have shape ({n}, {n}), got {j.shape}"
            )
        if not np.allclose(j, j.T):
            raise DimensionError("couplings must be symmetric")
        if not np.allclose(np.diag(j), 0.0):
            raise DimensionError("couplings must have a zero diagonal")
        self._h = np.ascontiguousarray(h)
        self._j = np.ascontiguousarray(j)
        self._h.setflags(write=False)
        self._j.setflags(write=False)
        self.offset = float(offset)

    @property
    def n_spins(self) -> int:
        return int(self._h.shape[0])

    @property
    def biases(self) -> np.ndarray:
        """Read-only bias vector ``h``."""
        return self._h

    @property
    def couplings(self) -> np.ndarray:
        """Read-only coupling matrix ``J``."""
        return self._j

    def energy(self, spins: np.ndarray) -> np.ndarray:
        sigma = np.asarray(spins, dtype=float)
        if sigma.shape[-1] != self.n_spins:
            raise DimensionError(
                f"spin array last axis must be {self.n_spins}, "
                f"got shape {sigma.shape}"
            )
        linear = sigma @ self._h
        quadratic = 0.5 * np.einsum(
            "...i,ij,...j->...", sigma, self._j, sigma
        )
        result = -(linear + quadratic)
        if sigma.ndim == 1:
            return np.float64(result)
        return result

    def fields(self, x: np.ndarray) -> np.ndarray:
        arr = np.asarray(x, dtype=float)
        if arr.shape[-1] != self.n_spins:
            raise DimensionError(
                f"position array last axis must be {self.n_spins}, "
                f"got shape {arr.shape}"
            )
        return self._h + arr @ self._j

    def to_dense(self) -> "DenseIsingModel":
        return self

    def local_energy_change(
        self, spins: np.ndarray, index: Optional[int] = None
    ) -> np.ndarray:
        """Energy change of flipping spin(s): ``dE_i = 2 sigma_i f_i``.

        With ``index=None``, returns the change for every spin at once.
        """
        sigma = np.asarray(spins, dtype=float)
        f = self.fields(sigma)
        delta = 2.0 * sigma * f
        if index is None:
            return delta
        return delta[..., index]

    def __repr__(self) -> str:
        return (
            f"DenseIsingModel(n_spins={self.n_spins}, offset={self.offset})"
        )
