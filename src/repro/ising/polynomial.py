"""Higher-order (polynomial) Ising models.

Section 3.1 of the paper motivates the column-based decomposition by
noting that the *row-based* core COP "requires a third-order Ising
model".  This module makes that statement constructive: a
:class:`PolynomialIsingModel` represents an energy

    E(sigma) = sum_T c_T * prod_{i in T} sigma_i

over arbitrary-order monomials ``T`` (sets of spin indices), exposing
the same interface the simulated-bifurcation solvers consume — energy
plus local fields ``f_i = -dE/dsigma_i`` — following Kanao & Goto's
"Simulated bifurcation for higher-order cost functions" (APL Express
2023, reference [19] of the paper).  bSB/dSB/aSB then run on it
unchanged.

Monomials are stored per order as an index matrix plus a coefficient
vector, so energy and gradient evaluation are vectorized numpy
gathers/products (no Python loop over terms at solve time).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Mapping, Tuple

import numpy as np

from repro.errors import DimensionError, SolverError
from repro.ising.model import DenseIsingModel, IsingModel

__all__ = ["PolynomialIsingModel"]


class PolynomialIsingModel(IsingModel):
    """An Ising energy with monomials of arbitrary order.

    Parameters
    ----------
    n_spins:
        Number of spins ``N``.
    terms:
        Mapping from index tuples to coefficients:
        ``{(): const, (i,): c_i, (i, j): c_ij, (i, j, k): c_ijk, ...}``.
        Indices within a tuple must be distinct (``sigma_i^2 = 1`` —
        callers should simplify first); tuples are canonicalized to
        sorted order and duplicate tuples accumulate.
    offset:
        Additive constant for :meth:`objective` (the constant ``()``
        term may be used instead; both are honoured).

    Notes
    -----
    Unlike :class:`~repro.ising.model.DenseIsingModel`, the sign
    convention here is the *plain polynomial* one: coefficients enter
    ``E`` positively.  A quadratic model ``{(i,): -h_i, (i, j): -J_ij}``
    matches Eq. (1).
    """

    def __init__(
        self,
        n_spins: int,
        terms: Mapping[Tuple[int, ...], float],
        offset: float = 0.0,
    ) -> None:
        if n_spins <= 0:
            raise DimensionError(f"n_spins must be positive, got {n_spins}")
        self._n_spins = int(n_spins)
        merged: Dict[Tuple[int, ...], float] = defaultdict(float)
        constant = 0.0
        for indices, coefficient in terms.items():
            idx = tuple(sorted(int(i) for i in indices))
            if len(set(idx)) != len(idx):
                raise DimensionError(
                    f"monomial {indices} has repeated spins; simplify "
                    "using sigma_i^2 = 1 first"
                )
            if idx and (idx[0] < 0 or idx[-1] >= n_spins):
                raise DimensionError(
                    f"monomial {indices} out of range [0, {n_spins})"
                )
            if idx:
                merged[idx] += float(coefficient)
            else:
                constant += float(coefficient)
        self.offset = float(offset) + constant

        # group by order into (index_matrix, coefficients)
        by_order: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        order_buckets: Dict[int, list] = defaultdict(list)
        for idx, coefficient in merged.items():
            if coefficient != 0.0:
                order_buckets[len(idx)].append((idx, coefficient))
        for order, bucket in order_buckets.items():
            index_matrix = np.array(
                [idx for idx, _ in bucket], dtype=np.intp
            ).reshape(len(bucket), order)
            coefficients = np.array([c for _, c in bucket])
            by_order[order] = (index_matrix, coefficients)
        self._by_order = by_order

    # ------------------------------------------------------------------

    @property
    def n_spins(self) -> int:
        return self._n_spins

    @property
    def order(self) -> int:
        """Highest monomial order present (0 for a constant model)."""
        return max(self._by_order, default=0)

    @property
    def n_terms(self) -> int:
        """Number of non-constant monomials."""
        return sum(
            coefficients.shape[0]
            for _, coefficients in self._by_order.values()
        )

    def coefficient(self, indices: Iterable[int]) -> float:
        """Coefficient of one monomial (0 if absent)."""
        idx = tuple(sorted(int(i) for i in indices))
        bucket = self._by_order.get(len(idx))
        if bucket is None:
            return 0.0
        index_matrix, coefficients = bucket
        matches = (index_matrix == np.asarray(idx)).all(axis=1)
        hit = np.flatnonzero(matches)
        return float(coefficients[hit[0]]) if hit.size else 0.0

    # ------------------------------------------------------------------

    def energy(self, spins: np.ndarray) -> np.ndarray:
        sigma = np.asarray(spins, dtype=float)
        if sigma.shape[-1] != self._n_spins:
            raise DimensionError(
                f"spin array last axis must be {self._n_spins}, "
                f"got {sigma.shape}"
            )
        total = np.zeros(sigma.shape[:-1])
        for index_matrix, coefficients in self._by_order.values():
            # (..., n_terms, order) -> product over order -> dot coeffs
            gathered = sigma[..., index_matrix]
            total = total + gathered.prod(axis=-1) @ coefficients
        if sigma.ndim == 1:
            return np.float64(total)
        return total

    def fields(self, x: np.ndarray) -> np.ndarray:
        """Local fields ``f_i = -dE/dx_i`` (exact polynomial gradient)."""
        arr = np.asarray(x, dtype=float)
        if arr.shape[-1] != self._n_spins:
            raise DimensionError(
                f"position array last axis must be {self._n_spins}, "
                f"got {arr.shape}"
            )
        grad = np.zeros_like(arr)
        flat_grad = grad.reshape(-1, self._n_spins)
        flat_x = arr.reshape(-1, self._n_spins)
        for order, (index_matrix, coefficients) in self._by_order.items():
            gathered = flat_x[:, index_matrix]  # (B, T, order)
            if order == 1:
                contributions = np.broadcast_to(
                    coefficients[np.newaxis, :, np.newaxis],
                    gathered.shape,
                )
            else:
                # leave-one-out products without division: prefix *
                # suffix cumulative products per monomial position
                prefix = np.ones_like(gathered)
                prefix[:, :, 1:] = np.cumprod(gathered, axis=2)[:, :, :-1]
                suffix = np.ones_like(gathered)
                reverse_products = np.cumprod(
                    gathered[:, :, ::-1], axis=2
                )[:, :, ::-1]
                suffix[:, :, :-1] = reverse_products[:, :, 1:]
                contributions = (
                    coefficients[np.newaxis, :, np.newaxis]
                    * prefix * suffix
                )
            np.add.at(
                flat_grad,
                (np.arange(flat_x.shape[0])[:, np.newaxis, np.newaxis],
                 index_matrix[np.newaxis, :, :]),
                contributions,
            )
        return -grad.reshape(arr.shape)

    def to_dense(self) -> DenseIsingModel:
        """Lower to ``(h, J)`` — only possible for order <= 2."""
        if self.order > 2:
            raise SolverError(
                f"cannot densify an order-{self.order} model; use an "
                "SB solver (they only need fields) or brute force"
            )
        h = np.zeros(self._n_spins)
        j = np.zeros((self._n_spins, self._n_spins))
        if 1 in self._by_order:
            index_matrix, coefficients = self._by_order[1]
            np.add.at(h, index_matrix[:, 0], -coefficients)
        if 2 in self._by_order:
            index_matrix, coefficients = self._by_order[2]
            rows, cols = index_matrix[:, 0], index_matrix[:, 1]
            np.add.at(j, (rows, cols), -coefficients)
            np.add.at(j, (cols, rows), -coefficients)
        return DenseIsingModel(h, j, self.offset)

    def coupling_rms(self) -> float:
        """RMS over order >= 2 coefficients (drives the SB ``c0``)."""
        n = self._n_spins
        if n < 2:
            return 0.0
        total = 0.0
        count = 0
        for order, (_, coefficients) in self._by_order.items():
            if order >= 2:
                total += float((coefficients**2).sum())
                count += coefficients.shape[0]
        if count == 0:
            return 0.0
        return float(np.sqrt(total / (n * (n - 1))))

    def __repr__(self) -> str:
        return (
            f"PolynomialIsingModel(n_spins={self._n_spins}, "
            f"order={self.order}, n_terms={self.n_terms})"
        )
