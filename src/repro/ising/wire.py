"""Ising problems and solve results as portable JSON job payloads.

The service layer historically knew exactly one problem kind — a truth
table to decompose.  The partition-and-stitch subsystem
(:mod:`repro.partition`) needs a second kind: *solve this raw Ising
model with that registered solver*.  This module defines the canonical
JSON shapes such jobs travel in, so an Ising subproblem rides the
existing queue/gateway/fleet machinery as an ordinary
:class:`~repro.service.spec.JobSpec` and its result is a
content-addressed artifact like any design document.

Three document formats, all schema-versioned and strict (unknown keys
rejected with :class:`~repro.errors.ServiceError`):

``repro-ising-model``
    A dense model as raw-byte hex fields: little-endian float64 biases,
    the *upper-triangle nonzero* couplings as (rows, cols, values)
    triplets, and the objective offset.  Hashing the canonical dump
    gives :func:`model_sha256` — exact content addressing with no
    decimal round-tripping.
``repro-ising-problem``
    ``{solver name, model, optional decode hint}``.  The ``decode``
    hint records how spins map back to an application object (today:
    ``column_setting`` with its ``n_rows``/``n_cols``) — verification
    metadata only, deliberately *excluded* from the artifact key.
``repro-ising-result``
    A serialized :class:`~repro.ising.solvers.base.SolveResult`:
    packed spin bits plus the exact float64 energy/objective and the
    uniform metadata contract.

:func:`ising_artifact_key` is the content address of one Ising job:
SHA-256 over ``{model hash, solver name, semantic config, normalized
partition block}``.  A partition block with ``k == 1`` normalizes to
``None``, which is what makes a ``--partition 1`` submission produce
*the identical artifact* as a monolithic submission by construction.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional

import numpy as np

from repro.core.config import FrameworkConfig
from repro.errors import ServiceError
from repro.ising.model import DenseIsingModel, IsingModel
from repro.ising.solvers.base import (
    SolveResult,
    binary_to_spins,
    spins_to_binary,
)

__all__ = [
    "MODEL_FORMAT",
    "PROBLEM_FORMAT",
    "RESULT_FORMAT",
    "ISING_SCHEMA_VERSION",
    "model_to_dict",
    "model_from_dict",
    "model_sha256",
    "make_problem",
    "validate_problem",
    "problem_model",
    "build_problem_solver",
    "solve_result_to_dict",
    "solve_result_from_dict",
    "ising_artifact_key",
]

MODEL_FORMAT = "repro-ising-model"
PROBLEM_FORMAT = "repro-ising-problem"
RESULT_FORMAT = "repro-ising-result"
#: one version number for all three wire shapes in this module
ISING_SCHEMA_VERSION = 1

#: decode hints this build understands (spins -> application object)
_DECODE_KINDS = ("column_setting",)


def _require_envelope(data: Dict, fmt: str, known: frozenset) -> None:
    """Shared strict-envelope check for the three document shapes."""
    if not isinstance(data, dict):
        raise ServiceError(
            f"{fmt} document must be a JSON object, got "
            f"{type(data).__name__}"
        )
    declared = data.get("format")
    if declared != fmt:
        raise ServiceError(
            f"not a {fmt} document (format={declared!r})"
        )
    version = data.get("schema_version")
    if version != ISING_SCHEMA_VERSION:
        raise ServiceError(
            f"unsupported {fmt} schema_version {version!r}; this build "
            f"speaks version {ISING_SCHEMA_VERSION}"
        )
    unknown = sorted(set(data) - known)
    if unknown:
        raise ServiceError(
            f"unknown {fmt} fields: {', '.join(unknown)}"
        )


def _hex_array(data: Dict, field: str, dtype: str) -> np.ndarray:
    try:
        return np.frombuffer(bytes.fromhex(data[field]), dtype=dtype)
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(
            f"malformed ising model field {field!r}: {exc}"
        ) from exc


# -- model documents ---------------------------------------------------

def model_to_dict(model: IsingModel) -> Dict:
    """Serialize a model (dense or structured) to the wire shape.

    Couplings travel as the strict upper triangle's nonzeros only — the
    matrix is symmetric with a zero diagonal by the
    :class:`DenseIsingModel` contract, so this is lossless and keeps
    sparse boundary subproblems small on the wire.
    """
    dense = (
        model if isinstance(model, DenseIsingModel) else model.to_dense()
    )
    couplings = dense.couplings
    rows, cols = np.nonzero(np.triu(couplings, k=1))
    return {
        "format": MODEL_FORMAT,
        "schema_version": ISING_SCHEMA_VERSION,
        "n_spins": int(dense.n_spins),
        "offset": float(dense.offset),
        "biases_hex": np.ascontiguousarray(
            dense.biases, dtype="<f8"
        ).tobytes().hex(),
        "coupling_rows_hex": np.ascontiguousarray(
            rows, dtype="<i4"
        ).tobytes().hex(),
        "coupling_cols_hex": np.ascontiguousarray(
            cols, dtype="<i4"
        ).tobytes().hex(),
        "coupling_values_hex": np.ascontiguousarray(
            couplings[rows, cols], dtype="<f8"
        ).tobytes().hex(),
    }


_MODEL_KEYS = frozenset(
    {
        "format",
        "schema_version",
        "n_spins",
        "offset",
        "biases_hex",
        "coupling_rows_hex",
        "coupling_cols_hex",
        "coupling_values_hex",
    }
)


def model_from_dict(data: Dict) -> DenseIsingModel:
    """Rebuild a :class:`DenseIsingModel` from :func:`model_to_dict`."""
    _require_envelope(data, MODEL_FORMAT, _MODEL_KEYS)
    try:
        n = int(data["n_spins"])
        offset = float(data["offset"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed ising model: {exc}") from exc
    biases = _hex_array(data, "biases_hex", "<f8")
    rows = _hex_array(data, "coupling_rows_hex", "<i4")
    cols = _hex_array(data, "coupling_cols_hex", "<i4")
    values = _hex_array(data, "coupling_values_hex", "<f8")
    if biases.shape != (n,):
        raise ServiceError(
            f"ising model declares {n} spins but carries "
            f"{biases.shape[0]} biases"
        )
    if not (rows.shape == cols.shape == values.shape):
        raise ServiceError(
            "ising model coupling triplets have mismatched lengths"
        )
    if rows.size and (
        rows.min() < 0 or cols.max() >= n or (rows >= cols).any()
    ):
        raise ServiceError(
            "ising model couplings must be strict upper-triangle "
            "indices inside the spin range"
        )
    couplings = np.zeros((n, n))
    couplings[rows, cols] = values
    couplings[cols, rows] = values
    return DenseIsingModel(
        np.asarray(biases, dtype=float), couplings, offset
    )


def model_sha256(data: Dict) -> str:
    """SHA-256 of a model document's canonical sorted-keys JSON dump.

    The heavy fields are already deterministic hex strings of raw IEEE
    bytes, so equal models hash equal with no float formatting hazards.
    """
    if not isinstance(data, dict) or data.get("format") != MODEL_FORMAT:
        raise ServiceError(
            f"model_sha256 expects a {MODEL_FORMAT} document"
        )
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# -- problem documents -------------------------------------------------

def make_problem(
    model: IsingModel,
    solver: str = "bsb",
    decode: Optional[Dict] = None,
) -> Dict:
    """Wrap ``model`` as a submittable Ising-problem document."""
    doc = {
        "format": PROBLEM_FORMAT,
        "schema_version": ISING_SCHEMA_VERSION,
        "solver": str(solver),
        "model": model_to_dict(model),
        "decode": dict(decode) if decode is not None else None,
    }
    return validate_problem(doc)


_PROBLEM_KEYS = frozenset(
    {"format", "schema_version", "solver", "model", "decode"}
)


def validate_problem(data: Dict) -> Dict:
    """Strictly validate a problem document; returns it unchanged.

    Deep-validates the embedded model (a rebuild is the validation) and
    the optional decode hint.  Raises
    :class:`~repro.errors.ServiceError` on any malformation — safe to
    surface verbatim at the gateway boundary.
    """
    _require_envelope(data, PROBLEM_FORMAT, _PROBLEM_KEYS)
    solver = data.get("solver")
    if not isinstance(solver, str) or not solver:
        raise ServiceError(
            "ising problem needs a non-empty solver name"
        )
    model = model_from_dict(data.get("model"))
    decode = data.get("decode")
    if decode is not None:
        if not isinstance(decode, dict):
            raise ServiceError("ising decode hint must be an object")
        kind = decode.get("kind")
        if kind not in _DECODE_KINDS:
            raise ServiceError(
                f"unknown ising decode kind {kind!r}; this build "
                f"understands {', '.join(_DECODE_KINDS)}"
            )
        unknown = sorted(set(decode) - {"kind", "n_rows", "n_cols"})
        if unknown:
            raise ServiceError(
                f"unknown ising decode fields: {', '.join(unknown)}"
            )
        try:
            n_rows = int(decode["n_rows"])
            n_cols = int(decode["n_cols"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(
                f"malformed ising decode hint: {exc}"
            ) from exc
        if n_rows < 1 or n_cols < 1:
            raise ServiceError(
                "ising decode dimensions must be positive"
            )
        if 2 * n_rows + n_cols != model.n_spins:
            raise ServiceError(
                f"column_setting decode of ({n_rows} rows, {n_cols} "
                f"cols) needs {2 * n_rows + n_cols} spins but the "
                f"model has {model.n_spins}"
            )
    return data


def problem_model(data: Dict) -> DenseIsingModel:
    """The dense model of a (validated) problem document."""
    return model_from_dict(data["model"])


def build_problem_solver(problem: Dict, config: FrameworkConfig):
    """Construct the solver a problem document names.

    ``bsb`` — the paper's core solver and the partition subsystem's
    default — is configured from ``config.solver`` exactly like the
    core-COP path (stop criterion, pump ramp, replicas, backend), so an
    Ising job's artifact key can hash the same semantic config.  Every
    other registry name is constructed with its registry defaults.
    """
    from repro.ising.schedules import LinearPump
    from repro.ising.solvers.registry import make_solver
    from repro.ising.stop_criteria import (
        EnergyVarianceStop,
        FixedIterations,
    )

    name = problem["solver"]
    if name != "bsb":
        return make_solver(name)
    cfg = config.solver
    if cfg.use_dynamic_stop:
        stop = EnergyVarianceStop(
            sample_every=cfg.sample_every,
            window=cfg.window,
            threshold=cfg.variance_threshold,
            max_iterations=cfg.max_iterations,
            min_iterations=cfg.resolved_ramp_iterations,
        )
    else:
        stop = FixedIterations(
            cfg.max_iterations, sample_every=cfg.sample_every
        )
    return make_solver(
        "bsb",
        stop=stop,
        dt=cfg.dt,
        a0=cfg.a0,
        n_replicas=cfg.n_replicas,
        pump=LinearPump(cfg.a0, cfg.resolved_ramp_iterations),
        backend=cfg.backend,
        trace_every=cfg.trace_every,
        numeric_guard=cfg.numeric_guard,
    )


# -- result documents --------------------------------------------------

def _json_safe(value):
    """Recursively coerce numpy scalars/arrays for ``json.dumps``."""
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_json_safe(v) for v in value.tolist()]
    if isinstance(value, np.generic):
        return value.item()
    return value


def solve_result_to_dict(result: SolveResult) -> Dict:
    """Serialize a :class:`SolveResult` to the artifact wire shape."""
    spins = np.asarray(result.spins, dtype=float).ravel()
    packed = np.packbits(spins_to_binary(spins))
    return {
        "format": RESULT_FORMAT,
        "schema_version": ISING_SCHEMA_VERSION,
        "n_spins": int(spins.shape[0]),
        "spins_hex": packed.tobytes().hex(),
        "energy": float(result.energy),
        "objective": float(result.objective),
        "n_iterations": int(result.n_iterations),
        "stop_reason": str(result.stop_reason),
        "runtime_seconds": float(result.runtime_seconds),
        "energy_trace": [float(e) for e in result.energy_trace],
        "metadata": _json_safe(dict(result.metadata)),
    }


_RESULT_KEYS = frozenset(
    {
        "format",
        "schema_version",
        "n_spins",
        "spins_hex",
        "energy",
        "objective",
        "n_iterations",
        "stop_reason",
        "runtime_seconds",
        "energy_trace",
        "metadata",
    }
)


def solve_result_from_dict(data: Dict) -> SolveResult:
    """Rebuild a :class:`SolveResult` from :func:`solve_result_to_dict`."""
    _require_envelope(data, RESULT_FORMAT, _RESULT_KEYS)
    try:
        n = int(data["n_spins"])
        packed = np.frombuffer(
            bytes.fromhex(data["spins_hex"]), dtype=np.uint8
        )
        bits = np.unpackbits(packed, count=n)
        return SolveResult(
            spins=binary_to_spins(bits),
            energy=float(data["energy"]),
            objective=float(data["objective"]),
            n_iterations=int(data["n_iterations"]),
            stop_reason=str(data["stop_reason"]),
            energy_trace=[float(e) for e in data.get("energy_trace", [])],
            runtime_seconds=float(data.get("runtime_seconds", 0.0)),
            metadata=dict(data.get("metadata", {})),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed ising result: {exc}") from exc


# -- content addressing ------------------------------------------------

def ising_artifact_key(
    problem: Dict,
    config: FrameworkConfig,
    partition: Optional[Dict] = None,
) -> str:
    """Content-address one Ising job (module docstring).

    The ``decode`` hint is deliberately excluded — it never changes the
    seeded solve, so two submissions differing only in decode metadata
    share the artifact.  A ``k == 1`` partition block normalizes to
    ``None`` so the degenerate case keys identically to a monolithic
    submission.
    """
    normalized = None
    if partition is not None and int(partition.get("k", 1)) > 1:
        normalized = {
            "k": int(partition["k"]),
            "max_rounds": int(partition.get("max_rounds", 8)),
            "tolerance": float(partition.get("tolerance", 0.0)),
            "seed": int(partition.get("seed", 0)),
        }
    payload = {
        "format": "repro-ising-key",
        "key_version": 1,
        "model_sha256": model_sha256(problem["model"]),
        "solver": problem["solver"],
        "config": config.semantic_dict(),
        "partition": normalized,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
