"""Parameter schedules for annealing-style solvers.

Simulated bifurcation pumps the oscillator network with a ramping
amplitude ``a(t)`` that sweeps through the bifurcation point; simulated
annealing cools a temperature.  Both are tiny callables kept here so the
solvers stay declarative and the schedules are unit-testable.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["LinearPump", "GeometricCooling"]


class LinearPump:
    """Linear pump ``a(t) = a0 * min(1, t / ramp_iterations)``.

    This is the schedule used by the bSB reference implementations: the
    pump rises linearly from 0 to ``a0`` over ``ramp_iterations`` Euler
    steps and then holds, so runs that outlive the ramp (e.g. under the
    dynamic stop criterion) stay at the bifurcated fixed point.
    """

    def __init__(self, a0: float = 1.0, ramp_iterations: int = 1000) -> None:
        if a0 <= 0:
            raise ConfigurationError(f"a0 must be positive, got {a0}")
        if ramp_iterations <= 0:
            raise ConfigurationError(
                f"ramp_iterations must be positive, got {ramp_iterations}"
            )
        self.a0 = float(a0)
        self.ramp_iterations = int(ramp_iterations)

    def __call__(self, iteration: int) -> float:
        """Pump amplitude at (1-based) Euler iteration ``iteration``."""
        frac = min(1.0, iteration / self.ramp_iterations)
        return self.a0 * frac

    def __repr__(self) -> str:
        return (
            f"LinearPump(a0={self.a0}, "
            f"ramp_iterations={self.ramp_iterations})"
        )


class GeometricCooling:
    """Geometric cooling ``T(k) = T0 * alpha^k`` clipped at ``T_min``."""

    def __init__(
        self, t_initial: float = 10.0, t_final: float = 0.01, n_steps: int = 100
    ) -> None:
        if t_initial <= 0 or t_final <= 0:
            raise ConfigurationError("temperatures must be positive")
        if t_final > t_initial:
            raise ConfigurationError(
                f"t_final ({t_final}) must not exceed t_initial ({t_initial})"
            )
        if n_steps <= 0:
            raise ConfigurationError(f"n_steps must be positive, got {n_steps}")
        self.t_initial = float(t_initial)
        self.t_final = float(t_final)
        self.n_steps = int(n_steps)
        if n_steps == 1:
            self._alpha = 1.0
        else:
            self._alpha = (t_final / t_initial) ** (1.0 / (n_steps - 1))

    @property
    def alpha(self) -> float:
        """Per-step cooling factor."""
        return self._alpha

    def __call__(self, step: int) -> float:
        """Temperature at (0-based) annealing step ``step``."""
        return max(
            self.t_final, self.t_initial * self._alpha ** min(step, self.n_steps)
        )

    def temperatures(self) -> np.ndarray:
        """The full cooling ladder, shape ``(n_steps,)``."""
        return np.array([self(k) for k in range(self.n_steps)])

    def __repr__(self) -> str:
        return (
            f"GeometricCooling(t_initial={self.t_initial}, "
            f"t_final={self.t_final}, n_steps={self.n_steps})"
        )
