"""Structured Ising model for the column-based core COP.

The Ising energy of the column-based core COP (Eqs. 9 and 16) is

    E = sum_i a_i (v1_i + v2_i)
        - sum_ij K_ij v1_i t_j + sum_ij K_ij v2_i t_j,

with ``K = W / 4``, ``a_i = sum_j K_ij`` and the spin layout
``sigma = [v1 (r), v2 (r), t (c)]``.  ``W`` is the per-cell weight
matrix: ``p_kij (1 - 2 O_kij)`` in separate mode and ``p_kij q_kij`` in
joint mode.

Couplings only connect pattern spins (``v1``, ``v2``) to type spins
(``t``) — the graph is bipartite — so local fields cost two ``r x c``
mat-vecs instead of an ``(2r+c)^2`` one.  For the paper's large case
(``r=128, c=512``, ``N=768``) that is a ~4.5x flop reduction and, more
importantly, avoids materializing ``J``.

The class also records the additive offset that makes
``objective(spins)`` equal to the original error objective exactly
(property-tested against the direct metric computation).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import DimensionError
from repro.ising.model import DenseIsingModel, IsingModel

__all__ = ["BipartiteDecompositionModel"]


class BipartiteDecompositionModel(IsingModel):
    """Ising model of a column-based core COP with bipartite couplings.

    Parameters
    ----------
    weights:
        ``(r, c)`` weight matrix ``W`` (``p*(1-2O)`` or ``p*q``).
    offset:
        Constant such that ``objective(spins)`` equals the COP cost.

    Notes
    -----
    In the canonical form ``E = -h.sigma - (1/2) sigma^T J sigma`` this
    model has ``h_{v1_i} = h_{v2_i} = -a_i``, ``h_t = 0``,
    ``J[v1_i, t_j] = +K_ij`` and ``J[v2_i, t_j] = -K_ij``.
    """

    def __init__(self, weights: np.ndarray, offset: float = 0.0) -> None:
        w = np.asarray(weights, dtype=float)
        if w.ndim != 2:
            raise DimensionError(f"weights must be 2-D, got ndim={w.ndim}")
        self._k = np.ascontiguousarray(w / 4.0)
        self._k.setflags(write=False)
        self._a = self._k.sum(axis=1)
        self._a.setflags(write=False)
        self.offset = float(offset)
        self._reference_kernel = None

    # ------------------------------------------------------------------
    # Shape bookkeeping
    # ------------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        """Number of Boolean-matrix rows ``r`` (per-pattern spins)."""
        return int(self._k.shape[0])

    @property
    def n_cols(self) -> int:
        """Number of Boolean-matrix columns ``c`` (type spins)."""
        return int(self._k.shape[1])

    @property
    def n_spins(self) -> int:
        return 2 * self.n_rows + self.n_cols

    @property
    def weights(self) -> np.ndarray:
        """The original weight matrix ``W`` (``= 4 K``)."""
        return 4.0 * self._k

    def split(self, x: np.ndarray):
        """Split a ``(..., N)`` array into ``(v1, v2, t)`` views."""
        r = self.n_rows
        return x[..., :r], x[..., r : 2 * r], x[..., 2 * r :]

    @staticmethod
    def join(v1: np.ndarray, v2: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Concatenate ``(v1, v2, t)`` back into a spin/position array."""
        return np.concatenate([v1, v2, t], axis=-1)

    # ------------------------------------------------------------------
    # IsingModel interface (delegated to the reference compute kernel)
    # ------------------------------------------------------------------

    def make_kernel(
        self, backend: Optional[str] = None, ignore_env: bool = False
    ):
        """Build a fused SB kernel for this model's couplings.

        ``backend`` resolves through
        :func:`repro.ising.kernels.resolve_backend` (``REPRO_SB_BACKEND``
        wins, then the argument, then ``numpy64``; ``ignore_env`` skips
        the environment override — the solver's numeric guard uses it
        to force the float64 reference backend).  Solvers that find
        this method drive their dynamics through the kernel instead of
        calling :meth:`fields` per iteration.
        """
        from repro.ising.kernels import make_kernel

        return make_kernel(self.weights, backend=backend, ignore_env=ignore_env)

    @property
    def _kernel(self):
        """Lazily built ``numpy64`` reference kernel backing energy/fields."""
        if self._reference_kernel is None:
            self._reference_kernel = self.make_kernel("numpy64")
        return self._reference_kernel

    def energy(self, spins: np.ndarray) -> np.ndarray:
        sigma = np.asarray(spins, dtype=float)
        if sigma.shape[-1] != self.n_spins:
            raise DimensionError(
                f"spin array last axis must be {self.n_spins}, "
                f"got shape {sigma.shape}"
            )
        result = self._kernel.energy(sigma)
        if sigma.ndim == 1:
            return np.float64(result)
        return result

    def fields(self, x: np.ndarray) -> np.ndarray:
        arr = np.asarray(x, dtype=float)
        if arr.shape[-1] != self.n_spins:
            raise DimensionError(
                f"position array last axis must be {self.n_spins}, "
                f"got shape {arr.shape}"
            )
        return self._kernel.fields(arr)

    def to_dense(self) -> DenseIsingModel:
        r, c = self.n_rows, self.n_cols
        n = self.n_spins
        h = np.zeros(n)
        h[:r] = -self._a
        h[r : 2 * r] = -self._a
        j = np.zeros((n, n))
        j[:r, 2 * r :] = self._k
        j[r : 2 * r, 2 * r :] = -self._k
        j[2 * r :, :r] = self._k.T
        j[2 * r :, r : 2 * r] = -self._k.T
        return DenseIsingModel(h, j, self.offset)

    def coupling_rms(self) -> float:
        # closed form over the bipartite blocks — never densifies J
        # (the O(N^2) base-class default must stay unreachable here)
        n = self.n_spins
        if n < 2:
            return 0.0
        total = 4.0 * float((self._k**2).sum())  # both blocks, both triangles
        return float(np.sqrt(total / (n * (n - 1))))

    def __repr__(self) -> str:
        return (
            f"BipartiteDecompositionModel(r={self.n_rows}, c={self.n_cols}, "
            f"offset={self.offset})"
        )
