"""``repro.obs`` — tracing, metrics, and solver-probe observability.

The package answers "where did the time go and what did the dynamic
solver machinery actually do?" without perturbing results: every hook
is RNG-neutral, and the disabled path is a process-global null object
(:data:`~repro.obs.tracing.NULL_TRACER` / a ``None`` probe) whose cost
is a single attribute check.

Typical use is the one-liner::

    from repro.obs import observe, write_trace

    with observe() as tracer:
        decomposer.decompose(table)
    write_trace(tracer, "run.trace.json")

which the CLI exposes as ``--trace-out PATH`` and analyses with
``repro trace report``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro._version import package_version
from repro.obs.exporters import (
    chrome_trace_dict,
    jsonl_lines,
    prometheus_text,
    trace_header,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from repro.obs.logconfig import configure_logging, get_logger, warn_once
from repro.obs.metrics import (
    STOP_ITERATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
)
from repro.obs.probe import (
    RecordingSolverProbe,
    SolverProbe,
    get_probe_factory,
    make_probe,
    set_probe_factory,
)
from repro.obs.report import load_trace, render_report, summarize_trace
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "observe",
    # tracing
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
    # metrics
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "STOP_ITERATION_BUCKETS",
    "get_metrics",
    "set_metrics",
    # probes
    "SolverProbe",
    "RecordingSolverProbe",
    "get_probe_factory",
    "set_probe_factory",
    "make_probe",
    # exporters
    "trace_header",
    "jsonl_lines",
    "write_jsonl",
    "chrome_trace_dict",
    "write_chrome_trace",
    "write_trace",
    "prometheus_text",
    # report
    "load_trace",
    "summarize_trace",
    "render_report",
    # logging
    "get_logger",
    "configure_logging",
    "warn_once",
]


@contextmanager
def observe(
    metadata: Optional[Dict] = None,
    *,
    probe_trace_every: int = 1,
) -> Iterator[Tracer]:
    """Enable tracing and solver probes for the enclosed block.

    Creates a :class:`Tracer` stamped with the package version (plus
    ``metadata``), installs it process-globally together with a
    :class:`RecordingSolverProbe` factory feeding that tracer and the
    global metrics registry, and restores the previous tracer/factory
    on exit.  Yields the tracer so callers can export its events.
    """
    tracer = Tracer(
        metadata={"repro_version": package_version(), **(metadata or {})}
    )
    previous_factory = get_probe_factory()
    set_probe_factory(
        lambda: RecordingSolverProbe(
            tracer=tracer,
            metrics=get_metrics(),
            trace_every=probe_trace_every,
        )
    )
    try:
        with tracing(tracer):
            yield tracer
    finally:
        set_probe_factory(previous_factory)
