"""Solver probes: per-run instrumentation of the bSB/kernel step loop.

The paper's two dynamic contributions — the energy-variance stop
(Sec. 3.3.1) and the Theorem-3 intervention (Sec. 3.3.2) — are runtime
*behaviors*; final MED numbers cannot tell whether the stop fired on the
pre-bifurcation plateau or how often an intervention actually flipped
the decoded types.  A :class:`SolverProbe` hooks the solver's sampling
points and records exactly that:

* a **downsampled energy trace** (every ``trace_every``-th sample, so
  paper-scale runs never accumulate unbounded Python lists),
* **stop-criterion observations** — the window variance vs. ``eps`` at
  each sampling decision,
* **Theorem-3 intervention events**, with whether the overwrite changed
  the decoded state,
* the **resolved kernel backend / dtype** and the accumulated
  per-step kernel wall time.

Probes are *observers*: they never draw random numbers, never touch
solver state, and may therefore be attached or detached without
changing any decoded design (asserted bit-for-bit in the test suite).
The disabled path is a single ``probe is None`` check in the solver
loop — see ``benchmarks/test_bench_obs_overhead.py`` for the <3%
overhead gate.

The process-global *probe factory* mirrors the tracer: by default
:func:`make_probe` returns ``None`` (solvers skip all probe work);
:func:`repro.obs.observe` installs a factory building
:class:`RecordingSolverProbe` instances bound to the active tracer and
metrics registry.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import (
    STOP_ITERATION_BUCKETS,
    MetricsRegistry,
)
from repro.obs.tracing import Tracer

__all__ = [
    "SolverProbe",
    "RecordingSolverProbe",
    "get_probe_factory",
    "set_probe_factory",
    "make_probe",
]


class SolverProbe:
    """Observer protocol for one iterative solver run (all no-ops).

    Subclasses override the hooks they care about; every hook must be
    side-effect-free with respect to solver state and RNG streams.
    """

    def on_begin(
        self,
        *,
        n_spins: int,
        n_replicas: int,
        max_iterations: int,
        backend: str,
        dtype: str,
    ) -> None:
        """Called once before the first Euler iteration."""

    def on_step(self, seconds: float) -> None:
        """Called after every kernel/inline step with its wall time."""

    def on_sample(
        self, iteration: int, energy: float, best_energy: float
    ) -> None:
        """Called at every sampling point with the replica-best energy."""

    def on_stop_observation(
        self,
        iteration: int,
        variance: Optional[float],
        threshold: Optional[float],
        stopped: bool,
    ) -> None:
        """Called when the stop criterion consumed a sample."""

    def on_intervention(self, iteration: int, changed: bool) -> None:
        """Called after an intervention hook ran at a sampling point."""

    def on_numeric_escalation(
        self, iteration: int, from_backend: str, to_backend: str
    ) -> None:
        """Called when the numeric guard restarts on a safer backend."""

    def on_end(
        self, *, n_iterations: int, stop_reason: str, best_energy: float
    ) -> None:
        """Called once after the final readout."""


class RecordingSolverProbe(SolverProbe):
    """Probe that records a run and feeds the tracer/metrics on end.

    Parameters
    ----------
    tracer:
        Destination for the per-run instant event (``sb_probe``) and
        intervention markers; ``None`` records in memory only.
    metrics:
        Registry receiving the stop-iteration histogram and
        intervention counters; ``None`` skips metrics.
    trace_every:
        Keep every ``trace_every``-th sampled energy (1 = all samples).
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        trace_every: int = 1,
    ) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.trace_every = max(1, int(trace_every))
        self.backend: Optional[str] = None
        self.dtype: Optional[str] = None
        self.n_spins = 0
        self.n_replicas = 0
        self.max_iterations = 0
        self.energy_trace: List[Tuple[int, float]] = []
        self.stop_observations: List[Dict] = []
        self.interventions: List[Tuple[int, bool]] = []
        self.numeric_escalations: List[Tuple[int, str, str]] = []
        self.kernel_step_seconds = 0.0
        self.kernel_steps = 0
        self.n_iterations = 0
        self.stop_reason: Optional[str] = None
        self.best_energy: Optional[float] = None
        self._n_samples = 0

    # -- hooks ---------------------------------------------------------

    def on_begin(
        self, *, n_spins, n_replicas, max_iterations, backend, dtype
    ) -> None:
        self.n_spins = int(n_spins)
        self.n_replicas = int(n_replicas)
        self.max_iterations = int(max_iterations)
        self.backend = backend
        self.dtype = dtype

    def on_step(self, seconds: float) -> None:
        self.kernel_step_seconds += seconds
        self.kernel_steps += 1

    def on_sample(self, iteration, energy, best_energy) -> None:
        self._n_samples += 1
        if (self._n_samples - 1) % self.trace_every == 0:
            self.energy_trace.append((int(iteration), float(energy)))

    def on_stop_observation(
        self, iteration, variance, threshold, stopped
    ) -> None:
        self.stop_observations.append(
            {
                "iteration": int(iteration),
                "variance": None if variance is None else float(variance),
                "threshold": None if threshold is None else float(threshold),
                "stopped": bool(stopped),
            }
        )

    def on_intervention(self, iteration, changed) -> None:
        self.interventions.append((int(iteration), bool(changed)))
        if self.tracer is not None:
            self.tracer.instant(
                "theorem3_intervention",
                category="solver",
                iteration=int(iteration),
                changed=bool(changed),
            )

    def on_numeric_escalation(
        self, iteration, from_backend, to_backend
    ) -> None:
        self.numeric_escalations.append(
            (int(iteration), str(from_backend), str(to_backend))
        )
        if self.tracer is not None:
            self.tracer.instant(
                "numeric_escalation",
                category="solver",
                iteration=int(iteration),
                from_backend=str(from_backend),
                to_backend=str(to_backend),
            )
        # the counter lives in the solver itself (it must count even
        # without an active probe); the probe only records/traces

    def on_end(self, *, n_iterations, stop_reason, best_energy) -> None:
        self.n_iterations = int(n_iterations)
        self.stop_reason = stop_reason
        self.best_energy = float(best_energy)
        if self.tracer is not None:
            self.tracer.instant(
                "sb_probe", category="solver", **self.summary()
            )
        if self.metrics is not None:
            self.metrics.histogram(
                "solver_stop_iteration",
                buckets=STOP_ITERATION_BUCKETS,
                help="bSB iterations at stop, per solve",
            ).observe(self.n_iterations)
            self.metrics.counter(
                "solver_runs_total", help="iterative solver runs"
            ).inc()
            self.metrics.counter(
                "solver_interventions_total",
                help="Theorem-3 intervention invocations",
            ).inc(len(self.interventions))
            self.metrics.counter(
                "solver_interventions_changed_total",
                help="interventions that changed the decoded state",
            ).inc(sum(1 for _, changed in self.interventions if changed))

    # -- reporting -----------------------------------------------------

    def summary(self) -> Dict:
        """Compact per-run record (also the ``sb_probe`` event args)."""
        n_changed = sum(1 for _, changed in self.interventions if changed)
        return {
            "backend": self.backend,
            "dtype": self.dtype,
            "n_spins": self.n_spins,
            "n_replicas": self.n_replicas,
            "max_iterations": self.max_iterations,
            "n_iterations": self.n_iterations,
            "stop_reason": self.stop_reason,
            "best_energy": self.best_energy,
            "n_samples": self._n_samples,
            "n_trace_points": len(self.energy_trace),
            "n_stop_observations": len(self.stop_observations),
            "n_interventions": len(self.interventions),
            "n_interventions_changed": n_changed,
            "n_numeric_escalations": len(self.numeric_escalations),
            "kernel_steps": self.kernel_steps,
            "kernel_step_seconds": self.kernel_step_seconds,
        }


#: ``None`` (the default) means "no probe" — solvers skip all hooks
ProbeFactory = Callable[[], SolverProbe]
_FACTORY: Optional[ProbeFactory] = None


def get_probe_factory() -> Optional[ProbeFactory]:
    """The installed probe factory, or ``None`` when probing is off."""
    return _FACTORY


def set_probe_factory(factory: Optional[ProbeFactory]) -> None:
    """Install (or clear, with ``None``) the process-global factory."""
    global _FACTORY
    _FACTORY = factory


def make_probe() -> Optional[SolverProbe]:
    """A fresh probe from the installed factory, or ``None``."""
    factory = _FACTORY
    return None if factory is None else factory()
