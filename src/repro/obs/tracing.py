"""Lightweight nested-span tracer with a near-zero disabled path.

The tracer answers one question the coarse end-of-run summaries cannot:
*where did the time go, structurally* — per framework stage, per
component, per bSB solve — without perturbing the seeded search.  Design
constraints, in order:

1. **Zero-cost when off.**  The process-global default is a
   :class:`NullTracer` whose :meth:`~NullTracer.span` returns one shared
   no-op context manager: a disabled probe point costs an attribute
   lookup and a method call, nothing more.  The kernel hot loop guards
   its per-step timing with a plain ``is None`` check on top of that
   (see :mod:`repro.obs.probe` and the ``BENCH_obs.json`` gate).
2. **RNG-neutral.**  Spans observe; they never touch ``numpy.random``
   or mutate solver state, so designs are bit-identical with tracing on
   or off (asserted end-to-end in the test suite).
3. **Thread-safe, monotonic.**  Timestamps come from
   :func:`time.perf_counter` relative to the tracer's epoch; the span
   stack is thread-local (service workers are threads), the finished
   event list is lock-protected.

Events are plain dicts (the native form the exporters consume)::

    {"type": "span",    "name": ..., "cat": ..., "span_id": 3,
     "parent_id": 1, "ts_us": 120.5, "dur_us": 88.0,
     "pid": 1234, "tid": 5678, "args": {...}}
    {"type": "instant", "name": ..., "cat": ..., "span_id": 7,
     "parent_id": 3, "ts_us": 130.1, "pid": ..., "tid": ..., "args": {...}}

Usage::

    from repro.obs import get_tracer, tracing, Tracer

    tracer = Tracer()
    with tracing(tracer):            # installs as the process default
        with get_tracer().span("sb_solve", category="stage", r=8) as sp:
            ...
            sp.set_args(n_iterations=420)
    events = tracer.events()
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
]


class _NullSpan:
    """Shared do-nothing span; the whole disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set_args(self, **args) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every operation is a no-op returning instantly."""

    enabled = False

    def span(self, name: str, category: str = "app", **args) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, category: str = "app", **args) -> None:
        return None

    def events(self) -> List[Dict]:
        return []

    def __repr__(self) -> str:
        return "NullTracer()"


NULL_TRACER = NullTracer()


class _Span:
    """An open span; finalizes itself into its tracer on ``__exit__``."""

    __slots__ = (
        "_tracer", "name", "category", "span_id", "parent_id",
        "_start_us", "args",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        args: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.args = args
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self._start_us = 0.0

    def set_args(self, **args) -> None:
        """Attach (or override) span arguments while the span is open."""
        self.args.update(args)

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self.span_id = tracer._next_id()
        self.parent_id = tracer._current_span_id()
        tracer._push(self.span_id)
        self._start_us = tracer._now_us()
        return self

    def __exit__(self, *exc_info) -> None:
        tracer = self._tracer
        end_us = tracer._now_us()
        tracer._pop()
        tracer._record(
            {
                "type": "span",
                "name": self.name,
                "cat": self.category,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "ts_us": self._start_us,
                "dur_us": end_us - self._start_us,
                "pid": tracer.pid,
                "tid": threading.get_ident(),
                "args": self.args,
            }
        )


class Tracer:
    """Recording tracer: nested spans + instant events, in memory.

    Parameters
    ----------
    metadata:
        Provenance attached to every export (the trace *header*); the
        :func:`repro.obs.observe` helper stamps the package version and
        a creation label here.
    """

    enabled = True

    def __init__(self, metadata: Optional[Dict[str, Any]] = None) -> None:
        self.metadata: Dict[str, Any] = dict(metadata or {})
        self.pid = os.getpid()
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._events: List[Dict] = []
        self._counter = 0
        self._local = threading.local()

    # -- internal plumbing --------------------------------------------

    def _now_us(self) -> float:
        return (time.perf_counter() - self._epoch) * 1e6

    def _next_id(self) -> int:
        with self._lock:
            self._counter += 1
            return self._counter

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _current_span_id(self) -> Optional[int]:
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span_id: int) -> None:
        self._stack().append(span_id)

    def _pop(self) -> None:
        stack = self._stack()
        if stack:
            stack.pop()

    def _record(self, event: Dict) -> None:
        with self._lock:
            self._events.append(event)

    # -- public API ----------------------------------------------------

    def span(self, name: str, category: str = "app", **args) -> _Span:
        """Open a nested span (use as a context manager)."""
        return _Span(self, name, category, args)

    def instant(self, name: str, category: str = "app", **args) -> None:
        """Record a point-in-time event under the current span."""
        self._record(
            {
                "type": "instant",
                "name": name,
                "cat": category,
                "span_id": self._next_id(),
                "parent_id": self._current_span_id(),
                "ts_us": self._now_us(),
                "pid": self.pid,
                "tid": threading.get_ident(),
                "args": args,
            }
        )

    def events(self) -> List[Dict]:
        """Snapshot of all finished events (chronological record order)."""
        with self._lock:
            return list(self._events)

    def __repr__(self) -> str:
        return f"Tracer(n_events={len(self._events)})"


#: the process-global active tracer; NEVER ``None`` (null object pattern)
_ACTIVE: "NullTracer | Tracer" = NULL_TRACER


def get_tracer():
    """The active tracer — a :class:`NullTracer` unless one is installed."""
    return _ACTIVE


def set_tracer(tracer) -> None:
    """Install ``tracer`` process-wide (``None`` restores the null tracer)."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else NULL_TRACER


@contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Temporarily install ``tracer`` as the process-global tracer."""
    previous = _ACTIVE
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
