"""Trace-file summarization behind ``repro trace report``.

Reads a trace written by ``--trace-out`` — either the Chrome
``trace_event`` JSON object or the JSONL event log — and reduces it to
the three views the paper's knobs are tuned with:

* **stage time breakdown** — wall time per framework stage (partition
  enumeration, weight build, SB solve, decode, synthesis/verify), the
  software analogue of the FPGA pipeline occupancy plots;
* **stop-iteration histogram** — where the Sec. 3.3.1 dynamic stop
  actually fired, against the fixed
  :data:`~repro.obs.metrics.STOP_ITERATION_BUCKETS` boundaries;
* **intervention counts** — how often the Theorem-3 reset ran and how
  often it changed the decoded state.

The loader is format-agnostic: both exports round-trip the same native
events (see :mod:`repro.obs.exporters`), so the report code works on a
normalized stream.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ReproError
from repro.obs.metrics import STOP_ITERATION_BUCKETS

__all__ = ["load_trace", "summarize_trace", "render_report"]


class TraceFormatError(ReproError, ValueError):
    """Raised when a trace file is not one of the known formats."""


def _normalize_chrome(payload: Dict) -> Tuple[List[Dict], Dict]:
    events = []
    for raw in payload.get("traceEvents", []):
        kind = "span" if raw.get("ph") == "X" else "instant"
        events.append(
            {
                "type": kind,
                "name": raw.get("name", ""),
                "cat": raw.get("cat", ""),
                "ts_us": float(raw.get("ts", 0.0)),
                "dur_us": float(raw.get("dur", 0.0)),
                "args": dict(raw.get("args") or {}),
            }
        )
    return events, dict(payload.get("otherData") or {})


def load_trace(path: Union[str, Path]) -> Tuple[List[Dict], Dict]:
    """Load a trace file; returns ``(events, header_metadata)``.

    Accepts the Chrome ``trace_event`` object format and the JSONL
    event log; raises :class:`TraceFormatError` for anything else.
    """
    path = Path(path)
    text = path.read_text()
    stripped = text.lstrip()
    if stripped.startswith("{") and '"traceEvents"' in text:
        try:
            return _normalize_chrome(json.loads(text))
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"corrupt trace {path}: {exc}") from exc
    events: List[Dict] = []
    metadata: Dict = {}
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"{path}:{line_no} is not JSON ({exc})"
            ) from exc
        if record.get("type") == "header":
            metadata = {
                key: value
                for key, value in record.items()
                if key != "type"
            }
        else:
            record.setdefault("dur_us", 0.0)
            record.setdefault("args", {})
            events.append(record)
    if not events and not metadata:
        raise TraceFormatError(
            f"{path} holds neither a Chrome trace nor a JSONL event log"
        )
    return events, metadata


def _stop_histogram(iterations: Sequence[int]) -> Dict[str, int]:
    counts = {f"<= {int(bound)}": 0 for bound in STOP_ITERATION_BUCKETS}
    counts["> %d" % int(STOP_ITERATION_BUCKETS[-1])] = 0
    for value in iterations:
        for bound in STOP_ITERATION_BUCKETS:
            if value <= bound:
                counts[f"<= {int(bound)}"] += 1
                break
        else:
            counts["> %d" % int(STOP_ITERATION_BUCKETS[-1])] += 1
    return counts


def summarize_trace(
    events: Sequence[Dict], metadata: Optional[Dict] = None
) -> Dict:
    """Reduce a normalized event stream to the report structure."""
    stages: Dict[str, Dict] = {}
    stop_iterations: List[int] = []
    stop_reasons: Dict[str, int] = {}
    interventions = 0
    interventions_changed = 0
    solver_runs = 0
    kernel_seconds = 0.0
    wall_us = 0.0
    for event in events:
        wall_us = max(wall_us, event["ts_us"] + event.get("dur_us", 0.0))
        if event["type"] == "span" and event["cat"] == "stage":
            entry = stages.setdefault(
                event["name"],
                {"count": 0, "total_ms": 0.0, "max_ms": 0.0},
            )
            duration_ms = event["dur_us"] / 1000.0
            entry["count"] += 1
            entry["total_ms"] += duration_ms
            entry["max_ms"] = max(entry["max_ms"], duration_ms)
        elif event["name"] == "sb_probe":
            args = event["args"]
            solver_runs += 1
            if args.get("n_iterations") is not None:
                stop_iterations.append(int(args["n_iterations"]))
            reason = args.get("stop_reason")
            if reason:
                stop_reasons[reason] = stop_reasons.get(reason, 0) + 1
            interventions += int(args.get("n_interventions", 0))
            interventions_changed += int(
                args.get("n_interventions_changed", 0)
            )
            kernel_seconds += float(args.get("kernel_step_seconds", 0.0))
    for entry in stages.values():
        entry["mean_ms"] = entry["total_ms"] / entry["count"]
    return {
        "metadata": dict(metadata or {}),
        "n_events": len(events),
        "wall_ms": wall_us / 1000.0,
        "stages": dict(sorted(stages.items())),
        "solver": {
            "runs": solver_runs,
            "stop_iteration_histogram": _stop_histogram(stop_iterations),
            "stop_reasons": dict(sorted(stop_reasons.items())),
            "kernel_step_seconds": kernel_seconds,
        },
        "interventions": {
            "total": interventions,
            "changed": interventions_changed,
        },
    }


def render_report(summary: Dict) -> str:
    """Human-readable text rendering of :func:`summarize_trace`."""
    lines: List[str] = []
    meta = summary["metadata"]
    version = meta.get("repro_version", "?")
    lines.append(
        f"trace: {summary['n_events']} events, "
        f"{summary['wall_ms']:.1f} ms wall (repro {version})"
    )
    lines.append("")
    lines.append("stage time breakdown")
    header = f"  {'stage':<22} {'count':>6} {'total ms':>10} " \
             f"{'mean ms':>9} {'max ms':>9}"
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    if not summary["stages"]:
        lines.append("  (no stage spans recorded)")
    for name, entry in summary["stages"].items():
        lines.append(
            f"  {name:<22} {entry['count']:>6} {entry['total_ms']:>10.2f} "
            f"{entry['mean_ms']:>9.3f} {entry['max_ms']:>9.3f}"
        )
    solver = summary["solver"]
    lines.append("")
    lines.append(
        f"solver runs: {solver['runs']}  "
        f"(kernel step time {solver['kernel_step_seconds']:.3f}s)"
    )
    if solver["stop_reasons"]:
        reasons = ", ".join(
            f"{reason}: {count}"
            for reason, count in solver["stop_reasons"].items()
        )
        lines.append(f"stop reasons: {reasons}")
    lines.append("stop iteration histogram")
    for bucket, count in solver["stop_iteration_histogram"].items():
        bar = "#" * min(count, 50)
        lines.append(f"  {bucket:>8}: {count:>5} {bar}")
    inter = summary["interventions"]
    lines.append("")
    lines.append(
        f"theorem-3 interventions: {inter['total']} "
        f"({inter['changed']} changed the decoded state)"
    )
    return "\n".join(lines)
