"""Trace and metrics exporters: JSONL, Chrome ``trace_event``, Prometheus.

Three consumers, three formats, one native event stream
(:meth:`repro.obs.tracing.Tracer.events`):

* :func:`write_jsonl` — an append-friendly structured event log (one
  JSON object per line, header record first) for ad-hoc ``jq``-style
  analysis and log shipping;
* :func:`chrome_trace_dict` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` JSON object format, loadable as-is in
  ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_
  (spans become complete ``"X"`` events, instants become ``"i"``);
* :func:`prometheus_text` — the Prometheus text exposition (version
  0.0.4) of a :class:`~repro.obs.metrics.MetricsRegistry`, used by the
  service telemetry surface.

Every trace export carries a provenance header (package version plus
any tracer metadata), satisfying the artifact-traceability requirement
shared with the service's design envelopes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro._version import package_version
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import Tracer

__all__ = [
    "trace_header",
    "jsonl_lines",
    "write_jsonl",
    "chrome_trace_dict",
    "write_chrome_trace",
    "write_trace",
    "prometheus_text",
    "PROMETHEUS_CONTENT_TYPE",
]

#: the Content-Type a scrape endpoint must declare for version 0.0.4
#: of the text exposition (what :func:`prometheus_text` emits)
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def trace_header(metadata: Optional[Dict] = None) -> Dict:
    """The provenance header stamped into every trace export."""
    header = {
        "format": "repro-trace",
        "repro_version": package_version(),
        "time_unit": "us",
    }
    header.update(metadata or {})
    return header


# -- JSONL -------------------------------------------------------------


def jsonl_lines(
    events: Sequence[Dict], metadata: Optional[Dict] = None
) -> List[str]:
    """Serialize events as JSONL: one header line, then one line each."""
    lines = [json.dumps({"type": "header", **trace_header(metadata)},
                        sort_keys=True)]
    lines.extend(json.dumps(event, sort_keys=True) for event in events)
    return lines


def write_jsonl(
    tracer: Tracer, path: Union[str, Path]
) -> Path:
    """Write a tracer's events as a JSONL structured event log."""
    path = Path(path)
    lines = jsonl_lines(tracer.events(), tracer.metadata)
    path.write_text("\n".join(lines) + "\n")
    return path


# -- Chrome trace_event ------------------------------------------------


def _chrome_event(event: Dict) -> Dict:
    common = {
        "name": event["name"],
        "cat": event["cat"],
        "ts": event["ts_us"],
        "pid": event["pid"],
        "tid": event["tid"],
        "args": dict(event.get("args") or {}),
    }
    # span/parent linkage survives the format change inside args, so a
    # loaded trace can still be joined back to job ids and round spans
    common["args"]["span_id"] = event.get("span_id")
    if event.get("parent_id") is not None:
        common["args"]["parent_id"] = event["parent_id"]
    if event["type"] == "span":
        common["ph"] = "X"
        common["dur"] = event["dur_us"]
    else:
        common["ph"] = "i"
        common["s"] = "t"  # thread-scoped instant
    return common


def chrome_trace_dict(
    events: Sequence[Dict], metadata: Optional[Dict] = None
) -> Dict:
    """Events as a Chrome ``trace_event`` JSON object (not yet a file)."""
    return {
        "traceEvents": [_chrome_event(event) for event in events],
        "displayTimeUnit": "ms",
        "otherData": trace_header(metadata),
    }


def write_chrome_trace(tracer: Tracer, path: Union[str, Path]) -> Path:
    """Write a tracer's events as Chrome/Perfetto-loadable JSON."""
    path = Path(path)
    payload = chrome_trace_dict(tracer.events(), tracer.metadata)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def write_trace(tracer: Tracer, path: Union[str, Path]) -> Path:
    """Write a trace file, format selected by suffix.

    ``.jsonl`` writes the structured event log; anything else writes
    the Chrome ``trace_event`` JSON (the ``--trace-out`` default).
    """
    path = Path(path)
    if path.suffix == ".jsonl":
        return write_jsonl(tracer, path)
    return write_chrome_trace(tracer, path)


# -- Prometheus text exposition ----------------------------------------


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricsRegistry, prefix: str = "repro_") -> str:
    """Render a registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for name, metric in registry.metrics().items():
        full = prefix + name
        if metric.help:
            lines.append(f"# HELP {full} {metric.help}")
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {full} counter")
            lines.append(f"{full} {_format_value(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {full} gauge")
            lines.append(f"{full} {_format_value(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {full} histogram")
            snap = metric.snapshot()
            for bound, cumulative in snap["buckets"].items():
                label = bound if bound == "+Inf" else _format_value(
                    float(bound)
                )
                lines.append(
                    f'{full}_bucket{{le="{label}"}} {cumulative}'
                )
            lines.append(f"{full}_sum {_format_value(snap['sum'])}")
            lines.append(f"{full}_count {snap['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
