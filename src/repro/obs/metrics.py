"""Deterministic in-process metrics: counters, gauges, histograms.

The registry is the aggregate counterpart of the tracer's event stream:
cheap enough to leave always-on (increments happen per job / per solve,
never per Euler iteration), thread-safe, and **deterministic in shape**
— histogram bucket boundaries are fixed at creation time and snapshots
are key-sorted, so two runs of the same workload produce structurally
identical output regardless of thread interleaving.

Exposition formats live in :mod:`repro.obs.exporters`
(:func:`~repro.obs.exporters.prometheus_text` renders a registry in the
Prometheus text format the service surfaces).

>>> from repro.obs.metrics import MetricsRegistry
>>> registry = MetricsRegistry()
>>> registry.counter("jobs_total").inc()
>>> registry.histogram("stop_iteration", buckets=(100, 500)).observe(420)
>>> registry.snapshot()["jobs_total"]["value"]
1.0
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "STOP_ITERATION_BUCKETS",
    "get_metrics",
    "set_metrics",
]

#: fixed bucket boundaries for solver stop-iteration histograms; chosen
#: to resolve both laptop-scale budgets (hundreds) and the paper-scale
#: ``max_iterations`` caps (thousands) with deterministic output
STOP_ITERATION_BUCKETS: Tuple[float, ...] = (
    50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0,
)


class Counter:
    """Monotonically increasing float counter."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict:
        return {"kind": self.kind, "value": self._value}


class Gauge:
    """A value that can go up and down (queue depth, capacity, ...)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict:
        return {"kind": self.kind, "value": self._value}


class Histogram:
    """Fixed-boundary histogram (Prometheus-style cumulative exposition).

    ``buckets`` are the finite upper bounds, strictly increasing; an
    implicit ``+Inf`` bucket always exists.  Boundaries are part of the
    metric's identity — re-registering the same name with different
    boundaries is an error, so output shape is deterministic.
    """

    kind = "histogram"

    def __init__(
        self, name: str, buckets: Sequence[float], help: str = ""
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError(
                f"histogram {name} needs at least one bucket boundary"
            )
        if any(not math.isfinite(b) for b in bounds):
            raise ConfigurationError(
                f"histogram {name} boundaries must be finite, got {bounds}"
            )
        if list(bounds) != sorted(set(bounds)):
            raise ConfigurationError(
                f"histogram {name} boundaries must be strictly "
                f"increasing, got {bounds}"
            )
        self.name = name
        self.help = help
        self.buckets = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def snapshot(self) -> Dict:
        with self._lock:
            counts = list(self._counts)
            total, acc = self._count, self._sum
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, n in zip(self.buckets, counts):
            running += n
            cumulative[repr(bound)] = running
        cumulative["+Inf"] = total
        return {
            "kind": self.kind,
            "buckets": cumulative,
            "count": total,
            "sum": acc,
        }


class MetricsRegistry:
    """Named metric instruments with get-or-create registration."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    def _register(self, name: str, kind: type, factory):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ConfigurationError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {kind.__name__}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(name, Counter, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(name, Gauge, lambda: Gauge(name, help))

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = STOP_ITERATION_BUCKETS,
        help: str = "",
    ) -> Histogram:
        metric = self._register(
            name, Histogram, lambda: Histogram(name, buckets, help)
        )
        if metric.buckets != tuple(float(b) for b in buckets):
            raise ConfigurationError(
                f"histogram {name!r} already registered with boundaries "
                f"{metric.buckets}"
            )
        return metric

    def metrics(self) -> Dict[str, object]:
        """Name-sorted view of the registered instruments."""
        with self._lock:
            items = sorted(self._metrics.items())
        return dict(items)

    def snapshot(self) -> Dict[str, Dict]:
        """Deterministic (name-sorted) dict of every metric's state."""
        return {
            name: metric.snapshot()
            for name, metric in self.metrics().items()
        }

    def clear(self) -> None:
        """Drop every instrument (test isolation helper)."""
        with self._lock:
            self._metrics.clear()


#: process-global default registry (always-on; increments are cheap)
_GLOBAL = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _GLOBAL


def set_metrics(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Swap the global registry (``None`` installs a fresh empty one)."""
    global _GLOBAL
    _GLOBAL = registry if registry is not None else MetricsRegistry()
    return _GLOBAL
