"""Package-wide :mod:`logging` setup for the ``repro`` logger tree.

Library rule: ``repro`` never configures the root logger and never
prints.  Importing :mod:`repro` attaches a :class:`logging.NullHandler`
to the ``"repro"`` logger (via this module), so library warnings — e.g.
the numba-backend fallback in :mod:`repro.ising.kernels` — are silent
unless the *application* opts in.

The CLI opts in through :func:`configure_logging`, driven by its
``-v/--verbose`` and ``-q/--quiet`` flags::

    verbosity <= -1   ERROR
    verbosity ==  0   WARNING   (CLI default)
    verbosity ==  1   INFO
    verbosity >=  2   DEBUG

``configure_logging`` is idempotent: it owns exactly one stream handler
on the ``repro`` logger (tagged, replaced on reconfiguration), so
repeated CLI invocations in one process never stack handlers.
"""

from __future__ import annotations

import logging
import threading
from typing import Optional, TextIO

__all__ = [
    "ROOT_LOGGER_NAME",
    "get_logger",
    "configure_logging",
    "warn_once",
]

ROOT_LOGGER_NAME = "repro"

#: marker attribute identifying the handler this module manages
_HANDLER_TAG = "_repro_cli_handler"

# library default: silence unless the application configures logging
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger in the ``repro`` tree (``repro`` itself when unnamed)."""
    if name is None or name == ROOT_LOGGER_NAME:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


# keys already warned through warn_once (process-global, thread-safe)
_WARNED_KEYS: set = set()
_WARNED_LOCK = threading.Lock()


def warn_once(
    logger: logging.Logger, key: str, message: str, *args
) -> bool:
    """Emit ``logger.warning(message, *args)`` once per ``key``.

    For hot paths that would otherwise repeat the same diagnosis every
    iteration (e.g. the worker pool rejecting the same job shape from
    sweep fusion on every batch).  Returns ``True`` when the warning
    was actually emitted, ``False`` when ``key`` had already fired —
    callers pairing the log with a metric should count unconditionally
    and log through this.
    """
    with _WARNED_LOCK:
        if key in _WARNED_KEYS:
            return False
        _WARNED_KEYS.add(key)
    logger.warning(message, *args)
    return True


def reset_warn_once() -> None:
    """Forget all warned keys (test isolation helper)."""
    with _WARNED_LOCK:
        _WARNED_KEYS.clear()


def verbosity_to_level(verbosity: int) -> int:
    """Map a ``-v``/``-q`` count difference to a logging level."""
    if verbosity <= -1:
        return logging.ERROR
    if verbosity == 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure_logging(
    verbosity: int = 0, stream: Optional[TextIO] = None
) -> logging.Logger:
    """(Re)configure the ``repro`` logger for application/CLI use.

    Installs a single stderr (or ``stream``) handler at the level
    implied by ``verbosity`` and returns the configured logger.
    """
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    level = verbosity_to_level(verbosity)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    setattr(handler, _HANDLER_TAG, True)
    logger.addHandler(handler)
    logger.setLevel(level)
    return logger
