"""The open-loop traffic generator (no coordinated omission).

Arrival times are decided *before* any request is sent: request ``i``
of a stage at ``rps`` is due at ``start + i / rps`` on a monotonic
clock.  Sender threads pull the next due index, sleep until its
scheduled instant, fire exactly one attempt, and record both clocks:

* ``latency`` — send → response ("service latency", what the server
  saw);
* ``open_loop_latency`` — *scheduled* → response, which additionally
  charges any lateness caused by all senders being busy.  This is the
  honest number: a closed-loop driver silently converts server
  slowness into a lower arrival rate and reports flattering
  percentiles; the open-loop number keeps the debt on the books.

One attempt per arrival, ever — the submitting client must be built
with ``RetryPolicy(max_retries=0)``.  A retry would be a second
arrival the rate clock never scheduled, turning the generator into its
own retry storm exactly when the server is saturated.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import GatewayError
from repro.gateway.client import GatewayClient
from repro.loadgen.mixes import MixProfile
from repro.service.spec import JobSpec

__all__ = [
    "MixSubmitter",
    "OpenLoopGenerator",
    "RequestSample",
    "StageResult",
    "SubmitOutcome",
    "collect_completion_latencies",
]


@dataclass(frozen=True)
class SubmitOutcome:
    """What one submission attempt came back with."""

    status: int  # HTTP status; 0 = no response (connection-level)
    ok: bool
    deduplicated: bool = False
    job_id: Optional[str] = None
    error_code: Optional[str] = None


@dataclass(frozen=True)
class RequestSample:
    """One scheduled arrival, fully accounted (never omitted).

    All times are seconds relative to the stage start.
    """

    mix: str
    index: int
    scheduled: float
    sent: float
    latency: float
    open_loop_latency: float
    status: int
    ok: bool
    deduplicated: bool
    job_id: Optional[str]
    error_code: Optional[str]
    expected_rejection: bool

    @property
    def lateness(self) -> float:
        """Seconds the send lagged its scheduled instant (>= 0)."""
        return max(0.0, self.sent - self.scheduled)


@dataclass
class StageResult:
    """Everything recorded at one (mix, offered RPS) operating point."""

    mix: str
    offered_rps: float
    duration_seconds: float
    elapsed_seconds: float
    samples: List[RequestSample] = field(default_factory=list)

    @property
    def achieved_rps(self) -> float:
        """Requests that got *any* HTTP response, per elapsed second."""
        answered = sum(1 for s in self.samples if s.status > 0)
        return answered / self.elapsed_seconds if self.elapsed_seconds else 0.0

    @property
    def accepted_rps(self) -> float:
        """Successful submissions (201 or dedup 200) per second."""
        accepted = sum(1 for s in self.samples if s.ok)
        return accepted / self.elapsed_seconds if self.elapsed_seconds else 0.0

    def job_ids(self) -> List[str]:
        """Unique accepted job ids, first-seen order."""
        seen: Dict[str, None] = {}
        for sample in self.samples:
            if sample.job_id is not None:
                seen.setdefault(sample.job_id, None)
        return list(seen)


class MixSubmitter:
    """Adapts ``(client, mix, config)`` to the generator's submit hook.

    Specs are prebuilt in :meth:`prepare` so spec construction (Ising
    problem docs, truth tables) never runs inside the timed loop.  The
    client should carry ``RetryPolicy(max_retries=0)`` — see module
    docs.
    """

    def __init__(
        self,
        client: GatewayClient,
        mix: MixProfile,
        config,
    ) -> None:
        self.client = client
        self.mix = mix
        self.config = config
        self._specs: List[JobSpec] = []

    def prepare(self, total: int) -> None:
        """Build the first ``total`` specs up front."""
        while len(self._specs) < total:
            self._specs.append(
                self.mix.build(len(self._specs), self.config)
            )

    def spec(self, index: int) -> JobSpec:
        self.prepare(index + 1)
        return self._specs[index]

    def __call__(self, index: int) -> SubmitOutcome:
        spec = self.spec(index)
        try:
            record, deduplicated = self.client.submit(spec)
        except GatewayError as exc:
            return SubmitOutcome(
                status=exc.status,
                ok=False,
                error_code=exc.code,
            )
        return SubmitOutcome(
            status=200 if deduplicated else 201,
            ok=True,
            deduplicated=deduplicated,
            job_id=record.id,
        )


class OpenLoopGenerator:
    """Drive one submit hook at a fixed arrival rate (module docs).

    Parameters
    ----------
    submit:
        ``index -> SubmitOutcome``; typically a :class:`MixSubmitter`.
    expect_rejections:
        Stamped onto every sample (see
        :attr:`~repro.loadgen.mixes.MixProfile.expect_rejections`).
    concurrency:
        Sender threads.  Bounds in-flight requests; when all senders
        are busy, arrivals go out late and the lateness is *recorded*
        (open-loop latency), never dropped.
    clock, sleep:
        Injection points for tests (monotonic seconds).
    """

    def __init__(
        self,
        submit: Callable[[int], SubmitOutcome],
        *,
        mix_name: str = "custom",
        expect_rejections: bool = False,
        concurrency: int = 8,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.submit = submit
        self.mix_name = mix_name
        self.expect_rejections = expect_rejections
        self.concurrency = concurrency
        self._clock = clock
        self._sleep = sleep

    def run(
        self, *, rps: float, duration_seconds: float
    ) -> StageResult:
        """One stage: ``round(rps * duration)`` scheduled arrivals."""
        if rps <= 0:
            raise ValueError(f"rps must be positive, got {rps}")
        total = max(1, int(round(rps * duration_seconds)))
        if isinstance(self.submit, MixSubmitter):
            self.submit.prepare(total)
        samples: List[Optional[RequestSample]] = [None] * total
        lock = threading.Lock()
        cursor = {"next": 0}
        start = self._clock()

        def sender() -> None:
            while True:
                with lock:
                    index = cursor["next"]
                    if index >= total:
                        return
                    cursor["next"] = index + 1
                scheduled = start + index / rps
                now = self._clock()
                if scheduled > now:
                    self._sleep(scheduled - now)
                sent = self._clock()
                outcome = self.submit(index)
                done = self._clock()
                samples[index] = RequestSample(
                    mix=self.mix_name,
                    index=index,
                    scheduled=scheduled - start,
                    sent=sent - start,
                    latency=done - sent,
                    open_loop_latency=done - scheduled,
                    status=outcome.status,
                    ok=outcome.ok,
                    deduplicated=outcome.deduplicated,
                    job_id=outcome.job_id,
                    error_code=outcome.error_code,
                    expected_rejection=self.expect_rejections,
                )

        threads = [
            threading.Thread(target=sender, name=f"loadgen-{i}")
            for i in range(min(self.concurrency, total))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = self._clock() - start
        return StageResult(
            mix=self.mix_name,
            offered_rps=float(rps),
            duration_seconds=float(duration_seconds),
            elapsed_seconds=elapsed,
            samples=[s for s in samples if s is not None],
        )


def collect_completion_latencies(
    client: GatewayClient,
    job_ids: Sequence[str],
    *,
    timeout_seconds: float = 60.0,
    poll_seconds: float = 0.25,
) -> List[float]:
    """Submit→done latencies (server-side clocks) for finished jobs.

    Completion latency is derived from the job records'
    ``finished_at - created_at`` — queueing plus execution as the
    *server* measured it, which needs no extra instrumentation and is
    immune to client-side send lateness.  Jobs still pending at the
    deadline (or failed) are simply not in the returned list; callers
    report coverage via the list length vs ``len(job_ids)``.
    """
    deadline = time.monotonic() + timeout_seconds
    pending = list(dict.fromkeys(job_ids))
    latencies: List[float] = []
    while pending and time.monotonic() < deadline:
        still = []
        for job_id in pending:
            record = client.job(job_id)
            if record.state == "done" and record.finished_at is not None:
                latencies.append(record.finished_at - record.created_at)
            elif record.state in ("failed", "quarantined"):
                pass  # terminal without a completion — excluded
            else:
                still.append(job_id)
        pending = still
        if pending:
            time.sleep(poll_seconds)
    return latencies
