"""Stage summaries, knee detection, and the BENCH_load payload.

The knee methodology: stages are run in ascending offered-RPS order;
the first stage is the *base* operating point.  A stage "holds" when

* its p95 open-loop latency stays within ``knee_factor`` × the base
  stage's p95,
* it achieves at least ``min_achieved_ratio`` of the offered rate, and
* its shed rate (429 + 503 responses) stays at or under
  ``max_shed_rate``.

The knee is the **last stage that holds** before the first one that
does not; when every stage holds, the sweep never saturated and the
knee block says so (``saturated: false``) — the harness still reports
the highest clean operating point instead of inventing a violation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.loadgen.generator import StageResult

__all__ = [
    "build_report",
    "find_knee",
    "latency_summary",
    "percentile",
    "summarize_stage",
]

_PERCENTILES = (50.0, 90.0, 95.0, 99.0)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile; 0.0 on an empty series."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    weight = rank - lower
    return float(
        ordered[lower] * (1.0 - weight) + ordered[upper] * weight
    )


def latency_summary(seconds: Sequence[float]) -> Optional[Dict]:
    """Percentile block in milliseconds, or ``None`` without data."""
    if not seconds:
        return None
    block = {
        f"p{int(q)}_ms": round(percentile(seconds, q) * 1000.0, 3)
        for q in _PERCENTILES
    }
    block["max_ms"] = round(max(seconds) * 1000.0, 3)
    block["count"] = len(seconds)
    return block


def summarize_stage(
    stage: StageResult,
    completion_latencies: Optional[Sequence[float]] = None,
) -> Dict:
    """One JSON row of the latency-vs-offered-RPS curve.

    ``error_rate`` counts unexpected failures only — a mix that is
    *supposed* to be rejected (partition parents) contributes its 400s
    to ``rejected``, not to errors, so SLO math stays meaningful.
    ``shed_rate`` counts 429 + 503 (the gateway protecting itself),
    which the knee rule treats separately from hard errors.
    """
    samples = stage.samples
    total = len(samples)
    ok = [s for s in samples if s.ok]
    expected = [
        s for s in samples if s.expected_rejection and not s.ok
    ]
    shed = [s for s in samples if s.status in (429, 503)]
    errors = [
        s
        for s in samples
        if not s.ok
        and not s.expected_rejection
        and s.status not in (429, 503)
    ]
    unexpected = total - len(ok) - len(expected)
    summary = {
        "offered_rps": round(stage.offered_rps, 3),
        "achieved_rps": round(stage.achieved_rps, 3),
        "accepted_rps": round(stage.accepted_rps, 3),
        "duration_seconds": round(stage.duration_seconds, 3),
        "elapsed_seconds": round(stage.elapsed_seconds, 3),
        "requests": total,
        "ok": len(ok),
        "deduplicated": sum(1 for s in ok if s.deduplicated),
        "rejected": len(expected),
        "shed": len(shed),
        "errors": len(errors),
        "rate_429": sum(1 for s in samples if s.status == 429),
        "rate_503": sum(1 for s in samples if s.status == 503),
        "connection_failures": sum(
            1 for s in samples if s.status == 0
        ),
        "shed_rate": round(len(shed) / total, 4) if total else 0.0,
        "error_rate": (
            round(max(0, unexpected) / max(1, total - len(expected)), 4)
        ),
        "mean_lateness_ms": (
            round(
                sum(s.lateness for s in samples) / total * 1000.0, 3
            )
            if total
            else 0.0
        ),
        "service_latency": latency_summary(
            [s.latency for s in samples if s.status > 0]
        ),
        "open_loop_latency": latency_summary(
            [s.open_loop_latency for s in samples if s.status > 0]
        ),
        "completion_latency": (
            latency_summary(list(completion_latencies))
            if completion_latencies is not None
            else None
        ),
    }
    return summary


def _p95_open_loop(summary: Dict) -> Optional[float]:
    block = summary.get("open_loop_latency")
    if block is None:
        return None
    return block.get("p95_ms")


def find_knee(
    stage_summaries: Sequence[Dict],
    *,
    knee_factor: float = 3.0,
    min_achieved_ratio: float = 0.9,
    max_shed_rate: float = 0.1,
) -> Dict:
    """Identify the knee of one mix's sweep (module docs).

    ``stage_summaries`` must be in ascending offered-RPS order.  The
    returned block always exists — ``saturated`` says whether any
    stage actually violated the hold conditions.
    """
    if not stage_summaries:
        return {"saturated": False, "offered_rps": None, "reason": "no stages"}
    base_p95 = _p95_open_loop(stage_summaries[0])
    knee = stage_summaries[0]
    violated: Optional[Dict] = None
    reason = "all stages held"
    for summary in stage_summaries:
        p95 = _p95_open_loop(summary)
        holds = True
        why = []
        if (
            base_p95 is not None
            and p95 is not None
            and base_p95 > 0
            and p95 > knee_factor * base_p95
        ):
            holds = False
            why.append(
                f"p95 {p95:.1f}ms > {knee_factor:g}x base {base_p95:.1f}ms"
            )
        if summary["achieved_rps"] < min_achieved_ratio * summary[
            "offered_rps"
        ]:
            holds = False
            why.append(
                f"achieved {summary['achieved_rps']:.2f} < "
                f"{min_achieved_ratio:g}x offered "
                f"{summary['offered_rps']:.2f}"
            )
        if summary["shed_rate"] > max_shed_rate:
            holds = False
            why.append(
                f"shed rate {summary['shed_rate']:.2f} > "
                f"{max_shed_rate:g}"
            )
        if holds:
            if violated is None:
                knee = summary
        elif violated is None:
            violated = summary
            reason = "; ".join(why)
    return {
        "saturated": violated is not None,
        "offered_rps": knee["offered_rps"],
        "achieved_rps": knee["achieved_rps"],
        "p95_open_loop_ms": _p95_open_loop(knee),
        "first_violation_rps": (
            violated["offered_rps"] if violated is not None else None
        ),
        "reason": reason,
        "criteria": {
            "knee_factor": knee_factor,
            "min_achieved_ratio": min_achieved_ratio,
            "max_shed_rate": max_shed_rate,
        },
    }


def build_report(
    mixes: Dict[str, Dict],
    slo_block: Optional[Dict] = None,
    soak_block: Optional[Dict] = None,
    context: Optional[Dict] = None,
) -> Dict:
    """Assemble the full ``BENCH_load.json`` payload.

    ``mixes`` maps mix name to ``{"summary", "stages", "knee"}``;
    the SLO and soak blocks slot in verbatim when present.
    """
    report: Dict = {"mixes": mixes}
    if context:
        report["context"] = context
    report["slo"] = slo_block
    report["soak"] = soak_block
    return report
