"""SLO definitions and burn-rate evaluation over recorded series.

An :class:`SLOSpec` states two objectives over the load harness's
recorded samples:

* **availability** — the fraction of submissions that must succeed
  (expected rejections, e.g. partition parents, are excluded from the
  denominator: refusing an invalid request is correct behavior);
* **latency** — a p95 bound on service latency (send → response).

On top of the point-in-time availability check sits a **burn rate**:
the error budget of an availability target ``A`` is ``1 - A``; a
window whose error rate is ``r`` burns budget at ``r / (1 - A)`` — the
standard SRE multiple (burn rate 1 = exactly spending the budget;
2 = spending it twice as fast).  Samples are bucketed into
``window_seconds`` windows along the *scheduled* (open-loop) time
axis, per stage, and the verdict reports the worst window.  A short
violent error burst inside an otherwise-green stage fails the burn
check even when overall availability still clears the target — which
is exactly the regression a mean would hide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import ConfigurationError
from repro.loadgen.generator import StageResult
from repro.loadgen.recorder import percentile

__all__ = ["SLOSpec", "evaluate_slo", "parse_slo"]


@dataclass(frozen=True)
class SLOSpec:
    """Availability + latency objectives (module docs)."""

    availability: float = 0.99
    latency_p95_ms: float = 1000.0
    window_seconds: float = 5.0
    max_burn_rate: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 < self.availability < 1.0:
            raise ConfigurationError(
                f"availability must be in (0, 1), got {self.availability}"
            )
        if self.latency_p95_ms <= 0:
            raise ConfigurationError(
                f"latency_p95_ms must be positive, got {self.latency_p95_ms}"
            )
        if self.window_seconds <= 0:
            raise ConfigurationError(
                f"window_seconds must be positive, got {self.window_seconds}"
            )
        if self.max_burn_rate <= 0:
            raise ConfigurationError(
                f"max_burn_rate must be positive, got {self.max_burn_rate}"
            )

    def to_dict(self) -> Dict:
        return {
            "availability": self.availability,
            "latency_p95_ms": self.latency_p95_ms,
            "window_seconds": self.window_seconds,
            "max_burn_rate": self.max_burn_rate,
        }


#: accepted ``--slo`` keys -> SLOSpec field
_SLO_KEYS = {
    "availability": "availability",
    "p95_ms": "latency_p95_ms",
    "latency_p95_ms": "latency_p95_ms",
    "window_s": "window_seconds",
    "window_seconds": "window_seconds",
    "max_burn": "max_burn_rate",
    "max_burn_rate": "max_burn_rate",
}


def parse_slo(text: str) -> SLOSpec:
    """Parse ``"availability=0.995,p95_ms=500,window_s=5,max_burn=2"``.

    Unknown keys and malformed values raise
    :class:`~repro.errors.ConfigurationError`; omitted keys keep the
    :class:`SLOSpec` defaults.
    """
    values: Dict[str, float] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ConfigurationError(
                f"malformed SLO clause {part!r}; expected key=value"
            )
        key, _, raw = part.partition("=")
        field = _SLO_KEYS.get(key.strip())
        if field is None:
            raise ConfigurationError(
                f"unknown SLO key {key.strip()!r}; "
                f"keys: {', '.join(sorted(_SLO_KEYS))}"
            )
        try:
            values[field] = float(raw.strip())
        except ValueError:
            raise ConfigurationError(
                f"SLO value for {key.strip()!r} must be a number, "
                f"got {raw.strip()!r}"
            ) from None
    return SLOSpec(**values)


def _burn_windows(
    stage: StageResult, slo: SLOSpec
) -> List[Dict]:
    """Per-window error rates and burn rates for one stage."""
    considered = [
        s for s in stage.samples if not s.expected_rejection or s.ok
    ]
    if not considered:
        return []
    horizon = max(s.scheduled for s in considered) + 1e-9
    n_windows = max(1, int(horizon / slo.window_seconds) + 1)
    buckets: List[List[bool]] = [[] for _ in range(n_windows)]
    for sample in considered:
        slot = min(
            n_windows - 1, int(sample.scheduled / slo.window_seconds)
        )
        buckets[slot].append(sample.ok)
    budget = 1.0 - slo.availability
    windows = []
    for slot, outcomes in enumerate(buckets):
        if not outcomes:
            continue
        error_rate = 1.0 - (sum(outcomes) / len(outcomes))
        windows.append(
            {
                "window": slot,
                "requests": len(outcomes),
                "error_rate": round(error_rate, 4),
                "burn_rate": round(error_rate / budget, 3),
            }
        )
    return windows


def evaluate_slo(
    slo: SLOSpec, stages: Sequence[StageResult]
) -> Dict:
    """The verdict block for one recorded series (module docs).

    ``stages`` may span several operating points of one mix (or one
    soak plateau); windows never straddle stage boundaries.
    """
    all_samples = [s for stage in stages for s in stage.samples]
    considered = [
        s for s in all_samples if not s.expected_rejection or s.ok
    ]
    total = len(considered)
    ok = sum(1 for s in considered if s.ok)
    observed_availability = ok / total if total else 1.0
    latencies = [s.latency for s in all_samples if s.status > 0]
    observed_p95_ms = percentile(latencies, 95.0) * 1000.0
    windows = [
        window
        for stage in stages
        for window in _burn_windows(stage, slo)
    ]
    max_burn = max((w["burn_rate"] for w in windows), default=0.0)
    availability_ok = observed_availability >= slo.availability
    latency_ok = (
        not latencies or observed_p95_ms <= slo.latency_p95_ms
    )
    burn_ok = max_burn <= slo.max_burn_rate
    return {
        "objective": slo.to_dict(),
        "availability": {
            "observed": round(observed_availability, 5),
            "target": slo.availability,
            "requests": total,
            "ok": availability_ok,
        },
        "latency": {
            "observed_p95_ms": round(observed_p95_ms, 3),
            "target_p95_ms": slo.latency_p95_ms,
            "ok": latency_ok,
        },
        "burn_rate": {
            "max": max_burn,
            "limit": slo.max_burn_rate,
            "windows": len(windows),
            "window_seconds": slo.window_seconds,
            "ok": burn_ok,
        },
        "ok": availability_ok and latency_ok and burn_ok,
    }
