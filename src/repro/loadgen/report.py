"""Human-readable rendering of a BENCH_load payload."""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["render_load_report"]


def _latency_cell(block: Optional[Dict]) -> str:
    if not block:
        return "-"
    return f"{block['p50_ms']:.1f}/{block['p95_ms']:.1f}"


def render_load_report(report: Dict) -> str:
    """Text table per mix: the curve, the knee, SLO and soak verdicts."""
    lines: List[str] = []
    for name, mix_block in sorted(report.get("mixes", {}).items()):
        lines.append(f"mix {name}: {mix_block.get('summary', '')}")
        lines.append(
            "  offered  achieved  ok/req    shed   err "
            " svc p50/p95 ms  open p50/p95 ms"
        )
        for stage in mix_block.get("stages", []):
            lines.append(
                f"  {stage['offered_rps']:7.2f}"
                f"  {stage['achieved_rps']:8.2f}"
                f"  {stage['ok']:3d}/{stage['requests']:<3d}"
                f"  {stage['shed_rate']:6.2f}"
                f"  {stage['error_rate']:4.2f}"
                f"  {_latency_cell(stage['service_latency']):>14s}"
                f"  {_latency_cell(stage['open_loop_latency']):>15s}"
            )
        knee = mix_block.get("knee")
        if knee:
            state = (
                "saturated" if knee.get("saturated") else "not saturated"
            )
            lines.append(
                f"  knee: {knee.get('offered_rps')} rps ({state}; "
                f"{knee.get('reason')})"
            )
        lines.append("")
    slo = report.get("slo")
    if slo:
        objective = slo.get("objective", {})
        lines.append(
            f"SLO (availability>={objective.get('availability')}, "
            f"p95<={objective.get('latency_p95_ms')}ms, "
            f"burn<={objective.get('max_burn_rate')}x"
            f"@{objective.get('window_seconds')}s):"
        )
        for name, verdict in sorted(slo.get("mixes", {}).items()):
            mark = "PASS" if verdict.get("ok") else "FAIL"
            lines.append(
                f"  {name}: {mark} "
                f"(availability {verdict['availability']['observed']}, "
                f"p95 {verdict['latency']['observed_p95_ms']}ms, "
                f"max burn {verdict['burn_rate']['max']}x)"
            )
        lines.append(
            f"  overall: {'PASS' if slo.get('ok') else 'FAIL'}"
        )
        lines.append("")
    soak = report.get("soak")
    if soak:
        mark = (
            "byte-identical"
            if soak.get("byte_identical")
            else f"MISMATCH ({soak.get('mismatches')})"
        )
        lines.append(
            f"soak: {soak.get('mix')} at {soak.get('offered_rps')} rps "
            f"for {soak.get('duration_seconds')}s under chaos — "
            f"{soak.get('completed')}/{soak.get('requests')} completed, "
            f"{mark}"
        )
    return "\n".join(lines).rstrip()
